"""Concurrent clients against the HiveServer2-style serving layer.

Walks the wire protocol by hand (open session -> submit -> poll ->
fetch pages -> close), then points a threaded 3-tenant workload at the
same HTTP endpoint and reads the serving-side story back out of
``sys.sessions``, ``sys.plan_cache`` and ``sys.timeseries``.

Run with:  python examples/concurrent_clients.py
"""

import json
import urllib.request

from repro.config import HiveConf
from repro.service import HiveService, LoadClient, run_load


def call(base: str, method: str, path: str, body=None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as reply:
        return json.loads(reply.read())


def main() -> None:
    service = HiveService(conf=HiveConf.v3_profile())
    admin = service.server.connect()
    admin.execute("CREATE TABLE sales (day INT, region STRING, "
                  "amount INT)")
    values = ", ".join(
        f"({i % 30}, '{('EU', 'US', 'APAC')[i % 3]}', {i * 13 % 97})"
        for i in range(90))
    admin.execute(f"INSERT INTO sales VALUES {values}")

    # tenants: a token opens sessions, a pool bounds their concurrency
    for sql in [
        "CREATE RESOURCE PLAN serving",
        "CREATE POOL serving.dashboards WITH alloc_fraction=0.6, "
        "query_parallelism=3",
        "CREATE POOL serving.batch WITH alloc_fraction=0.4, "
        "query_parallelism=2",
        "ALTER PLAN serving SET DEFAULT POOL = batch",
        "ALTER RESOURCE PLAN serving ENABLE ACTIVATE",
    ]:
        admin.execute(sql)
    service.register_tenant("bi", pool="dashboards")
    service.register_tenant("etl", pool="batch")
    service.register_tenant("adhoc")   # routed by the plan's default

    base = service.start_http().url
    print(f"== serving at {base} ==")

    print("== the protocol, one statement by hand ==")
    session = call(base, "POST", "/v1/sessions", {"token": "bi"})
    sid = session["session_id"]
    print(f"  opened session {sid} for tenant {session['tenant']}")
    handle = call(base, "POST", f"/v1/sessions/{sid}/submit",
                  {"sql": "SELECT region, SUM(amount) FROM sales "
                          "GROUP BY region ORDER BY region"})
    op = handle["operation_id"]
    print(f"  submitted -> operation {op} (returns immediately)")
    while True:
        status = call(base, "GET", f"/v1/operations/{op}")
        if status["state"] in ("finished", "error", "killed"):
            break
    print(f"  polled to state={status['state']} "
          f"(pool={status['pool']}, "
          f"wait={status['admission_wait_s']}s virtual)")
    page = call(base, "GET", f"/v1/operations/{op}/fetch?offset=0&limit=2")
    print(f"  fetched page 1: {page['rows']} (has_more={page['has_more']})")
    page = call(base, "GET",
                f"/v1/operations/{op}/fetch?offset=2&limit=2")
    print(f"  fetched page 2: {page['rows']}")
    call(base, "DELETE", f"/v1/sessions/{sid}")

    print("== 12 concurrent clients, 3 tenants, over HTTP ==")
    statements = [
        "SELECT COUNT(*) FROM sales",
        "SELECT region, SUM(amount) FROM sales GROUP BY region",
        "SELECT day FROM sales WHERE amount > 48",
    ]
    clients = [LoadClient(token=("bi", "bi", "etl", "adhoc")[i % 4],
                          statements=[statements[i % 3]])
               for i in range(12)]
    report = run_load(service, clients, repeat=4, base_url=base)
    print(f"  {report.finished}/{report.submitted} statements finished "
          f"({report.throughput_per_s:.0f}/s), lost={report.lost}, "
          f"duplicates={report.duplicates}")
    print(f"  plan-cache hits: {report.plan_cache_hits}, "
          f"results-cache hits: {report.results_cache_hits}")

    print("== the serving story, from SQL ==")
    stats = service.server.plan_cache.stats
    print(f"  plan cache: {stats.hits} hits / {stats.misses} misses "
          f"(hit rate {stats.hit_rate:.0%})")
    for row in admin.execute("SELECT * FROM sys.plan_cache").rows[:3]:
        print(f"  sys.plan_cache: {row[1][:48]!r:50} hits={row[4]}")
    open_now = admin.execute(
        "SELECT COUNT(*) FROM sys.sessions WHERE state = 'open'")
    print(f"  open sessions after the run: {open_now.rows[0][0]}")
    p99 = admin.execute(
        "SELECT COUNT(*) FROM sys.timeseries WHERE name = "
        "'service.admission.wait_s.p99'").rows[0][0]
    print(f"  admission-wait p99 samples in sys.timeseries: {p99}")

    service.shutdown()


if __name__ == "__main__":
    main()
