"""Quickstart: create tables, load data, run analytic SQL.

Run with:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # one call spins up a single-process warehouse: simulated HDFS, the
    # metastore, LLAP cache and an HS2 session
    session = repro.connect()

    print("== DDL ==")
    session.execute("""
        CREATE TABLE sales (
            item_id INT, store STRING, price DOUBLE, quantity INT
        ) PARTITIONED BY (day INT)""")
    session.execute("CREATE TABLE items (item_id INT, category STRING)")

    print("== load ==")
    session.execute("""
        INSERT INTO items VALUES
            (1, 'Sports'), (2, 'Books'), (3, 'Music'), (4, 'Sports')""")
    # the trailing column routes rows to partitions (dynamic partitioning)
    session.execute("""
        INSERT INTO sales VALUES
            (1, 'north', 9.99, 2, 1), (2, 'north', 5.00, 1, 1),
            (3, 'south', 7.25, 3, 1), (1, 'south', 9.99, 1, 2),
            (4, 'north', 19.50, 2, 2), (2, 'south', 5.00, 4, 2)""")

    print("== query ==")
    result = session.execute("""
        SELECT category, SUM(price * quantity) AS revenue
        FROM sales, items
        WHERE sales.item_id = items.item_id
        GROUP BY category
        ORDER BY revenue DESC""")
    for row in result.rows:
        print(f"  {row[0]:<8} {row[1]:8.2f}")
    print(f"  [virtual latency: {result.metrics.total_s:.3f}s, "
          f"{len(result.metrics.vertices)} vertices]")

    print("== the optimizer at work ==")
    explain = session.execute("""
        EXPLAIN SELECT store, SUM(price) FROM sales
        WHERE day = 1 GROUP BY store""")
    for (line,) in explain.rows:
        print("  " + line)
    # note the partition pruning: only day=1 is scanned

    print("== repeated queries hit the results cache ==")
    again = session.execute("""
        SELECT category, SUM(price * quantity) AS revenue
        FROM sales, items
        WHERE sales.item_id = items.item_id
        GROUP BY category
        ORDER BY revenue DESC""")
    print(f"  from_cache={again.from_cache}, "
          f"latency={again.metrics.total_s:.3f}s")


if __name__ == "__main__":
    main()
