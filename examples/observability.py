"""Observability: EXPLAIN ANALYZE, the metrics registry, query traces,

and the SQL-queryable ``sys`` catalog.

Hive 3 exposes server state through a ``sys`` database and per-query
runtime statistics through EXPLAIN ANALYZE; the reproduction mirrors
both on top of a single metrics registry (``server.obs``).

Run with:  PYTHONPATH=src python examples/observability.py
"""

import repro


def show(title: str, result) -> None:
    print(f"== {title} ==")
    for row in result.rows:
        print("  " + " | ".join(str(v) for v in row))
    print()


def main() -> None:
    server = repro.HiveServer2()
    session = server.connect(application="obs-demo")

    session.execute("""
        CREATE TABLE sales (region STRING, amount DOUBLE)
        PARTITIONED BY (day STRING)""")
    session.execute("""
        INSERT INTO sales PARTITION (day='mon')
        VALUES ('emea', 10.0), ('amer', 20.0), ('apac', 5.0)""")
    session.execute("""
        INSERT INTO sales PARTITION (day='tue')
        VALUES ('emea', 7.5), ('amer', 12.5)""")

    # -- EXPLAIN ANALYZE: the plan annotated with what actually happened
    result = session.execute("""
        EXPLAIN ANALYZE
        SELECT region, SUM(amount) FROM sales
        WHERE day = 'mon' GROUP BY region""")
    print("== EXPLAIN ANALYZE ==")
    for (line,) in result.rows:
        print("  " + line)
    print()

    # -- the same query again: served from the results cache
    session.execute(
        "SELECT region, SUM(amount) FROM sales "
        "WHERE day = 'mon' GROUP BY region")
    session.execute(
        "SELECT region, SUM(amount) FROM sales "
        "WHERE day = 'mon' GROUP BY region")

    # -- sys.query_log: one row per executed statement
    show("SELECT ... FROM sys.query_log", session.execute("""
        SELECT query_id, operation, status, from_cache,
               rows_produced, total_s
        FROM sys.query_log"""))

    # -- the full log, as the issue demands
    result = session.execute("SELECT * FROM sys.query_log")
    print(f"== SELECT * FROM sys.query_log: {len(result.rows)} rows, "
          f"{len(result.column_names)} columns ==\n")

    # -- cache counters absorbed into the registry
    show("sys.cache_stats (selected)", session.execute("""
        SELECT component, metric, value FROM sys.cache_stats
        WHERE metric IN ('hits', 'misses', 'evictions')"""))

    # -- every registry series is queryable too
    show("sys.metrics (scan counters)", session.execute("""
        SELECT name, labels, value FROM sys.metrics
        WHERE name = 'scan.rows'"""))

    # -- the span tree of the last real query
    trace = session.execute(
        "SELECT COUNT(*) FROM sales").trace
    print("== query trace ==")
    print(trace.render())

    # -- one JSON snapshot of everything
    snapshot = server.obs.snapshot()
    print("== snapshot ==")
    print(f"  queries logged : {snapshot['queries']['logged']}")
    print(f"  metric series  : {len(snapshot['metrics'])}")


if __name__ == "__main__":
    main()
