"""Materialized views: automatic query rewriting (full and partial

containment, Figure 4 of the paper), freshness, incremental rebuild.

Run with:  python examples/materialized_views.py
"""

import repro


def main() -> None:
    session = repro.connect()
    session.conf.results_cache_enabled = False

    session.execute("""
        CREATE TABLE store_sales (
            ss_sold_date_sk INT, ss_item_sk INT, ss_sales_price DOUBLE)""")
    session.execute("""
        CREATE TABLE date_dim (
            d_date_sk INT, d_year INT, d_moy INT, d_dom INT,
            PRIMARY KEY (d_date_sk) DISABLE NOVALIDATE)""")
    dates = ", ".join(f"({sk}, {2016 + sk // 12}, {sk % 12 + 1}, 15)"
                      for sk in range(48))
    session.execute(f"INSERT INTO date_dim VALUES {dates}")
    sales = ", ".join(f"({i % 48}, {i % 9}, {round((i % 40) * 1.5, 2)})"
                      for i in range(600))
    session.execute(f"INSERT INTO store_sales VALUES {sales}")

    print("== the paper's Figure 4(a) view ==")
    session.execute("""
        CREATE MATERIALIZED VIEW mat_view AS
        SELECT d_year, d_moy, d_dom, SUM(ss_sales_price) AS sum_sales
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
        GROUP BY d_year, d_moy, d_dom""")

    print("== Figure 4(b): fully contained rewrite ==")
    q1 = session.execute("""
        SELECT SUM(ss_sales_price) AS sum_sales
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND
              d_year = 2018 AND d_moy IN (1, 2, 3)""")
    print(f"  answer: {q1.rows[0][0]:.2f}   "
          f"views used: {q1.views_used}")

    print("== Figure 4(c): partially contained (union) rewrite ==")
    q2 = session.execute("""
        SELECT d_year, d_moy, SUM(ss_sales_price) AS sum_sales
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year > 2016
        GROUP BY d_year, d_moy ORDER BY d_year, d_moy LIMIT 5""")
    print(f"  views used: {q2.views_used} (plus a delta from the "
          "source tables, unioned and re-aggregated)")
    for row in q2.rows:
        print(f"    {row}")

    print("== staleness: writes disable rewriting until REBUILD ==")
    session.execute("INSERT INTO store_sales VALUES (30, 1, 99.0)")
    stale = session.execute("""
        SELECT SUM(ss_sales_price) FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018""")
    print(f"  after insert: views used = {stale.views_used} "
          "(stale view skipped, correct answer from base tables)")

    rebuild = session.execute("ALTER MATERIALIZED VIEW mat_view REBUILD")
    print(f"  REBUILD: {rebuild.message}")

    fresh = session.execute("""
        SELECT SUM(ss_sales_price) FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018""")
    print(f"  after rebuild: views used = {fresh.views_used}, "
          f"answer {fresh.rows[0][0]:.2f}")

    print("== EXPLAIN shows the substitution ==")
    explain = session.execute("""
        EXPLAIN SELECT d_year, SUM(ss_sales_price) FROM
        store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
        GROUP BY d_year""")
    for (line,) in explain.rows:
        print("  " + line)


if __name__ == "__main__":
    main()
