"""Straggler & skew analysis: the vertex/operator profiler end to end.

A join key that dominates the fact table lands all of its work on one
reduce task.  The profiler hashes execution-time key histograms onto
the vertex's tasks, so the hot key shows up as a long max task —
``skew_factor`` (max-task / median-task time) and the ``STRAGGLER``
flag make it visible in ``sys.vertex_log``, ``EXPLAIN ANALYZE`` and
the Chrome trace export.  A p95 latency trigger then sheds load off
the hot pool — something a per-query gauge trigger cannot do, because
each individual query stays under the threshold.

Run with:  PYTHONPATH=src python examples/straggler_analysis.py
"""

import repro


def show(title: str, result) -> None:
    print(f"== {title} ==")
    for row in result.rows:
        print("  " + " | ".join(str(v) for v in row))
    print()


def main() -> None:
    conf = repro.HiveConf.v3_profile()
    conf.cost.data_scale = 2000.0       # amplify virtual task counts
    server = repro.HiveServer2(conf)
    session = server.connect(application="bi_app")

    # -- a deliberately skewed join: key 0 owns 80% of the fact table
    session.execute("CREATE TABLE dim (k INT, name STRING)")
    session.execute("CREATE TABLE fact (k INT, v INT)")
    session.execute("INSERT INTO dim VALUES " + ", ".join(
        f"({i}, 'n{i}')" for i in range(20)))
    values = [f"(0, {i})" for i in range(400)]
    values += [f"({1 + i % 19}, {i})" for i in range(100)]
    session.execute("INSERT INTO fact VALUES " + ", ".join(values))

    skewed = ("SELECT d.name, COUNT(*) FROM fact f "
              "JOIN dim d ON f.k = d.k GROUP BY d.name")

    # -- EXPLAIN ANALYZE renders the vertex/operator tree with time bars
    result = session.execute("EXPLAIN ANALYZE " + skewed)
    print("== EXPLAIN ANALYZE (vertex tree) ==")
    for (line,) in result.rows:
        if line.startswith("--"):
            print("  " + line)
    print()

    # -- the acceptance query: skew factor per vertex, joined to the log
    show("per-vertex skew (sys.vertex_log ⋈ sys.query_log)",
         session.execute("""
        SELECT v.name, v.tasks, v.skew_factor, v.straggler
        FROM sys.vertex_log v
        JOIN sys.query_log q ON v.query_id = q.query_id"""))

    # -- operator-level attribution of the same query
    show("sys.operator_log", session.execute("""
        SELECT vertex, operator, rows_in, rows_out, virtual_s
        FROM sys.operator_log"""))

    # -- percentile-triggered workload management: heat the bi pool,
    #    then watch a *cheap* query get moved because the pool's p95 is
    #    hot (its own runtime never crosses the threshold)
    for ddl in (
            "CREATE RESOURCE PLAN daytime",
            "CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
            "query_parallelism=5",
            "CREATE POOL daytime.etl WITH alloc_fraction=0.2, "
            "query_parallelism=20",
            "CREATE RULE shed IN daytime WHEN p95(query.latency_s) > 2 "
            "THEN MOVE etl",
            "ADD RULE shed TO bi",
            "CREATE APPLICATION MAPPING bi_app IN daytime TO bi",
            "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE"):
        session.execute(ddl)

    for i in range(4):                   # heavy queries heat the p95
        session.execute(f"SELECT k, COUNT(*) FROM fact "
                        f"WHERE v > {i} GROUP BY k")
    cheap = session.execute("SELECT COUNT(*) FROM fact WHERE k = 1")
    print("== percentile trigger ==")
    print(f"  cheap query runtime : {cheap.metrics.total_s:.3f}s")
    print(f"  moved to pool       : {cheap.metrics.moved_to_pool}")
    print()

    show("sys.wm_events", session.execute("""
        SELECT query_id, trigger_name, metric, action, target_pool
        FROM sys.wm_events"""))

    # -- nested vertex/operator spans in the Chrome trace export
    trace_json = server.obs.to_chrome_trace()
    print("== chrome trace ==")
    print(f"  {len(trace_json)} bytes; load in chrome://tracing — "
          "operator spans nest inside their vertex span")


if __name__ == "__main__":
    main()
