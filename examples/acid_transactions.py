"""ACID transactions: UPDATE/DELETE/MERGE, snapshot isolation, the

base/delta file layout and compaction (paper Sections 3.2 and 8).

Run with:  python examples/acid_transactions.py
"""

import repro


def show_layout(server, table_name: str) -> None:
    table = server.hms.get_table(table_name)
    print(f"  layout of {table_name}:")
    for directory in server.fs.list_dirs(table.location):
        files = server.fs.list_files(directory)
        print(f"    {directory.rsplit('/', 1)[-1]}/"
              f"  ({len(files)} file(s))")


def main() -> None:
    server = repro.HiveServer2()
    session = server.connect()
    session.conf.results_cache_enabled = False

    print("== a transactional table ==")
    session.execute("""
        CREATE TABLE accounts (id INT, owner STRING, balance DOUBLE)
        TBLPROPERTIES ('transactional'='true')""")
    session.execute("""
        INSERT INTO accounts VALUES
            (1, 'ada', 100.0), (2, 'bob', 50.0), (3, 'eve', 75.0)""")
    show_layout(server, "accounts")

    print("== row-level DML ==")
    updated = session.execute(
        "UPDATE accounts SET balance = balance + 25 WHERE owner = 'bob'")
    print(f"  updated {updated.rows_affected} row(s)")
    deleted = session.execute("DELETE FROM accounts WHERE id = 3")
    print(f"  deleted {deleted.rows_affected} row(s)")
    show_layout(server, "accounts")   # note delta_* and delete_delta_*

    print("== MERGE upserts a change feed ==")
    session.execute("CREATE TABLE feed (id INT, balance DOUBLE, op STRING)")
    session.execute("""
        INSERT INTO feed VALUES
            (1, 500.0, 'upsert'), (2, 0.0, 'close'), (9, 9.0, 'upsert')""")
    merged = session.execute("""
        MERGE INTO accounts USING feed ON accounts.id = feed.id
        WHEN MATCHED AND feed.op = 'close' THEN DELETE
        WHEN MATCHED THEN UPDATE SET balance = feed.balance
        WHEN NOT MATCHED THEN INSERT VALUES (feed.id, 'new', feed.balance)
        """)
    print(f"  merge affected {merged.rows_affected} row(s)")
    for row in session.execute(
            "SELECT id, owner, balance FROM accounts ORDER BY id").rows:
        print(f"    {row}")

    print("== snapshot isolation across sessions ==")
    other = server.connect()
    other.conf.results_cache_enabled = False
    # a long-running reader opened *before* the next write...
    tm = server.hms.txn_manager
    snapshot_before = tm.get_snapshot()
    session.execute("INSERT INTO accounts VALUES (7, 'zoe', 1.0)")
    # ...would still see the old state; new queries see the new row:
    count = other.execute("SELECT COUNT(*) FROM accounts").rows[0][0]
    print(f"  rows visible to a fresh query: {count}")
    valid = tm.valid_write_ids(snapshot_before, "default.accounts")
    from repro.acid.reader import AcidReader
    table = server.hms.get_table("accounts")
    batch, _ = AcidReader(server.fs).read(table.location, valid)
    print(f"  rows visible to the old snapshot: {batch.num_rows}")

    print("== compaction folds deltas back into a base ==")
    from repro.metastore.compaction import CompactionType
    server.hms.compaction_queue.enqueue("default.accounts", None,
                                        CompactionType.MAJOR)
    jobs = server.run_compaction()
    print(f"  ran {jobs} compaction job(s)")
    show_layout(server, "accounts")
    rows = session.execute("SELECT COUNT(*) FROM accounts").rows
    print(f"  row count unchanged after compaction: {rows[0][0]}")


if __name__ == "__main__":
    main()
