"""Live monitoring: cluster timeseries, ``sys.live_queries``,
KILL QUERY, and the HTTP ``/metrics`` endpoint.

Hive exposes running queries through the HiveServer2 web UI and LLAP
daemon state through its monitor servlets; the reproduction mirrors
both as SQL-queryable ``sys`` tables plus a Prometheus-compatible
scrape endpoint driven by the same metrics registry.

Run with:  PYTHONPATH=src python examples/live_monitor.py
"""

import json
import urllib.request

import repro
from repro.bench import TPCDS_QUERIES, TpcdsScale, create_tpcds_warehouse


def show(title: str, result) -> None:
    print(f"== {title} ==")
    for row in result.rows:
        print("  " + " | ".join(str(v) for v in row))
    print()


def main() -> None:
    server = repro.HiveServer2()
    session = server.connect(application="monitor-demo")
    # sample cluster state every 10ms of *virtual* time — the tiny
    # warehouse finishes queries in well under a virtual second
    session.execute("SET hive.monitor.sample.interval.s=0.01")

    print("loading the tiny TPC-DS warehouse...\n")
    create_tpcds_warehouse(server, TpcdsScale.tiny(), session)

    # -- watch a query mid-flight via a runner checkpoint hook
    live = server.obs.live_queries

    def report(entry):
        print(f"  [live] query {entry.query_id}: {entry.phase}  "
              f"progress={entry.progress:.0%}  eta={entry.eta_s:.2f}s")

    live.add_checkpoint_hook(report)
    print("== a TPC-DS query, observed between DAG vertices ==")
    session.execute(TPCDS_QUERIES[0].sql)
    live.remove_checkpoint_hook(report)
    print()

    # -- KILL QUERY: a second session terminates a running statement
    killer = server.connect(application="operator")

    def assassin(entry):
        live.remove_checkpoint_hook(assassin)
        print(f"  [operator] KILL QUERY {entry.query_id}")
        killer.execute(f"KILL QUERY {entry.query_id}")

    live.add_checkpoint_hook(assassin)
    print("== the same query, killed from another session ==")
    try:
        session.execute(TPCDS_QUERIES[1].sql)
    except repro.errors.QueryKilledError as error:
        print(f"  runner raised: {error}")
    print()

    show("sys.query_log (the kill is recorded)", session.execute(
        "SELECT query_id, status FROM sys.query_log "
        "WHERE status = 'killed'"))
    show("sys.wm_events (audited like a WM trigger kill)",
         session.execute(
             "SELECT query_id, trigger_name FROM sys.wm_events"))

    # -- cluster state: per-daemon heatmap and warehouse timeseries
    show("sys.llap_daemons (cache heatmap)", session.execute(
        "SELECT node, cache_bytes, cache_chunks FROM sys.llap_daemons"))
    show("sys.timeseries (open-txn gauge over virtual time)",
         session.execute(
             "SELECT ts_s, value FROM sys.timeseries "
             "WHERE name = 'txn.open' LIMIT 5"))

    # -- the scrape endpoint: Prometheus text plus a JSON dashboard
    server.obs.start_http()            # ephemeral port on localhost
    url = server.obs.http_server.url
    print(f"== GET {url}/metrics (first lines) ==")
    with urllib.request.urlopen(url + "/metrics") as response:
        for line in response.read().decode().splitlines()[:8]:
            print("  " + line)
    print()
    with urllib.request.urlopen(url + "/ui") as response:
        dashboard = json.loads(response.read())
    print("== GET /ui ==")
    print(f"  nodes={len(dashboard['nodes'])}  "
          f"live={len(dashboard['live_queries'])}  "
          f"logged={dashboard['queries_logged']}")
    server.obs.stop_http()


if __name__ == "__main__":
    main()
