"""The paper's Section 9 roadmap, implemented: multi-statement

transactions, the Kafka connector, runtime-statistics feedback into the
optimizer, and the materialized-view advisor.

Run with:  python examples/roadmap_extensions.py
"""

import repro
from repro.advisor import MaterializedViewAdvisor
from repro.federation import KafkaBroker, KafkaStorageHandler
from repro.metastore.stats import TableStatistics


def multi_statement_transactions(server):
    print("== multi-statement transactions ==")
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute("CREATE TABLE ledger (account INT, amount DOUBLE)")
    session.execute("INSERT INTO ledger VALUES (1, 100.0), (2, 50.0)")

    session.execute("BEGIN")
    session.execute("UPDATE ledger SET amount = amount - 30 "
                    "WHERE account = 1")
    session.execute("UPDATE ledger SET amount = amount + 30 "
                    "WHERE account = 2")
    inside = session.execute(
        "SELECT account, amount FROM ledger ORDER BY account").rows
    print(f"  inside txn (own writes visible):  {inside}")
    observer = server.connect()
    observer.conf.results_cache_enabled = False
    outside = observer.execute(
        "SELECT account, amount FROM ledger ORDER BY account").rows
    print(f"  other session (isolated):         {outside}")
    session.execute("COMMIT")
    after = observer.execute(
        "SELECT account, amount FROM ledger ORDER BY account").rows
    print(f"  after COMMIT, everyone sees:      {after}")


def kafka_connector(server):
    print("== Kafka connector ==")
    broker = KafkaBroker()
    server.register_storage_handler("kafka", KafkaStorageHandler(broker))
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute(
        "CREATE EXTERNAL TABLE clicks (user_id INT, page STRING) "
        "STORED BY 'kafka' TBLPROPERTIES ('kafka.partitions'='2')")
    session.execute("INSERT INTO clicks VALUES "
                    "(1,'/home'), (2,'/buy'), (1,'/buy'), (3,'/home')")
    # events produced outside Hive are immediately queryable
    broker.get("clicks").produce((2, "/home"))
    rows = session.execute(
        "SELECT page, COUNT(*) FROM clicks GROUP BY page "
        "ORDER BY page").rows
    print(f"  counts over the stream:           {rows}")
    tail = session.execute(
        "SELECT user_id, page, __offset FROM clicks "
        "WHERE __offset >= 1 ORDER BY __partition, __offset").rows
    print(f"  offset-seek (pushed to broker):   {tail}")


def runtime_stats_feedback(server):
    print("== runtime statistics feed the optimizer ==")
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.conf.runtime_stats_feedback = True
    session.execute("CREATE TABLE f (k INT)")
    session.execute("CREATE TABLE d (k INT)")
    session.execute("INSERT INTO f VALUES "
                    + ", ".join(f"({i % 8})" for i in range(240)))
    session.execute("INSERT INTO d VALUES "
                    + ", ".join(f"({i})" for i in range(8)))
    # catalog statistics lie: 'd' claims a million rows
    server.hms.set_statistics(server.hms.get_table("d"),
                              TableStatistics(row_count=1_000_000))
    from repro.plan.relnodes import Join, walk
    sql = "SELECT COUNT(*) FROM d, f WHERE d.k = f.k"
    first = session.execute(sql)
    join = next(n for n in walk(first.optimized.root)
                if isinstance(n, Join))
    print(f"  first plan builds on: "
          f"{'fact' if 'default.f' in join.right.digest else 'dim'} "
          "(misled by stale statistics)")
    second = session.execute(sql)
    join = next(n for n in walk(second.optimized.root)
                if isinstance(n, Join))
    print(f"  second plan builds on: "
          f"{'fact' if 'default.f' in join.right.digest else 'dim'} "
          "(observed cardinalities win)")


def mv_advisor(server):
    print("== materialized view advisor ==")
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute("CREATE TABLE s (item INT, amt DOUBLE, dsk INT)")
    session.execute("CREATE TABLE dd (dsk INT, yr INT, mo INT, "
                    "PRIMARY KEY (dsk) DISABLE NOVALIDATE)")
    session.execute("INSERT INTO dd VALUES " + ", ".join(
        f"({d}, {2020 + d // 12}, {d % 12 + 1})" for d in range(24)))
    session.execute("INSERT INTO s VALUES " + ", ".join(
        f"({i % 7}, {float(i % 20)}, {i % 24})" for i in range(300)))

    workload = [
        "SELECT yr, SUM(amt) FROM s, dd WHERE s.dsk = dd.dsk GROUP BY yr",
        "SELECT mo, SUM(amt) FROM s, dd WHERE s.dsk = dd.dsk "
        "AND yr = 2020 GROUP BY mo",
        "SELECT yr, mo, COUNT(*) FROM s, dd WHERE s.dsk = dd.dsk "
        "GROUP BY yr, mo",
    ]
    advisor = MaterializedViewAdvisor(server, min_support=2)
    for sql in workload:
        advisor.record(sql)
    (recommendation,) = advisor.recommend(top_k=1)
    print(f"  observed {advisor.workload_size} queries; recommending:")
    print(f"    {recommendation.create_statement}")
    print(f"    (supports {recommendation.supporting_queries} queries, "
          f"benefit {recommendation.benefit_score:,.0f})")
    session.execute(recommendation.create_statement)
    result = session.execute(workload[0])
    print(f"  workload query now answered from: {result.views_used}")


def main() -> None:
    server = repro.HiveServer2()
    multi_statement_transactions(server)
    kafka_connector(server)
    runtime_stats_feedback(server)
    mv_advisor(server)


if __name__ == "__main__":
    main()
