"""Federation: Hive as a mediator over Druid and a JDBC source

(paper Section 6 and Figure 6): storage handlers, automatic JSON/SQL
query generation, and a materialized view stored *in* Druid.

Run with:  python examples/federation_druid.py
"""

import repro
from repro.federation import (DruidEngine, DruidStorageHandler,
                              JdbcStorageHandler)
from repro.plan.relnodes import find_scans


def main() -> None:
    server = repro.HiveServer2()
    engine = DruidEngine()
    server.register_storage_handler("druid", DruidStorageHandler(engine))
    server.register_storage_handler("jdbc", JdbcStorageHandler())
    session = server.connect()
    session.conf.results_cache_enabled = False

    print("== create a Druid datasource from Hive (Section 6.1) ==")
    session.execute("""
        CREATE EXTERNAL TABLE druid_table_2 (
            __time DATE, dim1 STRING, m1 DOUBLE)
        STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'""")
    session.execute("""
        INSERT INTO druid_table_2 VALUES
            (DATE '2017-03-01', 'a', 1.0), (DATE '2017-07-01', 'b', 2.0),
            (DATE '2018-01-15', 'a', 3.0), (DATE '2018-06-01', 'c', 4.0),
            (DATE '2018-11-20', 'b', 5.0)""")
    print(f"  datasources in Druid: {sorted(engine.datasources)}")

    print("== the paper's Figure 6 query, pushed to Druid ==")
    sql = """
        SELECT dim1 AS d1, SUM(m1) AS s
        FROM druid_table_2
        WHERE EXTRACT(year FROM __time) >= 2017
        GROUP BY dim1
        ORDER BY s DESC
        LIMIT 10"""
    # show the generated JSON (Figure 6c)
    explain = session.execute("EXPLAIN " + sql)
    pushed = [s.pushed_query for s in find_scans(explain.optimized.root)
              if s.pushed_query is not None]
    if pushed:
        print("  generated Druid query:")
        for line in pushed[0].to_json().splitlines():
            print("   " + line)
    result = session.execute(sql)
    print(f"  rows: {result.rows}")
    print(f"  external engine time: {result.metrics.external_s:.3f}s of "
          f"{result.metrics.total_s:.3f}s total")

    print("== map an EXISTING datasource without declaring columns ==")
    session.execute("""
        CREATE EXTERNAL TABLE druid_table_1
        STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
        TBLPROPERTIES ('druid.datasource' = 'druid_table_2')""")
    mapped = session.execute("SELECT COUNT(*) FROM druid_table_1")
    print(f"  inferred schema from Druid metadata; COUNT(*) = "
          f"{mapped.rows[0][0]}")

    print("== JDBC federation: Calcite generates SQL (Section 6.2) ==")
    session.execute("""
        CREATE EXTERNAL TABLE pg_orders (o_id INT, region STRING,
                                         total DOUBLE)
        STORED BY 'jdbc'""")
    session.execute("""
        INSERT INTO pg_orders VALUES
            (1, 'emea', 10.0), (2, 'amer', 20.0), (3, 'emea', 30.0)""")
    explain = session.execute(
        "EXPLAIN SELECT region, SUM(total) FROM pg_orders "
        "WHERE o_id > 1 GROUP BY region")
    pushed_sql = [s.pushed_query
                  for s in find_scans(explain.optimized.root)
                  if s.pushed_query is not None]
    print(f"  generated SQL: {pushed_sql[0]}")
    rows = session.execute(
        "SELECT region, SUM(total) FROM pg_orders WHERE o_id > 1 "
        "GROUP BY region ORDER BY region").rows
    print(f"  rows: {rows}")

    print("== joining Druid data with native warehouse tables ==")
    session.execute("CREATE TABLE dim_names (dim1 STRING, label STRING)")
    session.execute("INSERT INTO dim_names VALUES ('a', 'alpha'), "
                    "('b', 'beta'), ('c', 'gamma')")
    rows = session.execute("""
        SELECT n.label, SUM(d.m1) total
        FROM druid_table_2 d JOIN dim_names n ON d.dim1 = n.dim1
        GROUP BY n.label ORDER BY total DESC""").rows
    for row in rows:
        print(f"    {row}")


if __name__ == "__main__":
    main()
