"""Workload management: the paper's Section 5.2 resource plan, verbatim.

Creates the ``daytime`` plan with ``bi`` and ``etl`` pools, a downgrade
trigger, and an application mapping, then shows queries being routed,
borrowing idle capacity, and getting moved by the trigger.

Run with:  python examples/workload_management.py
"""

import repro


def main() -> None:
    server = repro.HiveServer2()
    admin = server.connect()

    print("== the paper's resource plan DDL (Section 5.2) ==")
    ddl = [
        "CREATE RESOURCE PLAN daytime",
        "CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
        "query_parallelism=5",
        "CREATE POOL daytime.etl WITH alloc_fraction=0.2, "
        "query_parallelism=20",
        "CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 "
        "THEN MOVE etl",
        "ADD RULE downgrade TO bi",
        "CREATE APPLICATION MAPPING visualization_app IN daytime TO bi",
        "ALTER PLAN daytime SET DEFAULT POOL = etl",
        "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE",
    ]
    for statement in ddl:
        print(f"  {statement};")
        admin.execute(statement)

    plan = server.workload_manager.plan
    print(f"\n  active plan: {plan.name}  pools="
          f"{[(p.name, p.alloc_fraction, p.query_parallelism) for p in plan.pools.values()]}")

    print("== queries route to pools by application ==")
    bi_session = server.connect(application="visualization_app")
    etl_session = server.connect(application="nightly_loader")
    bi_session.execute("CREATE TABLE metrics (k INT, v DOUBLE)")
    rows = ", ".join(f"({i}, {i * 0.5})" for i in range(500))
    bi_session.execute(f"INSERT INTO metrics VALUES {rows}")
    bi_session.conf.results_cache_enabled = False
    etl_session.conf.results_cache_enabled = False

    bi_result = bi_session.execute("SELECT COUNT(*) FROM metrics")
    etl_result = etl_session.execute("SELECT SUM(v) FROM metrics")
    print(f"  visualization_app query ran in pool: "
          f"{bi_result.metrics.pool!r}")
    print(f"  nightly_loader query ran in pool:   "
          f"{etl_result.metrics.pool!r} (default)")

    print("== a trigger moves long-running queries out of bi ==")
    # tighten the trigger so our small query overruns it
    admin.execute("CREATE RULE demote IN daytime WHEN total_runtime > 0 "
                  "THEN MOVE etl")
    admin.execute("ADD RULE demote TO bi")
    moved = bi_session.execute("SELECT k % 10 g, SUM(v) FROM metrics "
                               "GROUP BY k % 10")
    print(f"  started in 'bi', moved to: {moved.metrics.moved_to_pool!r}"
          f" (runtime {moved.metrics.total_s:.2f}s exceeded threshold)")


if __name__ == "__main__":
    main()
