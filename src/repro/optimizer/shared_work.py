"""Shared work optimization (Section 4.5).

"Hive is capable of identifying overlapping subexpressions within the
execution plan of a given query, computing them only once and reusing
their results.  Instead of triggering transformations to find equivalent
subexpressions ... the shared work optimizer only merges equal parts of a
plan."

The detector walks the plan and collects the digests of subtrees that
appear more than once; the runtime memoizes exactly those digests, so
each shared subexpression executes (and is charged) once.  Because only
*equal* plan parts merge, reuse opportunities that would need rewriting
are missed — the very limitation the paper acknowledges.
"""

from __future__ import annotations

from collections import Counter

from ..plan import relnodes as rel


def find_shared_subtrees(root: rel.RelNode) -> frozenset[str]:
    """Digests of repeated, non-trivial subtrees (deepest first)."""
    counts: Counter[str] = Counter()
    for node in rel.walk(root):
        if isinstance(node, rel.Values):
            continue
        counts[node.digest] += 1
    # memoizing an outer shared subtree covers its children, but a child
    # may recur *more* often than its parent (three scans, two identical
    # joins), so every repeated digest is kept.
    return frozenset(digest for digest, count in counts.items()
                     if count > 1)
