"""Column (projection) pruning.

Trims every operator — most importantly scans — down to the columns
actually consumed upstream.  With the columnar file format, a pruned
TableScan reads fewer column streams, which the cost model rewards with
proportionally less IO (Section 4.1: "project unused columns" was one of
the original rule-based optimizations; here it is schema-rewriting).
"""

from __future__ import annotations

from typing import Optional

from ..common.rows import Schema
from ..plan import relnodes as rel
from ..plan import rexnodes as rex


def prune_columns(root: rel.RelNode) -> rel.RelNode:
    """Rewrite the tree reading only required columns everywhere."""
    required = set(range(len(root.schema)))
    pruned, mapping = _prune(root, required)
    if len(pruned.schema) == len(root.schema) and all(
            mapping.get(i) == i for i in range(len(root.schema))):
        return pruned
    # restore the original column order/width at the very top
    exprs = tuple(rex.RexInputRef(mapping[i], root.schema[i].dtype)
                  for i in range(len(root.schema)))
    return rel.Project(pruned, exprs,
                       tuple(c.name for c in root.schema))


def _identity(node: rel.RelNode) -> tuple[rel.RelNode, dict[int, int]]:
    return node, {i: i for i in range(len(node.schema))}


def _prune(node: rel.RelNode,
           required: set[int]) -> tuple[rel.RelNode, dict[int, int]]:
    """Returns (new node, old ordinal -> new ordinal for kept columns)."""
    if isinstance(node, rel.TableScan):
        return _prune_scan(node, required)
    if isinstance(node, rel.Values):
        keep = sorted(required) or [0]
        schema = Schema(node.schema[i] for i in keep)
        rows = tuple(tuple(row[i] for i in keep) for row in node.rows)
        return rel.Values(schema, rows), {o: n for n, o in enumerate(keep)}
    if isinstance(node, rel.Filter):
        child_required = required | node.condition.input_refs()
        child, mapping = _prune(node.input, child_required)
        condition = rex.remap_refs(node.condition, mapping.__getitem__)
        return rel.Filter(child, condition), mapping
    if isinstance(node, rel.Project):
        keep = sorted(required) or [0]
        child_required: set[int] = set()
        for i in keep:
            child_required |= node.exprs[i].input_refs()
        child, child_map = _prune(node.input, child_required)
        exprs = tuple(rex.remap_refs(node.exprs[i],
                                     child_map.__getitem__)
                      for i in keep)
        names = tuple(node.names[i] for i in keep)
        return (rel.Project(child, exprs, names),
                {o: n for n, o in enumerate(keep)})
    if isinstance(node, rel.Join):
        return _prune_join(node, required)
    if isinstance(node, rel.Aggregate):
        return _prune_aggregate(node, required)
    if isinstance(node, rel.Sort):
        child_required = required | {k.index for k in node.keys}
        child, mapping = _prune(node.input, child_required)
        keys = tuple(rel.SortKey(mapping[k.index], k.ascending)
                     for k in node.keys)
        return rel.Sort(child, keys, node.fetch), mapping
    if isinstance(node, rel.Limit):
        child, mapping = _prune(node.input, required)
        return rel.Limit(child, node.count), mapping
    if isinstance(node, rel.Window):
        return _prune_window(node, required)
    if isinstance(node, rel.Union):
        keep = sorted(required) or [0]
        children = []
        for branch in node.rels:
            child, child_map = _prune(branch, set(keep))
            # realign: children must share column order
            exprs = tuple(
                rex.RexInputRef(child_map[i], branch.schema[i].dtype)
                for i in keep)
            names = tuple(branch.schema[i].name for i in keep)
            project = rel.Project(child, exprs, names)
            children.append(project if not project.is_identity()
                            else child)
        return (rel.Union(tuple(children), node.all),
                {o: n for n, o in enumerate(keep)})
    if isinstance(node, rel.SetOp):
        # row-equality semantics: never prune set-op inputs
        left, _ = _identity(node.left)
        right, _ = _identity(node.right)
        return node, {i: i for i in range(len(node.schema))}
    return _identity(node)


def _prune_scan(node: rel.TableScan,
                required: set[int]) -> tuple[rel.RelNode, dict[int, int]]:
    if node.pushed_query is not None:
        return _identity(node)
    for sarg in node.sarg_conjuncts:
        required = required | sarg.input_refs()
    keep = sorted(required) or [0]
    if len(keep) == len(node.schema):
        return _identity(node)
    mapping = {o: n for n, o in enumerate(keep)}
    schema = Schema(node.schema[i] for i in keep)
    sargs = tuple(rex.remap_refs(s, mapping.__getitem__)
                  for s in node.sarg_conjuncts)
    scan = rel.TableScan(node.table_name, schema, node.pruned_partitions,
                         sargs, node.semijoin_sources, node.pushed_query,
                         node.scan_id)
    return scan, mapping


def _prune_join(node: rel.Join,
                required: set[int]) -> tuple[rel.RelNode, dict[int, int]]:
    left_width = len(node.left.schema)
    cond_refs = (node.condition.input_refs()
                 if node.condition is not None else set())
    needed = required | cond_refs
    left_required = {i for i in needed if i < left_width}
    right_required = {i - left_width for i in needed if i >= left_width}
    left, left_map = _prune(node.left, left_required)
    if node.kind in ("semi", "anti"):
        right, right_map = _prune(node.right, right_required)
    else:
        right, right_map = _prune(node.right, right_required)
    new_left_width = len(left.schema)

    def remap(i: int) -> int:
        if i < left_width:
            return left_map[i]
        return new_left_width + right_map[i - left_width]

    condition = (rex.remap_refs(node.condition, remap)
                 if node.condition is not None else None)
    join = rel.Join(left, right, node.kind, condition)
    mapping = {}
    for i in sorted(required):
        if node.kind in ("semi", "anti"):
            mapping[i] = left_map[i]
        else:
            mapping[i] = remap(i)
    return join, mapping


def _prune_aggregate(node: rel.Aggregate, required: set[int]
                     ) -> tuple[rel.RelNode, dict[int, int]]:
    key_count = len(node.group_keys)
    keep_calls = sorted(i - key_count for i in required
                        if key_count <= i < key_count + len(node.agg_calls))
    child_required = set(node.group_keys)
    for i in keep_calls:
        call = node.agg_calls[i]
        if call.arg is not None:
            child_required.add(call.arg)
    child, child_map = _prune(node.input, child_required)
    group_keys = tuple(child_map[k] for k in node.group_keys)
    agg_calls = tuple(
        rex.AggregateCall(
            node.agg_calls[i].func,
            None if node.agg_calls[i].arg is None
            else child_map[node.agg_calls[i].arg],
            node.agg_calls[i].dtype, node.agg_calls[i].name,
            node.agg_calls[i].distinct)
        for i in keep_calls)
    aggregate = rel.Aggregate(child, group_keys, agg_calls,
                              node.group_names, node.grouping_sets)
    mapping = {i: i for i in range(key_count)}
    for n, old_call in enumerate(keep_calls):
        mapping[key_count + old_call] = key_count + n
    if node.grouping_sets is not None:
        # trailing grouping_id column keeps its (shifted) position
        mapping[key_count + len(node.agg_calls)] = key_count + len(
            keep_calls)
    return aggregate, mapping


def _prune_window(node: rel.Window, required: set[int]
                  ) -> tuple[rel.RelNode, dict[int, int]]:
    input_width = len(node.input.schema)
    keep_calls = sorted(i - input_width for i in required
                        if i >= input_width)
    child_required = {i for i in required if i < input_width}
    for call_index in keep_calls:
        call = node.calls[call_index]
        child_required |= set(call.partition_keys)
        child_required |= {k.index for k in call.order_keys}
        if call.arg is not None:
            child_required.add(call.arg)
    child, child_map = _prune(node.input, child_required)
    calls = []
    for call_index in keep_calls:
        call = node.calls[call_index]
        calls.append(rel.WindowCall(
            call.func,
            None if call.arg is None else child_map[call.arg],
            tuple(child_map[k] for k in call.partition_keys),
            tuple(rel.SortKey(child_map[k.index], k.ascending)
                  for k in call.order_keys),
            call.dtype, call.name))
    window = rel.Window(child, tuple(calls))
    new_input_width = len(child.schema)
    mapping = {}
    for i in sorted(required):
        if i < input_width:
            mapping[i] = child_map[i]
        else:
            mapping[i] = new_input_width + keep_calls.index(i - input_width)
    return window, mapping
