"""Cardinality estimation from HMS statistics (Section 4.1).

The provider walks a logical plan and estimates output row counts using
the additive table statistics stored in the Metastore: row counts,
min/max ranges and HyperLogLog-backed NDV.  Estimates drive join
reordering, semijoin-reduction placement, and the reoptimizer's
comparison against captured runtime statistics (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metastore.hms import HiveMetastore
from ..metastore.stats import ColumnStatistics, TableStatistics
from ..plan import relnodes as rel
from ..plan import rexnodes as rex

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_TABLE_ROWS = 1000


@dataclass
class ColumnEstimate:
    ndv: float
    min_value: object = None
    max_value: object = None


class StatsProvider:
    """Estimates row counts for RelNode trees.

    ``overrides`` maps node digests to observed row counts — the
    reoptimizer injects captured runtime statistics through it so a
    re-planned query uses real cardinalities (Section 4.2).
    """

    def __init__(self, hms: HiveMetastore,
                 overrides: Optional[dict[str, int]] = None):
        self.hms = hms
        self.overrides = overrides or {}

    # -- public API --------------------------------------------------------- #
    def row_count(self, node: rel.RelNode) -> float:
        override = self.overrides.get(node.digest)
        if override is not None:
            return max(1.0, float(override))
        return max(1.0, self._estimate(node))

    def column_stats(self, node: rel.RelNode,
                     ordinal: int) -> Optional[ColumnEstimate]:
        """Column statistics propagated (approximately) through the plan."""
        if isinstance(node, rel.TableScan):
            stats = self._table_stats(node)
            name = node.schema[ordinal].name
            column = stats.column(name)
            if column is None:
                return None
            return ColumnEstimate(column.ndv, column.min_value,
                                  column.max_value)
        if isinstance(node, (rel.Filter, rel.Sort, rel.Limit)):
            return self.column_stats(node.inputs[0], ordinal)
        if isinstance(node, rel.Project):
            expr = node.exprs[ordinal]
            if isinstance(expr, rex.RexInputRef):
                return self.column_stats(node.input, expr.index)
            return None
        if isinstance(node, rel.Join):
            left_width = len(node.left.schema)
            if node.kind in ("semi", "anti") or ordinal < left_width:
                return self.column_stats(node.left, ordinal)
            return self.column_stats(node.right, ordinal - left_width)
        if isinstance(node, rel.Aggregate):
            if ordinal < len(node.group_keys):
                return self.column_stats(node.input,
                                         node.group_keys[ordinal])
            return None
        return None

    # -- estimation --------------------------------------------------------- #
    def _estimate(self, node: rel.RelNode) -> float:
        if isinstance(node, rel.TableScan):
            return self._scan_rows(node)
        if isinstance(node, rel.Values):
            return float(len(node.rows))
        if isinstance(node, rel.Filter):
            input_rows = self.row_count(node.input)
            return input_rows * self.selectivity(node.input, node.condition)
        if isinstance(node, rel.Project):
            return self.row_count(node.input)
        if isinstance(node, rel.Window):
            return self.row_count(node.input)
        if isinstance(node, rel.Limit):
            return min(self.row_count(node.input), float(node.count))
        if isinstance(node, rel.Sort):
            rows = self.row_count(node.input)
            if node.fetch is not None:
                rows = min(rows, float(node.fetch))
            return rows
        if isinstance(node, rel.Aggregate):
            return self._aggregate_rows(node)
        if isinstance(node, rel.Join):
            return self._join_rows(node)
        if isinstance(node, rel.Union):
            return sum(self.row_count(child) for child in node.rels)
        if isinstance(node, rel.SetOp):
            left = self.row_count(node.left)
            if node.kind == "intersect":
                return min(left, self.row_count(node.right)) * 0.5
            return left * 0.5
        return DEFAULT_TABLE_ROWS

    def _scan_rows(self, node: rel.TableScan) -> float:
        stats = self._table_stats(node)
        rows = float(stats.row_count or DEFAULT_TABLE_ROWS)
        if node.pruned_partitions is not None:
            table = self.hms.get_table(node.table_name)
            total = max(1, len(table.partitions))
            rows *= len(node.pruned_partitions) / total
        for sarg in node.sarg_conjuncts:
            rows *= self.selectivity(node, sarg, raw_schema=True)
        return rows

    def _table_stats(self, node: rel.TableScan) -> TableStatistics:
        table = self.hms.get_table(node.table_name)
        return self.hms.get_statistics(table)

    def _aggregate_rows(self, node: rel.Aggregate) -> float:
        input_rows = self.row_count(node.input)
        if not node.group_keys:
            return 1.0
        ndv_product = 1.0
        for key in node.group_keys:
            stats = self.column_stats(node.input, key)
            ndv_product *= stats.ndv if stats else 10.0
        result = min(input_rows, ndv_product)
        if node.grouping_sets is not None:
            result *= len(node.grouping_sets)
        return result

    def _join_rows(self, node: rel.Join) -> float:
        left_rows = self.row_count(node.left)
        right_rows = self.row_count(node.right)
        if node.kind == "anti":
            return max(1.0, left_rows * 0.5)
        pairs, residual = rex.split_equi_condition(
            node.condition, len(node.left.schema))
        if not pairs:
            cross = left_rows * right_rows
            if node.condition is not None:
                cross *= DEFAULT_RANGE_SELECTIVITY
            return max(1.0, min(cross, 1e15))
        selectivity = 1.0
        for left_key, right_key in pairs:
            left_stats = self.column_stats(node.left, left_key)
            right_stats = self.column_stats(node.right, right_key)
            left_ndv = left_stats.ndv if left_stats else 10.0
            right_ndv = right_stats.ndv if right_stats else 10.0
            selectivity /= max(left_ndv, right_ndv, 1.0)
        rows = left_rows * right_rows * selectivity
        for conjunct in residual:
            rows *= DEFAULT_RANGE_SELECTIVITY
        if node.kind == "semi":
            rows = min(rows, left_rows)
        if node.kind in ("left", "full"):
            rows = max(rows, left_rows)
        if node.kind in ("right", "full"):
            rows = max(rows, right_rows)
        return max(1.0, rows)

    # -- predicate selectivity ------------------------------------------------ #
    def selectivity(self, input_node: rel.RelNode, predicate: rex.RexNode,
                    raw_schema: bool = False) -> float:
        """Fraction of rows satisfying ``predicate`` over ``input_node``."""
        if isinstance(predicate, rex.RexLiteral):
            return 1.0 if predicate.value else 0.0
        if not isinstance(predicate, rex.RexCall):
            return 1.0
        op = predicate.op
        if op == "AND":
            result = 1.0
            for operand in predicate.operands:
                result *= self.selectivity(input_node, operand, raw_schema)
            return result
        if op == "OR":
            result = 0.0
            for operand in predicate.operands:
                result += self.selectivity(input_node, operand, raw_schema)
            return min(1.0, result)
        if op == "NOT":
            return max(0.0, 1.0 - self.selectivity(
                input_node, predicate.operands[0], raw_schema))
        if op == "=":
            ndv = self._operand_ndv(input_node, predicate.operands[0],
                                    raw_schema)
            return 1.0 / ndv if ndv else DEFAULT_EQ_SELECTIVITY
        if op == "IN":
            ndv = self._operand_ndv(input_node, predicate.operands[0],
                                    raw_schema)
            count = len(predicate.operands) - 1
            if ndv:
                return min(1.0, count / ndv)
            return min(1.0, count * DEFAULT_EQ_SELECTIVITY)
        if op in ("<", "<=", ">", ">="):
            return self._range_selectivity(input_node, predicate,
                                           raw_schema)
        if op in ("LIKE",):
            return DEFAULT_LIKE_SELECTIVITY
        if op in ("IS_NULL",):
            return 0.05
        if op in ("IS_NOT_NULL",):
            return 0.95
        if op == "<>":
            ndv = self._operand_ndv(input_node, predicate.operands[0],
                                    raw_schema)
            return 1.0 - (1.0 / ndv if ndv else DEFAULT_EQ_SELECTIVITY)
        return DEFAULT_RANGE_SELECTIVITY

    def _operand_ndv(self, input_node, operand: rex.RexNode,
                     raw_schema: bool) -> Optional[float]:
        if isinstance(operand, rex.RexInputRef):
            stats = self.column_stats(input_node, operand.index)
            if stats is not None:
                return max(1.0, stats.ndv)
        return None

    def _range_selectivity(self, input_node, predicate: rex.RexCall,
                           raw_schema: bool) -> float:
        ref, literal = predicate.operands[0], predicate.operands[1]
        flipped = False
        if isinstance(literal, rex.RexInputRef) and isinstance(
                ref, rex.RexLiteral):
            ref, literal = literal, ref
            flipped = True
        if not (isinstance(ref, rex.RexInputRef)
                and isinstance(literal, rex.RexLiteral)):
            return DEFAULT_RANGE_SELECTIVITY
        stats = self.column_stats(input_node, ref.index)
        if stats is None or stats.min_value is None:
            return DEFAULT_RANGE_SELECTIVITY
        value = ref.dtype.to_storage(literal.value) \
            if literal.value is not None else None
        lo = ref.dtype.to_storage(stats.min_value) if not isinstance(
            stats.min_value, (int, float)) else stats.min_value
        hi = ref.dtype.to_storage(stats.max_value) if not isinstance(
            stats.max_value, (int, float)) else stats.max_value
        try:
            width = float(hi) - float(lo)
            if width <= 0 or value is None:
                return DEFAULT_RANGE_SELECTIVITY
            fraction = (float(value) - float(lo)) / width
        except (TypeError, ValueError):
            return DEFAULT_RANGE_SELECTIVITY
        fraction = min(1.0, max(0.0, fraction))
        op = predicate.op
        if flipped:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        if op in ("<", "<="):
            return max(0.01, fraction)
        return max(0.01, 1.0 - fraction)
