"""Materialized view rewriting (Section 4.4).

Produces *fully contained* and *partially contained* rewritings of
Select-Project-Join-Aggregate (SPJA) expressions against registered
materialized views, mirroring Figure 4:

* **full containment** (Figure 4b): the view's predicate set is implied
  by the query's; the query is answered from the view alone, with a
  residual filter and (if the query groups are coarser) a roll-up
  aggregation on top,
* **partial containment** (Figure 4c): exactly one view range predicate
  is wider in the query; the rewrite unions the view contents with the
  *delta* computed from the source tables and re-aggregates.

The matcher is structural: plans are canonicalized over
``table.column`` names, so it is insensitive to join order and column
pruning, but it bails out on self-joins, outer joins, window functions
and grouping sets.  The incremental MV rebuild in the driver reuses this
exact machinery, as the paper describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..common.rows import Schema
from ..errors import HiveError
from ..metastore.catalog import TableDescriptor
from ..plan import relnodes as rel
from ..plan import rexnodes as rex

_MERGEABLE = {"sum", "count", "min", "max"}


# --------------------------------------------------------------------------- #
# SPJA extraction

@dataclass
class SPJA:
    """Canonical form of an SPJA subtree."""

    tables: tuple[str, ...]                  # sorted unique table names
    scans: list[rel.TableScan]
    offsets: list[int]
    conjuncts: list[rex.RexNode]             # over global leaf space
    # aggregation (None for SPJ)
    group_exprs: Optional[list[rex.RexNode]] = None
    agg_calls: Optional[list[tuple]] = None  # (func, arg_digest, distinct, dtype)
    # final projection over (aggregate output | leaf space)
    output_exprs: list[rex.RexNode] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)
    aggregate_node: Optional[rel.Aggregate] = None
    ordinal_names: dict[int, str] = field(default_factory=dict)

    @property
    def is_aggregated(self) -> bool:
        return self.group_exprs is not None


def canonical_digest(expr: rex.RexNode,
                     ordinal_names: dict[int, str]) -> Optional[str]:
    """Digest with input ordinals replaced by table.column names."""
    if isinstance(expr, rex.RexInputRef):
        return ordinal_names.get(expr.index)
    if isinstance(expr, rex.RexLiteral):
        return repr(expr.value)
    if isinstance(expr, rex.RexCall):
        parts = []
        for operand in expr.operands:
            digest = canonical_digest(operand, ordinal_names)
            if digest is None:
                return None
            parts.append(digest)
        if expr.op in ("AND", "OR", "=", "<>", "+", "*"):
            parts = sorted(parts)
        return f"{expr.op}({', '.join(parts)})"
    return None


def extract_spja(node: rel.RelNode) -> Optional[SPJA]:
    """Extract the canonical SPJA form, or None if the shape is richer."""
    top_project: Optional[rel.Project] = None
    if isinstance(node, rel.Project):
        top_project = node
        node = node.input
    aggregate: Optional[rel.Aggregate] = None
    if isinstance(node, rel.Aggregate):
        if node.grouping_sets is not None or any(
                c.distinct for c in node.agg_calls):
            return None
        aggregate = node
        node = node.input
    pre_project: Optional[rel.Project] = None
    if isinstance(node, rel.Project):
        pre_project = node
        node = node.input
    top_filter_conjuncts: list[rex.RexNode] = []
    if isinstance(node, rel.Filter):
        top_filter_conjuncts = rex.conjunctions(node.condition)
        node = node.input

    scans: list[rel.TableScan] = []
    offsets: list[int] = []
    conjuncts: list[rex.RexNode] = []

    def visit(n: rel.RelNode, offset: int) -> Optional[int]:
        if isinstance(n, rel.Join) and n.kind == "inner":
            left_width = visit(n.left, offset)
            if left_width is None:
                return None
            right_width = visit(n.right, offset + left_width)
            if right_width is None:
                return None
            if n.condition is not None:
                conjuncts.extend(rex.conjunctions(
                    rex.shift_refs(n.condition, offset)))
            return left_width + right_width
        if isinstance(n, rel.Filter):
            width = visit(n.input, offset)
            if width is None:
                return None
            conjuncts.extend(rex.conjunctions(
                rex.shift_refs(n.condition, offset)))
            return width
        if isinstance(n, rel.TableScan):
            if n.pushed_query is not None:
                return None
            scans.append(n)
            offsets.append(offset)
            return len(n.schema)
        return None

    total = visit(node, 0)
    if total is None or not scans:
        return None
    table_names = [s.table_name for s in scans]
    if len(set(table_names)) != len(table_names):
        return None  # self-join: canonical names would be ambiguous

    ordinal_names: dict[int, str] = {}
    for scan, offset in zip(scans, offsets):
        for j, col in enumerate(scan.schema):
            ordinal_names[offset + j] = f"{scan.table_name}.{col.name.lower()}"

    conjuncts = conjuncts + top_filter_conjuncts
    spja = SPJA(tables=tuple(sorted(set(table_names))), scans=scans,
                offsets=offsets, conjuncts=conjuncts,
                ordinal_names=ordinal_names)

    def leaf_expr(expr: rex.RexNode,
                  through: Optional[rel.Project]) -> rex.RexNode:
        if through is None:
            return expr
        return _inline(expr, through.exprs)

    if aggregate is not None:
        spja.aggregate_node = aggregate
        spja.group_exprs = [
            leaf_expr(rex.RexInputRef(k, aggregate.input.schema[k].dtype),
                      pre_project)
            for k in aggregate.group_keys]
        spja.agg_calls = []
        for call in aggregate.agg_calls:
            if call.arg is None:
                spja.agg_calls.append((call.func, None, call.distinct,
                                       call.dtype))
            else:
                arg = leaf_expr(
                    rex.RexInputRef(call.arg,
                                    aggregate.input.schema[call.arg].dtype),
                    pre_project)
                digest = canonical_digest(arg, ordinal_names)
                if digest is None:
                    return None
                spja.agg_calls.append((call.func, digest, call.distinct,
                                       call.dtype))
        if top_project is not None:
            spja.output_exprs = list(top_project.exprs)
            spja.output_names = list(top_project.names)
        else:
            spja.output_exprs = [
                rex.RexInputRef(i, aggregate.schema[i].dtype)
                for i in range(len(aggregate.schema))]
            spja.output_names = [c.name for c in aggregate.schema]
    else:
        # SPJ: outputs over the leaf space
        if pre_project is not None and top_project is not None:
            return None
        project = top_project or pre_project
        if project is not None:
            spja.output_exprs = list(project.exprs)
            spja.output_names = list(project.names)
        else:
            width = sum(len(s.schema) for s in scans)
            spja.output_exprs = [
                rex.RexInputRef(i, _ordinal_type(spja, i))
                for i in range(width)]
            spja.output_names = [ordinal_names[i].split(".")[-1]
                                 for i in range(width)]
    return spja


def _ordinal_type(spja: SPJA, ordinal: int):
    for scan, offset in zip(spja.scans, spja.offsets):
        if offset <= ordinal < offset + len(scan.schema):
            return scan.schema[ordinal - offset].dtype
    raise HiveError(f"ordinal {ordinal} out of range")


def _inline(expr: rex.RexNode,
            project_exprs: tuple[rex.RexNode, ...]) -> rex.RexNode:
    if isinstance(expr, rex.RexInputRef):
        return project_exprs[expr.index]
    if isinstance(expr, rex.RexCall):
        return rex.RexCall(expr.op,
                           tuple(_inline(o, project_exprs)
                                 for o in expr.operands), expr.dtype)
    return expr


# --------------------------------------------------------------------------- #
# predicate implication

@dataclass(frozen=True)
class SimplePredicate:
    column: str
    op: str
    value: object


def parse_simple(conjunct: rex.RexNode,
                 ordinal_names: dict[int, str]) -> Optional[SimplePredicate]:
    if not isinstance(conjunct, rex.RexCall):
        return None
    if conjunct.op in ("=", "<", "<=", ">", ">="):
        a, b = conjunct.operands
        if isinstance(a, rex.RexInputRef) and isinstance(b, rex.RexLiteral):
            column = ordinal_names.get(a.index)
            if column is None:
                return None
            return SimplePredicate(column, conjunct.op,
                                   a.dtype.to_storage(b.value))
        if isinstance(b, rex.RexInputRef) and isinstance(a, rex.RexLiteral):
            column = ordinal_names.get(b.index)
            if column is None:
                return None
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                       "=": "="}[conjunct.op]
            return SimplePredicate(column, flipped,
                                   b.dtype.to_storage(a.value))
    return None


def implies(query_pred: SimplePredicate, view_pred: SimplePredicate) -> bool:
    """Does every row satisfying ``query_pred`` satisfy ``view_pred``?"""
    if query_pred.column != view_pred.column:
        return False
    q, v = query_pred, view_pred
    try:
        if v.op == ">":
            if q.op == ">":
                return q.value >= v.value
            if q.op == ">=":
                return q.value > v.value
            if q.op == "=":
                return q.value > v.value
        if v.op == ">=":
            if q.op in (">", ">="):
                return q.value >= v.value
            if q.op == "=":
                return q.value >= v.value
        if v.op == "<":
            if q.op == "<":
                return q.value <= v.value
            if q.op == "<=":
                return q.value < v.value
            if q.op == "=":
                return q.value < v.value
        if v.op == "<=":
            if q.op in ("<", "<="):
                return q.value <= v.value
            if q.op == "=":
                return q.value <= v.value
        if v.op == "=" and q.op == "=":
            return q.value == v.value
    except TypeError:
        return False
    return False


# --------------------------------------------------------------------------- #
# view descriptors

@dataclass
class ViewDefinition:
    """A materialized view's canonical SPJA plus its storage table."""

    table: TableDescriptor
    spja: SPJA
    #: canonical digest -> MV table column ordinal (for group keys / SPJ
    #: outputs); aggregates use "AGG:<func>:<arg digest>" keys
    output_map: dict[str, int]


def build_view_definition(table: TableDescriptor,
                          plan: rel.RelNode) -> Optional[ViewDefinition]:
    """Canonicalize an (already optimized) MV definition plan."""
    spja = extract_spja(plan)
    if spja is None:
        return None
    output_map: dict[str, int] = {}
    if spja.is_aggregated:
        aggregate = spja.aggregate_node
        key_count = len(aggregate.group_keys)
        # canonical names of the aggregate output positions
        agg_out_digests: dict[int, str] = {}
        for i, group_expr in enumerate(spja.group_exprs):
            digest = canonical_digest(group_expr, spja.ordinal_names)
            if digest is None:
                return None
            agg_out_digests[i] = digest
        for i, (func, arg_digest, distinct, _)\
                in enumerate(spja.agg_calls):
            agg_out_digests[key_count + i] = _agg_key(func, arg_digest)
        # map through the MV's final projection
        for out_ordinal, expr in enumerate(spja.output_exprs):
            if isinstance(expr, rex.RexInputRef):
                digest = agg_out_digests.get(expr.index)
                if digest is not None:
                    output_map[digest] = out_ordinal
    else:
        for out_ordinal, expr in enumerate(spja.output_exprs):
            digest = canonical_digest(expr, spja.ordinal_names)
            if digest is not None:
                output_map[digest] = out_ordinal
    return ViewDefinition(table, spja, output_map)


def _agg_key(func: str, arg_digest: Optional[str]) -> str:
    return f"AGG:{func}:{arg_digest or '*'}"


# --------------------------------------------------------------------------- #
# the rewriter

class MaterializedViewRewriter:
    """Attempts view-based rewrites over an optimized plan.

    ``pk_lookup`` resolves a table name to its declared primary key; it
    enables rewrites where the view joins *more* tables than the query,
    provided every extra table is joined on its full primary key — the
    constraint-based transformations of Section 4.4 (a PK join to an
    extra dimension neither adds nor removes fact rows when the foreign
    key is declared).
    """

    def __init__(self, views: list[ViewDefinition],
                 scan_id_source=itertools.count(10_000),
                 pk_lookup=None):
        self.views = views
        self._scan_ids = scan_id_source
        self.pk_lookup = pk_lookup
        self.applied: list[str] = []

    def rewrite(self, root: rel.RelNode) -> rel.RelNode:
        if not self.views:
            return root

        def rule(node: rel.RelNode) -> Optional[rel.RelNode]:
            spja = extract_spja(node)
            if spja is None:
                return None
            for view in self.views:
                rewritten = self._try_view(node, spja, view)
                if rewritten is not None:
                    self.applied.append(view.table.qualified_name)
                    return rewritten
            return None

        return rel.transform_bottom_up(root, rule)

    # -- matching --------------------------------------------------------------- #
    def _try_view(self, node: rel.RelNode, query: SPJA,
                  view: ViewDefinition) -> Optional[rel.RelNode]:
        query_tables = set(query.tables)
        view_tables = set(view.spja.tables)
        if not query_tables <= view_tables:
            return None
        extras = view_tables - query_tables
        if extras and not self._extras_are_pk_joined(view, extras):
            return None
        if query.is_aggregated != view.spja.is_aggregated:
            # an aggregated query can still use an SPJ view
            if not (query.is_aggregated and not view.spja.is_aggregated):
                return None
        match = self._match_predicates(query, view, extras)
        if match is None:
            return None
        residual, violated = match
        if not violated:
            return self._full_rewrite(node, query, view, residual)
        if len(violated) == 1 and query.is_aggregated:
            return self._partial_rewrite(node, query, view, residual,
                                         violated[0])
        return None

    def _extras_are_pk_joined(self, view: ViewDefinition,
                              extras: set[str]) -> bool:
        """Every extra view table must join on its full primary key."""
        if self.pk_lookup is None:
            return False
        for table in extras:
            pk = tuple(c.lower() for c in (self.pk_lookup(table) or ()))
            if len(pk) != 1:
                return False  # only single-column PKs are supported
            if not any(self._is_pk_join(c, view.spja, table, pk[0])
                       for c in view.spja.conjuncts):
                return False
        return True

    def _is_pk_join(self, conjunct: rex.RexNode, spja: SPJA, table: str,
                    pk_column: str) -> bool:
        if not (isinstance(conjunct, rex.RexCall) and conjunct.op == "="
                and len(conjunct.operands) == 2):
            return False
        a, b = conjunct.operands
        if not (isinstance(a, rex.RexInputRef)
                and isinstance(b, rex.RexInputRef)):
            return False
        names = {spja.ordinal_names.get(a.index),
                 spja.ordinal_names.get(b.index)}
        return f"{table}.{pk_column}" in names

    def _tables_of_conjunct(self, spja: SPJA,
                            conjunct: rex.RexNode) -> set[str]:
        tables = set()
        for ordinal in conjunct.input_refs():
            name = spja.ordinal_names.get(ordinal)
            if name is not None:
                tables.add(name.rsplit(".", 1)[0])
        return tables

    def _match_predicates(self, query: SPJA, view: ViewDefinition,
                          extras: set[str] = frozenset()):
        """Classify view conjuncts as satisfied/violated; return

        (residual query conjuncts, violated view conjuncts)."""
        view_spja = view.spja
        query_digests = {}
        for conjunct in query.conjuncts:
            digest = canonical_digest(conjunct, query.ordinal_names)
            if digest is None:
                return None
            query_digests[digest] = conjunct
        violated: list[rex.RexNode] = []
        consumed: set[str] = set()
        for view_conjunct in view_spja.conjuncts:
            view_digest = canonical_digest(view_conjunct,
                                           view_spja.ordinal_names)
            if view_digest is None:
                return None
            touched_extras = self._tables_of_conjunct(
                view_spja, view_conjunct) & extras
            if touched_extras:
                # PK joins to extra tables neither add nor drop rows;
                # any *other* predicate on an extra table would, so bail
                is_join = any(
                    self._is_pk_join(
                        view_conjunct, view_spja, t,
                        (self.pk_lookup(t) or ("",))[0].lower())
                    for t in touched_extras)
                if not is_join:
                    return None
                consumed.add(view_digest)
                continue
            if view_digest in query_digests:
                consumed.add(view_digest)
                continue
            view_simple = parse_simple(view_conjunct,
                                       view_spja.ordinal_names)
            implied = False
            if view_simple is not None:
                for q_digest, q_conjunct in query_digests.items():
                    q_simple = parse_simple(q_conjunct,
                                            query.ordinal_names)
                    if q_simple is not None and implies(q_simple,
                                                        view_simple):
                        implied = True
                        break
            if not implied:
                violated.append(view_conjunct)
        residual = [c for d, c in query_digests.items()
                    if d not in consumed]
        return residual, violated

    # -- full rewrite -------------------------------------------------------------- #
    def _full_rewrite(self, node: rel.RelNode, query: SPJA,
                      view: ViewDefinition,
                      residual: list[rex.RexNode]
                      ) -> Optional[rel.RelNode]:
        plan = self._rewrite_to_aggregate(query, view, residual)
        if plan is None:
            return None
        inner, out_digests = plan
        # final projection: query outputs over the rewritten aggregate
        exprs = []
        if query.is_aggregated:
            # layout: original Aggregate output position -> digest
            layout = [canonical_digest(g, query.ordinal_names)
                      for g in query.group_exprs]
            layout += [_agg_key(func, arg)
                       for func, arg, _, _ in query.agg_calls]
            for expr in query.output_exprs:
                mapped = self._map_over(expr, out_digests, inner.schema,
                                        layout)
                if mapped is None:
                    return None
                exprs.append(mapped)
        else:
            for expr in query.output_exprs:
                digest = canonical_digest(expr, query.ordinal_names)
                if digest is None or digest not in out_digests:
                    mapped = self._rewrite_leaf_expr(expr, query,
                                                     out_digests,
                                                     inner.schema)
                    if mapped is None:
                        return None
                    exprs.append(mapped)
                else:
                    ordinal = out_digests[digest]
                    exprs.append(rex.RexInputRef(
                        ordinal, inner.schema[ordinal].dtype))
        return rel.Project(inner, tuple(exprs),
                           tuple(c.name for c in node.schema))

    def _rewrite_to_aggregate(self, query: SPJA, view: ViewDefinition,
                              residual: list[rex.RexNode]):
        """Scan(view) + residual filter [+ roll-up aggregate].

        Returns (plan, digest -> output ordinal) where digests cover the
        query's group keys and aggregate calls (or SPJ outputs).
        """
        mv_table = view.table
        scan = rel.TableScan(mv_table.qualified_name,
                             mv_table.full_schema(),
                             scan_id=next(self._scan_ids))
        plan: rel.RelNode = scan

        residual_rex = []
        for conjunct in residual:
            mapped = self._rewrite_leaf_expr(conjunct, query,
                                             view.output_map, scan.schema)
            if mapped is None:
                return None
            residual_rex.append(mapped)
        if residual_rex:
            plan = rel.Filter(plan, rex.make_and(residual_rex))

        if not query.is_aggregated:
            return plan, dict(view.output_map)

        # group keys must be expressible over the view output
        key_refs: list[int] = []
        key_digests: list[str] = []
        for group_expr in query.group_exprs:
            digest = canonical_digest(group_expr, query.ordinal_names)
            if digest is None or digest not in view.output_map:
                return None
            key_refs.append(view.output_map[digest])
            key_digests.append(digest)

        same_grouping = (view.spja.is_aggregated
                         and len(view.spja.group_exprs)
                         == len(query.group_exprs)
                         and set(key_digests) == {
                             canonical_digest(g, view.spja.ordinal_names)
                             for g in view.spja.group_exprs})

        out_digests: dict[str, int] = {}
        if same_grouping:
            # no roll-up needed: map aggregates directly
            for func, arg_digest, distinct, _ in query.agg_calls:
                key = _agg_key(func, arg_digest)
                if key not in view.output_map:
                    return None
                out_digests[key] = view.output_map[key]
            for digest, ordinal in zip(key_digests, key_refs):
                out_digests[digest] = ordinal
            return plan, out_digests

        # roll-up: re-aggregate the view
        agg_calls = []
        for func, arg_digest, distinct, dtype in query.agg_calls:
            if distinct or func not in _MERGEABLE:
                return None
            if view.spja.is_aggregated:
                source_key = _agg_key(func, arg_digest)
                if source_key not in view.output_map:
                    return None
                source = view.output_map[source_key]
                merge_func = "sum" if func in ("sum", "count") else func
            else:
                # SPJ view: aggregate raw columns
                if arg_digest is None:
                    source = None
                    merge_func = func
                else:
                    if arg_digest not in view.output_map:
                        return None
                    source = view.output_map[arg_digest]
                    merge_func = func
            agg_calls.append(rex.AggregateCall(
                merge_func, source, dtype, f"_m{len(agg_calls)}"))
        aggregate = rel.Aggregate(plan, tuple(key_refs),
                                  tuple(agg_calls),
                                  tuple(f"_k{i}"
                                        for i in range(len(key_refs))))
        for i, digest in enumerate(key_digests):
            out_digests[digest] = i
        for i, (func, arg_digest, _, _) in enumerate(query.agg_calls):
            out_digests[_agg_key(func, arg_digest)] = len(key_refs) + i
        return aggregate, out_digests

    # -- partial (union) rewrite ---------------------------------------------------- #
    def _partial_rewrite(self, node: rel.RelNode, query: SPJA,
                         view: ViewDefinition,
                         residual: list[rex.RexNode],
                         violated: rex.RexNode) -> Optional[rel.RelNode]:
        """Figure 4c: union the view with the uncovered source delta."""
        if not isinstance(node, (rel.Project, rel.Aggregate)):
            return None
        if isinstance(node, rel.Project) and not isinstance(
                node.input, rel.Aggregate):
            return None
        aggregate = node if isinstance(node, rel.Aggregate) else node.input
        if any(call.func not in _MERGEABLE or call.distinct
               for call in aggregate.agg_calls):
            return None
        view_simple = parse_simple(violated, view.spja.ordinal_names)
        if view_simple is None or view_simple.op not in (">", ">=",
                                                         "<", "<="):
            return None
        # the query must have a wider range conjunct on the same column
        query_range = None
        for conjunct in query.conjuncts:
            simple = parse_simple(conjunct, query.ordinal_names)
            if (simple is not None and simple.column == view_simple.column
                    and simple.op[0] == view_simple.op[0]):
                query_range = (conjunct, simple)
                break
        if query_range is None:
            return None
        query_conjunct, _ = query_range

        # branch 1: the view part — replace the query's wide range with
        # the view's own range so containment holds trivially
        residual_without = [c for c in residual
                            if c.digest != query_conjunct.digest]
        branch1 = self._rewrite_to_aggregate(query, view,
                                             residual_without)
        if branch1 is None:
            return None
        branch1_plan, out_digests = branch1

        # branch 2: the delta from the source tables — original subtree
        # with the complement predicate ANDed in (matched canonically:
        # filters inside the tree use local ordinal spaces)
        target_canonical = canonical_digest(query_conjunct,
                                            query.ordinal_names)
        if target_canonical is None:
            return None
        branch2_plan = _narrow_subtree(aggregate, target_canonical,
                                       view_simple)
        if branch2_plan is None:
            return None

        # align branch1 columns to the aggregate's output layout
        key_count = len(aggregate.group_keys)
        exprs = []
        for i, group_expr in enumerate(query.group_exprs):
            digest = canonical_digest(group_expr, query.ordinal_names)
            ordinal = out_digests[digest]
            exprs.append(rex.RexInputRef(
                ordinal, branch1_plan.schema[ordinal].dtype))
        for func, arg_digest, distinct, dtype in query.agg_calls:
            ordinal = out_digests[_agg_key(func, arg_digest)]
            exprs.append(rex.RexInputRef(
                ordinal, branch1_plan.schema[ordinal].dtype))
        branch1_aligned = rel.Project(
            branch1_plan, tuple(exprs),
            tuple(c.name for c in aggregate.schema))

        union = rel.Union((branch1_aligned, branch2_plan), all=True)
        merge_calls = []
        for i, call in enumerate(aggregate.agg_calls):
            merge_func = "sum" if call.func in ("sum", "count") \
                else call.func
            merge_calls.append(rex.AggregateCall(
                merge_func, key_count + i, call.dtype, call.name))
        merged = rel.Aggregate(
            union, tuple(range(key_count)), tuple(merge_calls),
            tuple(c.name for c in aggregate.schema.columns[:key_count]))
        if isinstance(node, rel.Project):
            return rel.Project(merged, node.exprs, node.names)
        return merged


    # -- expression mapping ----------------------------------------------------------- #
    def _rewrite_leaf_expr(self, expr: rex.RexNode, query: SPJA,
                           output_map: dict[str, int],
                           schema: Schema) -> Optional[rex.RexNode]:
        """Express a leaf-space expression over the view output columns."""
        digest = canonical_digest(expr, query.ordinal_names)
        if digest is not None and digest in output_map:
            ordinal = output_map[digest]
            return rex.RexInputRef(ordinal, schema[ordinal].dtype)
        if isinstance(expr, rex.RexLiteral):
            return expr
        if isinstance(expr, rex.RexCall):
            operands = []
            for operand in expr.operands:
                mapped = self._rewrite_leaf_expr(operand, query,
                                                 output_map, schema)
                if mapped is None:
                    return None
                operands.append(mapped)
            return rex.RexCall(expr.op, tuple(operands), expr.dtype)
        return None

    def _map_over(self, expr: rex.RexNode, out_digests: dict[str, int],
                  schema: Schema,
                  layout: list[Optional[str]]) -> Optional[rex.RexNode]:
        """Map a post-aggregate query expression onto the rewritten plan.

        ``layout[i]`` is the canonical digest of position ``i`` of the
        original Aggregate output (group keys then agg calls);
        ``out_digests`` locates those digests in the rewritten plan.
        """
        if isinstance(expr, rex.RexInputRef):
            if expr.index >= len(layout) or layout[expr.index] is None:
                return None
            ordinal = out_digests.get(layout[expr.index])
            if ordinal is None:
                return None
            return rex.RexInputRef(ordinal, expr.dtype)
        if isinstance(expr, rex.RexLiteral):
            return expr
        if isinstance(expr, rex.RexCall):
            operands = []
            for operand in expr.operands:
                mapped = self._map_over(operand, out_digests, schema,
                                        layout)
                if mapped is None:
                    return None
                operands.append(mapped)
            return rex.RexCall(expr.op, tuple(operands), expr.dtype)
        return None


def _ordinal_names_of(node: rel.RelNode) -> Optional[dict[int, str]]:
    """table.column names of a node's output ordinals (None = opaque)."""
    if isinstance(node, rel.TableScan):
        if node.pushed_query is not None:
            return None
        return {i: f"{node.table_name}.{c.name.lower()}"
                for i, c in enumerate(node.schema)}
    if isinstance(node, (rel.Filter, rel.Sort, rel.Limit)):
        return _ordinal_names_of(node.inputs[0])
    if isinstance(node, rel.Join) and node.kind == "inner":
        left = _ordinal_names_of(node.left)
        right = _ordinal_names_of(node.right)
        if left is None or right is None:
            return None
        width = len(node.left.schema)
        combined = dict(left)
        combined.update({width + i: name for i, name in right.items()})
        return combined
    if isinstance(node, rel.Project):
        inner = _ordinal_names_of(node.input)
        if inner is None:
            return None
        out = {}
        for i, expr in enumerate(node.exprs):
            if isinstance(expr, rex.RexInputRef) and expr.index in inner:
                out[i] = inner[expr.index]
        return out
    return None


def _narrow_subtree(node: rel.RelNode, target_canonical: str,
                    view_simple: SimplePredicate
                    ) -> Optional[rel.RelNode]:
    """AND the complement of the view's range into every Filter that

    carries the query's wide range conjunct (matched canonically)."""
    complement_op = {">": "<=", ">=": "<", "<": ">=", "<=": ">"}[
        view_simple.op]
    applied = [False]

    def rule(n: rel.RelNode) -> Optional[rel.RelNode]:
        if not isinstance(n, rel.Filter):
            return None
        names = _ordinal_names_of(n.input)
        if names is None:
            return None
        conjuncts = rex.conjunctions(n.condition)
        target = None
        for conjunct in conjuncts:
            if canonical_digest(conjunct, names) == target_canonical:
                target = conjunct
                break
        if target is None:
            return None
        a, b = target.operands
        ref = a if isinstance(a, rex.RexInputRef) else b
        if not isinstance(ref, rex.RexInputRef):
            return None
        bound = rex.RexLiteral(
            ref.dtype.from_storage(view_simple.value), ref.dtype)
        applied[0] = True
        return rel.Filter(n.input, rex.make_and(
            conjuncts + [rex.make_call(complement_op, ref, bound)]))

    narrowed = rel.transform_bottom_up(node, rule)
    return narrowed if applied[0] else None
