"""Multi-stage rule/cost-based optimizer (the Calcite integration)."""

from .planner import OptimizedPlan, Optimizer

__all__ = ["OptimizedPlan", "Optimizer"]
