"""Dynamic semijoin reduction (Section 4.6).

For star joins where a dimension side carries a selective filter, the
optimizer plants a *semijoin reducer*: at run time the filtered dimension
subexpression is evaluated first, and the values it produces build

* a min/max **range filter** — pushed to the fact scan as a sarg, pruning
  row groups (and, when the fact table is partitioned by the join column,
  pruning partitions — *dynamic partition pruning*),
* a **Bloom filter** — applied per row to skip fact rows early.

The reducer is recorded in the plan annotations; the Tez-style runtime
executes the source subplan before the target scan vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import HiveConf
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from .stats import StatsProvider

#: a dimension side qualifies when it is this much smaller than the fact
SIZE_RATIO = 0.5
#: and absolutely small enough to materialize a filter from
MAX_BUILD_ROWS = 200_000


@dataclass
class SemijoinReducer:
    """One planned reducer: evaluate ``source`` , take column ``key_ordinal``,

    filter the scan ``target_scan_id`` on ``target_column``."""

    reducer_id: str
    source: rel.RelNode
    key_ordinal: int
    target_scan_id: int
    target_table: str
    target_column: str


def plan_semijoin_reduction(root: rel.RelNode, stats: StatsProvider,
                            conf: HiveConf
                            ) -> tuple[rel.RelNode, list[SemijoinReducer]]:
    reducers: list[SemijoinReducer] = []
    counter = [0]
    #: (source digest, key ordinal, target column) -> reducer, so that
    #: identical dimension subexpressions reuse one reducer — keeping
    #: equal fact scans equal for the shared-work optimizer
    dedup: dict[tuple, SemijoinReducer] = {}

    def rule(node: rel.RelNode) -> Optional[rel.RelNode]:
        if not (isinstance(node, rel.Join) and node.kind in (
                "inner", "semi")):
            return None
        pairs, _ = rex.split_equi_condition(node.condition,
                                            len(node.left.schema))
        if not pairs:
            return None
        left_rows = stats.row_count(node.left)
        right_rows = stats.row_count(node.right)
        changed = False
        new_left, new_right = node.left, node.right
        for left_key, right_key in pairs:
            # big side gets the reducer, small filtered side feeds it
            if (right_rows <= left_rows * SIZE_RATIO
                    and right_rows <= MAX_BUILD_ROWS
                    and _has_selective_filter(node.right)):
                target = _resolve_scan_column(new_left, left_key)
                if target is None:
                    continue
                reducer = _get_or_create(dedup, reducers, counter,
                                         node.right, right_key, target)
                new_left = _attach_reducer(new_left, target[0],
                                           reducer.reducer_id)
                changed = True
            elif (left_rows <= right_rows * SIZE_RATIO
                    and left_rows <= MAX_BUILD_ROWS
                    and _has_selective_filter(node.left)
                    and node.kind == "inner"):
                target = _resolve_scan_column(new_right, right_key)
                if target is None:
                    continue
                reducer = _get_or_create(dedup, reducers, counter,
                                         node.left, left_key, target)
                new_right = _attach_reducer(new_right, target[0],
                                            reducer.reducer_id)
                changed = True
        if not changed:
            return None
        return rel.Join(new_left, new_right, node.kind, node.condition)

    new_root = rel.transform_bottom_up(root, rule)
    return new_root, reducers


def _get_or_create(dedup: dict, reducers: list, counter: list,
                   source: rel.RelNode, key_ordinal: int,
                   target: tuple) -> SemijoinReducer:
    dedup_key = (source.digest, key_ordinal, target[1], target[2])
    reducer = dedup.get(dedup_key)
    if reducer is None:
        counter[0] += 1
        reducer = SemijoinReducer(f"sj{counter[0]}", source, key_ordinal,
                                  target[0], target[1], target[2])
        dedup[dedup_key] = reducer
        reducers.append(reducer)
    return reducer


def strip_sharing_breakers(root: rel.RelNode,
                           reducers: list[SemijoinReducer]
                           ) -> tuple[rel.RelNode, list[SemijoinReducer]]:
    """Remove semijoin reducers that prevent shared-work merging.

    When the same table scan (same columns, sargs) appears several times
    but the occurrences carry *different* reducer sets, the scans are no
    longer equal plans and cannot merge (Section 4.5).  Hive resolves
    this conflict in favour of shared work; we do the same by stripping
    the semijoin sources from those scans.
    """
    from collections import defaultdict
    groups: dict[str, set] = defaultdict(set)
    for node in rel.walk(root):
        if isinstance(node, rel.TableScan):
            base = rel.TableScan(node.table_name, node.schema,
                                 node.pruned_partitions,
                                 node.sarg_conjuncts)
            groups[base.digest].add(node.semijoin_sources)
    conflicted: set[str] = {digest for digest, variants in groups.items()
                            if len(variants) > 1}
    if not conflicted:
        return root, reducers

    def rule(node: rel.RelNode):
        if not isinstance(node, rel.TableScan) or not node.semijoin_sources:
            return None
        base = rel.TableScan(node.table_name, node.schema,
                             node.pruned_partitions, node.sarg_conjuncts)
        if base.digest in conflicted:
            return rel.TableScan(node.table_name, node.schema,
                                 node.pruned_partitions,
                                 node.sarg_conjuncts,
                                 scan_id=node.scan_id)
        return None

    stripped = rel.transform_bottom_up(root, rule)
    live = {reducer_id
            for node in rel.walk(stripped)
            if isinstance(node, rel.TableScan)
            for reducer_id in node.semijoin_sources}
    return stripped, [r for r in reducers if r.reducer_id in live]


def _has_selective_filter(node: rel.RelNode) -> bool:
    """The dimension side must actually be filtered, otherwise the

    reducer would not reduce anything (Section 4.6's motivating case is
    a dimension filtered on non-join columns)."""
    for descendant in rel.walk(node):
        if isinstance(descendant, rel.Filter):
            return True
        if isinstance(descendant, rel.TableScan) and \
                descendant.sarg_conjuncts:
            return True
        if isinstance(descendant, rel.Aggregate):
            return True
    return False


def _resolve_scan_column(node: rel.RelNode, ordinal: int
                         ) -> Optional[tuple[int, str, str]]:
    """Trace an output ordinal down to (scan_id, table, column)."""
    if isinstance(node, rel.TableScan):
        if node.pushed_query is not None:
            return None
        return (node.scan_id, node.table_name, node.schema[ordinal].name)
    if isinstance(node, (rel.Filter, rel.Limit, rel.Sort)):
        return _resolve_scan_column(node.inputs[0], ordinal)
    if isinstance(node, rel.Project):
        expr = node.exprs[ordinal]
        if isinstance(expr, rex.RexInputRef):
            return _resolve_scan_column(node.input, expr.index)
        return None
    if isinstance(node, rel.Join):
        left_width = len(node.left.schema)
        if node.kind in ("semi", "anti") or ordinal < left_width:
            return _resolve_scan_column(node.left, ordinal)
        if node.kind == "inner":
            return _resolve_scan_column(node.right, ordinal - left_width)
        return None
    return None


def _attach_reducer(node: rel.RelNode, scan_id: int,
                    reducer_id: str) -> rel.RelNode:
    def rule(n: rel.RelNode) -> Optional[rel.RelNode]:
        if isinstance(n, rel.TableScan) and n.scan_id == scan_id:
            return rel.TableScan(
                n.table_name, n.schema, n.pruned_partitions,
                n.sarg_conjuncts,
                n.semijoin_sources + (reducer_id,), n.pushed_query,
                n.scan_id)
        return None

    return rel.transform_bottom_up(node, rule)
