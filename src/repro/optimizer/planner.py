"""Multi-stage optimizer driver.

Hive "implements multi-stage optimization similar to other query
optimizers, where each optimization stage uses a planner and a set of
rewriting rules" (Section 4.1).  The stages here:

1. *exhaustive* rewrites: constant folding, predicate pushdown, column
   pruning — applied unconditionally to a fixpoint,
2. *cost-based* rewrites: materialized-view rewriting and join
   reordering, driven by HMS statistics,
3. *physical-ish* decisions: static partition pruning, dynamic semijoin
   reduction placement, federation pushdown, shared-work detection.

Every stage is gated by its :class:`~repro.config.HiveConf` flag so the
legacy profile (rule-based only) and ablation benchmarks can disable
individual rules.

When ``hive.check.plan`` is on, the plan validator
(:mod:`repro.lint.plan_check`) runs after every stage — and after every
individual rule in paranoid mode — so a rewrite that breaks a tree
invariant raises :class:`~repro.errors.PlanInvariantError` naming the
stage, instead of surfacing as wrong results at execution time.  With a
:class:`~repro.obs.tracing.QueryTrace` attached, each stage also records
an ``optimize.<stage>`` span (viewable via the Chrome-trace export).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..config import HiveConf
from ..lint.plan_check import check_plan
from ..metastore.hms import HiveMetastore
from ..plan import relnodes as rel
from .join_reorder import choose_build_sides, reorder_joins
from .mv_rewrite import MaterializedViewRewriter, ViewDefinition
from .pruning import prune_columns
from .rules_basic import (fold_constants, prune_partitions,
                          push_down_predicates)
from .semijoin import SemijoinReducer, plan_semijoin_reduction
from .shared_work import find_shared_subtrees
from .stats import StatsProvider


@dataclass
class OptimizedPlan:
    """The planner's output: a tree plus execution annotations."""

    root: rel.RelNode
    semijoin_reducers: list[SemijoinReducer] = field(default_factory=list)
    shared_digests: frozenset = frozenset()
    views_used: list[str] = field(default_factory=list)
    stages_applied: list[str] = field(default_factory=list)
    #: stages the plan validator checked (hive.check.plan on)
    stages_checked: list[str] = field(default_factory=list)


class Optimizer:
    """One optimizer instance per query compilation."""

    def __init__(self, hms: HiveMetastore, conf: HiveConf,
                 stats_overrides: Optional[dict[str, int]] = None,
                 view_provider: Optional[
                     Callable[[], list[ViewDefinition]]] = None,
                 federation_rule: Optional[
                     Callable[[rel.RelNode], rel.RelNode]] = None,
                 trace=None):
        self.hms = hms
        self.conf = conf
        self.stats = StatsProvider(hms, stats_overrides)
        self.view_provider = view_provider
        self.federation_rule = federation_rule
        self.trace = trace
        self.check_mode = conf.plan_check_mode
        self._checked: list[str] = []

    # -- validation / tracing plumbing ---------------------------------- #
    def _stage_span(self, name: str):
        if self.trace is not None:
            return self.trace.span(f"optimize.{name}")
        return contextlib.nullcontext()

    def _validate(self, stage: str, before: rel.RelNode,
                  after: rel.RelNode) -> None:
        check_plan(after, stage=stage, before=before)
        self._checked.append(stage)

    def _apply(self, name: str, fn, root: rel.RelNode) -> rel.RelNode:
        """Run one top-level stage; validate the result when checking."""
        with self._stage_span(name):
            new_root = fn(root)
        if self.check_mode != "off":
            self._validate(name, root, new_root)
        return new_root

    def _apply_rule(self, name: str, fn,
                    root: rel.RelNode) -> rel.RelNode:
        """Sub-rule of a composite stage; validated in paranoid mode."""
        with self._stage_span(name):
            new_root = fn(root)
        if self.check_mode == "paranoid":
            self._validate(name, root, new_root)
        return new_root

    # ------------------------------------------------------------------ #
    def optimize(self, root: rel.RelNode) -> OptimizedPlan:
        conf = self.conf
        stages: list[str] = []

        if self.check_mode == "paranoid":
            # the analyzer's output must be valid before any rewriting
            check_plan(root, stage="analyzer_output")
            self._checked.append("analyzer_output")

        if conf.constant_folding:
            root = self._apply("constant_folding", fold_constants, root)
            stages.append("constant_folding")
        if conf.filter_pushdown:
            root = self._apply("filter_pushdown", push_down_predicates,
                               root)
            stages.append("filter_pushdown")
        if conf.project_pruning:
            root = self._apply("project_pruning", prune_columns, root)
            stages.append("project_pruning")

        views_used: list[str] = []
        if conf.cbo_enabled and conf.mv_rewriting \
                and self.view_provider is not None:
            views = self.view_provider()
            if views:
                rewriter = MaterializedViewRewriter(
                    views,
                    pk_lookup=lambda t:
                        self.hms.get_table(t).constraints.primary_key)
                before_mv = root
                rewritten = self._apply_rule("mv_rewriting.rewrite",
                                             rewriter.rewrite, root)
                if rewriter.applied:
                    root = self._apply_rule("mv_rewriting.fold_constants",
                                            fold_constants, rewritten)
                    if conf.filter_pushdown:
                        root = self._apply_rule(
                            "mv_rewriting.filter_pushdown",
                            push_down_predicates, root)
                    if conf.project_pruning:
                        root = self._apply_rule(
                            "mv_rewriting.project_pruning",
                            prune_columns, root)
                    views_used = rewriter.applied
                    stages.append("mv_rewriting")
                    if self.check_mode != "off":
                        self._validate("mv_rewriting", before_mv, root)

        if conf.cbo_enabled and conf.join_reordering:
            before_reorder = root
            root = self._apply_rule("join_reordering.reorder",
                                    lambda r: reorder_joins(r, self.stats),
                                    root)
            root = self._apply_rule(
                "join_reordering.build_sides",
                lambda r: choose_build_sides(r, self.stats), root)
            if conf.project_pruning:
                root = self._apply_rule("join_reordering.project_pruning",
                                        prune_columns, root)
            stages.append("join_reordering")
            if self.check_mode != "off":
                self._validate("join_reordering", before_reorder, root)

        if conf.partition_pruning:
            root = self._apply("partition_pruning",
                               lambda r: prune_partitions(r, self.hms),
                               root)
            stages.append("partition_pruning")

        reducers: list[SemijoinReducer] = []
        if conf.semijoin_reduction:
            before_semijoin = root
            with self._stage_span("semijoin_reduction"):
                root, reducers = plan_semijoin_reduction(root, self.stats,
                                                         conf)
            if reducers and conf.shared_work_optimization:
                # shared work wins over semijoins that break scan merging
                from .semijoin import strip_sharing_breakers
                root, reducers = strip_sharing_breakers(root, reducers)
            if reducers:
                stages.append("semijoin_reduction")
            if self.check_mode != "off":
                self._validate("semijoin_reduction", before_semijoin,
                               root)

        if conf.federation_pushdown and self.federation_rule is not None:
            pushed = self._apply("federation_pushdown",
                                 self.federation_rule, root)
            if pushed.digest != root.digest:
                root = pushed
                stages.append("federation_pushdown")
            else:
                root = pushed

        shared: frozenset = frozenset()
        if conf.shared_work_optimization:
            with self._stage_span("shared_work"):
                shared = find_shared_subtrees(root)
            if shared:
                stages.append("shared_work")
        # semijoin reducer sources always share results with the join
        # branch they were lifted from (one producer, two consumers)
        if reducers:
            shared = frozenset(shared | {r.source.digest
                                         for r in reducers})

        return OptimizedPlan(root, reducers, shared, views_used, stages,
                             list(self._checked))
