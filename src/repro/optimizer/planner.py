"""Multi-stage optimizer driver.

Hive "implements multi-stage optimization similar to other query
optimizers, where each optimization stage uses a planner and a set of
rewriting rules" (Section 4.1).  The stages here:

1. *exhaustive* rewrites: constant folding, predicate pushdown, column
   pruning — applied unconditionally to a fixpoint,
2. *cost-based* rewrites: materialized-view rewriting and join
   reordering, driven by HMS statistics,
3. *physical-ish* decisions: static partition pruning, dynamic semijoin
   reduction placement, federation pushdown, shared-work detection.

Every stage is gated by its :class:`~repro.config.HiveConf` flag so the
legacy profile (rule-based only) and ablation benchmarks can disable
individual rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..config import HiveConf
from ..metastore.hms import HiveMetastore
from ..plan import relnodes as rel
from .join_reorder import choose_build_sides, reorder_joins
from .mv_rewrite import MaterializedViewRewriter, ViewDefinition
from .pruning import prune_columns
from .rules_basic import (fold_constants, prune_partitions,
                          push_down_predicates)
from .semijoin import SemijoinReducer, plan_semijoin_reduction
from .shared_work import find_shared_subtrees
from .stats import StatsProvider


@dataclass
class OptimizedPlan:
    """The planner's output: a tree plus execution annotations."""

    root: rel.RelNode
    semijoin_reducers: list[SemijoinReducer] = field(default_factory=list)
    shared_digests: frozenset = frozenset()
    views_used: list[str] = field(default_factory=list)
    stages_applied: list[str] = field(default_factory=list)


class Optimizer:
    """One optimizer instance per query compilation."""

    def __init__(self, hms: HiveMetastore, conf: HiveConf,
                 stats_overrides: Optional[dict[str, int]] = None,
                 view_provider: Optional[
                     Callable[[], list[ViewDefinition]]] = None,
                 federation_rule: Optional[
                     Callable[[rel.RelNode], rel.RelNode]] = None):
        self.hms = hms
        self.conf = conf
        self.stats = StatsProvider(hms, stats_overrides)
        self.view_provider = view_provider
        self.federation_rule = federation_rule

    def optimize(self, root: rel.RelNode) -> OptimizedPlan:
        conf = self.conf
        stages: list[str] = []

        if conf.constant_folding:
            root = fold_constants(root)
            stages.append("constant_folding")
        if conf.filter_pushdown:
            root = push_down_predicates(root)
            stages.append("filter_pushdown")
        if conf.project_pruning:
            root = prune_columns(root)
            stages.append("project_pruning")

        views_used: list[str] = []
        if conf.cbo_enabled and conf.mv_rewriting \
                and self.view_provider is not None:
            views = self.view_provider()
            if views:
                rewriter = MaterializedViewRewriter(
                    views,
                    pk_lookup=lambda t:
                        self.hms.get_table(t).constraints.primary_key)
                rewritten = rewriter.rewrite(root)
                if rewriter.applied:
                    root = fold_constants(rewritten)
                    if conf.filter_pushdown:
                        root = push_down_predicates(root)
                    if conf.project_pruning:
                        root = prune_columns(root)
                    views_used = rewriter.applied
                    stages.append("mv_rewriting")

        if conf.cbo_enabled and conf.join_reordering:
            root = reorder_joins(root, self.stats)
            root = choose_build_sides(root, self.stats)
            if conf.project_pruning:
                root = prune_columns(root)
            stages.append("join_reordering")

        if conf.partition_pruning:
            root = prune_partitions(root, self.hms)
            stages.append("partition_pruning")

        reducers: list[SemijoinReducer] = []
        if conf.semijoin_reduction:
            root, reducers = plan_semijoin_reduction(root, self.stats,
                                                     conf)
            if reducers and conf.shared_work_optimization:
                # shared work wins over semijoins that break scan merging
                from .semijoin import strip_sharing_breakers
                root, reducers = strip_sharing_breakers(root, reducers)
            if reducers:
                stages.append("semijoin_reduction")

        if conf.federation_pushdown and self.federation_rule is not None:
            pushed = self.federation_rule(root)
            if pushed.digest != root.digest:
                root = pushed
                stages.append("federation_pushdown")

        shared: frozenset = frozenset()
        if conf.shared_work_optimization:
            shared = find_shared_subtrees(root)
            if shared:
                stages.append("shared_work")
        # semijoin reducer sources always share results with the join
        # branch they were lifted from (one producer, two consumers)
        if reducers:
            shared = frozenset(shared | {r.source.digest
                                         for r in reducers})

        return OptimizedPlan(root, reducers, shared, views_used, stages)
