"""Cost-based join reordering.

Collects maximal trees of inner joins, then greedily builds a left-deep
order that minimizes estimated intermediate cardinalities (a classic
Selinger-lite heuristic; Calcite's LoptOptimizeJoinRule plays this role
in Hive, Section 4.1).  Cross products are only chosen when no connected
choice remains.  The smaller side ends up on the right, which is the
hash-join build side in the runtime.
"""

from __future__ import annotations

from typing import Optional

from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from .stats import StatsProvider


def reorder_joins(root: rel.RelNode,
                  stats: StatsProvider) -> rel.RelNode:
    def rule(node: rel.RelNode) -> Optional[rel.RelNode]:
        if not _is_reorderable_root(node):
            return None
        return _reorder_tree(node, stats)

    return rel.transform_bottom_up(root, rule)


def _is_inner_join(node: rel.RelNode) -> bool:
    return isinstance(node, rel.Join) and node.kind == "inner"


def _is_reorderable_root(node: rel.RelNode) -> bool:
    """A topmost inner join with at least 3 leaves below it."""
    if not _is_inner_join(node):
        return False
    leaves, _ = _collect(node)
    return len(leaves) >= 3


def _collect(node: rel.RelNode) -> tuple[list[rel.RelNode],
                                         list[rex.RexNode]]:
    """Flatten a tree of inner joins into leaves and conjuncts.

    Conjunct ordinals are rewritten to the global space of the leaves in
    collection (left-to-right) order.
    """
    leaves: list[rel.RelNode] = []
    conjuncts: list[rex.RexNode] = []

    def visit(n: rel.RelNode, offset: int) -> int:
        if _is_inner_join(n):
            left_width = visit(n.left, offset)
            right_width = visit(n.right, offset + left_width)
            if n.condition is not None:
                shifted = rex.shift_refs(n.condition, offset)
                conjuncts.extend(rex.conjunctions(shifted))
            return left_width + right_width
        leaves.append(n)
        return len(n.schema)

    # visit with local offsets, then globalize: the recursion above
    # already passes the global offset down correctly.
    visit(node, 0)
    return leaves, conjuncts


def _reorder_tree(node: rel.Join, stats: StatsProvider) -> rel.RelNode:
    leaves, conjuncts = _collect(node)
    offsets = []
    total = 0
    for leaf in leaves:
        offsets.append(total)
        total += len(leaf.schema)
    leaf_of_ordinal = {}
    for li, leaf in enumerate(leaves):
        for j in range(len(leaf.schema)):
            leaf_of_ordinal[offsets[li] + j] = li

    conjunct_leaves = [frozenset(leaf_of_ordinal[i]
                                 for i in c.input_refs())
                       for c in conjuncts]

    remaining = set(range(len(leaves)))
    used_conjuncts: set[int] = set()

    # start from the smallest-cardinality connected pair
    leaf_rows = [stats.row_count(leaf) for leaf in leaves]
    best_pair = None
    best_rows = None
    for ci, leaf_set in enumerate(conjunct_leaves):
        if len(leaf_set) == 2:
            a, b = sorted(leaf_set)
            estimate = _pair_estimate(leaf_rows[a], leaf_rows[b])
            if best_rows is None or estimate < best_rows:
                best_rows = estimate
                best_pair = (a, b)
    if best_pair is None:
        return None  # no equi edges at all: leave as written

    order = [max(best_pair, key=lambda i: leaf_rows[i])]
    order.append(best_pair[0] if order[0] == best_pair[1]
                 else best_pair[1])
    remaining -= set(order)

    current_rows = _pair_estimate(leaf_rows[order[0]], leaf_rows[order[1]])
    while remaining:
        joined = set(order)
        best_leaf = None
        best_estimate = None
        best_connected = False
        for candidate in remaining:
            connected = any(
                leaf_set and candidate in leaf_set
                and leaf_set - {candidate} <= joined
                for leaf_set in conjunct_leaves)
            estimate = (_pair_estimate(current_rows, leaf_rows[candidate])
                        if connected
                        else current_rows * leaf_rows[candidate])
            key = (not connected, estimate)
            if best_estimate is None or key < (not best_connected,
                                               best_estimate):
                best_estimate = estimate
                best_leaf = candidate
                best_connected = connected
        order.append(best_leaf)
        remaining.discard(best_leaf)
        current_rows = best_estimate

    # rebuild a left-deep tree in `order`
    new_offsets = {}
    cursor = 0
    for leaf_index in order:
        new_offsets[leaf_index] = cursor
        cursor += len(leaves[leaf_index].schema)

    def remap(old: int) -> int:
        leaf_index = leaf_of_ordinal[old]
        return new_offsets[leaf_index] + (old - offsets[leaf_index])

    current = leaves[order[0]]
    placed = {order[0]}
    pending = list(range(len(conjuncts)))
    for leaf_index in order[1:]:
        placed.add(leaf_index)
        applicable = []
        for ci in list(pending):
            if conjunct_leaves[ci] <= placed and conjunct_leaves[ci]:
                applicable.append(
                    rex.remap_refs(conjuncts[ci], remap))
                pending.remove(ci)
        condition = rex.make_and(applicable)
        current = rel.Join(current, leaves[leaf_index], "inner", condition)
    # degenerate conjuncts that referenced nothing (constants)
    leftovers = [rex.remap_refs(conjuncts[ci], remap) for ci in pending]
    if leftovers:
        current = rel.Filter(current, rex.make_and(leftovers))

    # restore the original column order
    exprs = []
    names = []
    for li, leaf in enumerate(leaves):
        for j, col in enumerate(leaf.schema):
            exprs.append(rex.RexInputRef(remap(offsets[li] + j),
                                         col.dtype))
    for col in node.schema:
        names.append(col.name)
    return rel.Project(current, tuple(exprs), tuple(names))


def _pair_estimate(left_rows: float, right_rows: float) -> float:
    """Estimated output of an equi join between sides of given sizes."""
    return max(left_rows, right_rows)


def choose_build_sides(root: rel.RelNode,
                       stats: StatsProvider) -> rel.RelNode:
    """Put the smaller estimated input on the hash-join build side.

    The runtime builds on the right input; a misestimate here is exactly
    the planning mistake ("wrong join algorithm selection or memory
    allocation") that Section 4.2's reoptimization fixes with runtime
    statistics.
    """

    def rule(node: rel.RelNode) -> Optional[rel.RelNode]:
        if not (isinstance(node, rel.Join) and node.kind == "inner"
                and node.condition is not None):
            return None
        pairs, _ = rex.split_equi_condition(node.condition,
                                            len(node.left.schema))
        if not pairs:
            return None
        left_rows = stats.row_count(node.left)
        right_rows = stats.row_count(node.right)
        if right_rows <= left_rows:
            return None
        left_width = len(node.left.schema)
        right_width = len(node.right.schema)

        def remap(i: int) -> int:
            return i + right_width if i < left_width else i - left_width

        swapped = rel.Join(node.right, node.left, "inner",
                           rex.remap_refs(node.condition, remap))
        # restore the original column order above the swapped join
        exprs = []
        for i in range(left_width + right_width):
            new_ordinal = remap(i)
            dtype = node.schema[i].dtype
            exprs.append(rex.RexInputRef(new_ordinal, dtype))
        return rel.Project(swapped, tuple(exprs),
                           tuple(c.name for c in node.schema))

    return rel.transform_bottom_up(root, rule)
