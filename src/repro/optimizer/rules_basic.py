"""Foundation rewrite rules: constant folding, predicate pushdown,

sarg extraction and static partition pruning (Section 4.1).
"""

from __future__ import annotations

from typing import Optional

from ..common.rows import Schema
from ..common.types import BOOLEAN
from ..common.vector import VectorBatch
from ..errors import HiveError
from ..metastore.hms import HiveMetastore
from ..plan import relnodes as rel
from ..plan import rexnodes as rex

# --------------------------------------------------------------------------- #
# constant folding


def fold_constants(root: rel.RelNode) -> rel.RelNode:
    """Evaluate constant sub-expressions and simplify boolean algebra."""

    def fold_node(node: rel.RelNode) -> Optional[rel.RelNode]:
        if isinstance(node, rel.Filter):
            condition = fold_rex(node.condition)
            if isinstance(condition, rex.RexLiteral):
                if condition.value:
                    return node.input
                return rel.Values(node.schema, ())
            return rel.Filter(node.input, condition)
        if isinstance(node, rel.Project):
            return rel.Project(node.input,
                               tuple(fold_rex(e) for e in node.exprs),
                               node.names)
        if isinstance(node, rel.Join) and node.condition is not None:
            return rel.Join(node.left, node.right, node.kind,
                            fold_rex(node.condition))
        return None

    return rel.transform_bottom_up(root, fold_node)


def fold_rex(expr: rex.RexNode) -> rex.RexNode:
    if not isinstance(expr, rex.RexCall):
        return expr
    operands = tuple(fold_rex(o) for o in expr.operands)
    expr = rex.RexCall(expr.op, operands, expr.dtype)
    op = expr.op
    # boolean simplification
    if op == "AND":
        flat = []
        for operand in operands:
            if isinstance(operand, rex.RexLiteral):
                if operand.value is False:
                    return rex.RexLiteral(False, BOOLEAN)
                if operand.value is True:
                    continue
            flat.append(operand)
        if not flat:
            return rex.RexLiteral(True, BOOLEAN)
        return rex.make_and(flat)
    if op == "OR":
        flat = []
        for operand in operands:
            if isinstance(operand, rex.RexLiteral):
                if operand.value is True:
                    return rex.RexLiteral(True, BOOLEAN)
                if operand.value is False:
                    continue
            flat.append(operand)
        if not flat:
            return rex.RexLiteral(False, BOOLEAN)
        result = flat[0]
        for item in flat[1:]:
            result = rex.make_call("OR", result, item)
        return result
    if op == "NOT" and isinstance(operands[0], rex.RexLiteral):
        value = operands[0].value
        return rex.RexLiteral(None if value is None else not value, BOOLEAN)
    # pure-literal call: evaluate eagerly
    if operands and all(isinstance(o, rex.RexLiteral) for o in operands):
        if op in ("IN",):  # keep IN lists for sarg extraction
            return expr
        from ..exec.expr_eval import CONTEXT_DEPENDENT_OPS
        if op in CONTEXT_DEPENDENT_OPS:
            # RAND(literal seed) is per-row, CURRENT_* is per-statement
            # — folding either to a single literal changes results
            return expr
        try:
            return _evaluate_constant(expr)
        except Exception:
            return expr
    return expr


def _evaluate_constant(expr: rex.RexCall) -> rex.RexLiteral:
    """Evaluate a literal-only call against a one-row dummy batch."""
    from ..common.rows import Column
    from ..common.types import INT
    from ..exec import expr_eval
    schema = Schema([Column("__d__", INT)])
    batch = VectorBatch.from_rows(schema, [(0,)])
    result = expr_eval.evaluate(expr, batch)
    return rex.RexLiteral(result.value(0), expr.dtype)


# --------------------------------------------------------------------------- #
# predicate pushdown


def push_down_predicates(root: rel.RelNode) -> rel.RelNode:
    """Move filter conjuncts toward the scans (up to a fixpoint)."""
    for _ in range(10):
        new_root = _push_once(root)
        if new_root.digest == root.digest:
            return new_root
        root = new_root
    return root


def _push_once(root: rel.RelNode) -> rel.RelNode:
    def rule(node: rel.RelNode) -> Optional[rel.RelNode]:
        if not isinstance(node, rel.Filter):
            return None
        return _push_filter(node)

    return rel.transform_bottom_up(root, rule)


def _push_filter(node: rel.Filter) -> Optional[rel.RelNode]:
    child = node.input
    conjuncts = rex.conjunctions(node.condition)

    if isinstance(child, rel.Filter):
        merged = rex.make_and(conjuncts + rex.conjunctions(child.condition))
        return rel.Filter(child.input, merged)

    if isinstance(child, rel.Project):
        pushable, stuck = [], []
        for conjunct in conjuncts:
            inlined = _inline_through_project(conjunct, child)
            if inlined is not None:
                pushable.append(inlined)
            else:
                stuck.append(conjunct)
        if not pushable:
            return None
        new_child = rel.Project(
            rel.Filter(child.input, rex.make_and(pushable)),
            child.exprs, child.names)
        if stuck:
            return rel.Filter(new_child, rex.make_and(stuck))
        return new_child

    if isinstance(child, rel.Join):
        return _push_into_join(node, child, conjuncts)

    if isinstance(child, rel.Union):
        pushed = tuple(rel.Filter(branch, node.condition)
                       for branch in child.rels)
        return rel.Union(pushed, child.all)

    if isinstance(child, rel.Aggregate):
        key_positions = set(range(len(child.group_keys)))
        pushable, stuck = [], []
        for conjunct in conjuncts:
            if rex.references_only(conjunct, key_positions):
                remapped = rex.remap_refs(
                    conjunct, lambda i: child.group_keys[i])
                pushable.append(remapped)
            else:
                stuck.append(conjunct)
        if not pushable:
            return None
        new_child = child.with_inputs(
            [rel.Filter(child.input, rex.make_and(pushable))])
        if stuck:
            return rel.Filter(new_child, rex.make_and(stuck))
        return new_child

    if isinstance(child, rel.TableScan):
        return _attach_sargs(node, child, conjuncts)

    return None


def _inline_through_project(conjunct: rex.RexNode,
                            project: rel.Project) -> Optional[rex.RexNode]:
    """Rewrite a predicate over project outputs to one over its input.

    Only safe when every referenced output is deterministic; we inline
    the projected expressions directly.
    """
    ok = True

    def rewrite(expr: rex.RexNode) -> rex.RexNode:
        nonlocal ok
        if isinstance(expr, rex.RexInputRef):
            return project.exprs[expr.index]
        if isinstance(expr, rex.RexCall):
            return rex.RexCall(expr.op,
                               tuple(rewrite(o) for o in expr.operands),
                               expr.dtype)
        return expr

    result = rewrite(conjunct)
    return result if ok else None


def _push_into_join(node: rel.Filter, join: rel.Join,
                    conjuncts: list[rex.RexNode]) -> Optional[rel.RelNode]:
    left_width = len(join.left.schema)
    left_set = set(range(left_width))
    right_set = set(range(left_width, left_width + len(join.right.schema)))
    to_left, to_right, to_join, stuck = [], [], [], []
    for conjunct in conjuncts:
        refs = conjunct.input_refs()
        if refs <= left_set and join.kind in ("inner", "left", "semi",
                                              "anti"):
            to_left.append(conjunct)
        elif refs <= right_set and join.kind in ("inner", "right"):
            to_right.append(rex.shift_refs(conjunct, -left_width))
        elif join.kind == "inner":
            to_join.append(conjunct)
        else:
            stuck.append(conjunct)
    if not to_left and not to_right and not to_join:
        return None
    left = join.left
    right = join.right
    if to_left:
        left = rel.Filter(left, rex.make_and(to_left))
    if to_right:
        right = rel.Filter(right, rex.make_and(to_right))
    condition = join.condition
    if to_join:
        condition = rex.make_and(
            rex.conjunctions(condition) + to_join)
    new_join = rel.Join(left, right, join.kind, condition)
    if stuck:
        return rel.Filter(new_join, rex.make_and(stuck))
    return new_join


def _attach_sargs(node: rel.Filter, scan: rel.TableScan,
                  conjuncts: list[rex.RexNode]) -> Optional[rel.RelNode]:
    """Record sargable conjuncts on the scan for row-group pruning.

    The filter is kept — sargs only *skip* row groups, exact filtering
    still happens above (as in Hive/ORC).
    """
    sargable = tuple(c for c in conjuncts if is_sargable(c))
    if set(s.digest for s in sargable) == set(
            s.digest for s in scan.sarg_conjuncts):
        return None
    new_scan = rel.TableScan(
        scan.table_name, scan.schema, scan.pruned_partitions, sargable,
        scan.semijoin_sources, scan.pushed_query, scan.scan_id)
    return rel.Filter(new_scan, node.condition)


def is_sargable(conjunct: rex.RexNode) -> bool:
    """column <op> literal, column IN (literals), with op sargable."""
    if not isinstance(conjunct, rex.RexCall):
        return False
    if conjunct.op in ("=", "<", "<=", ">", ">="):
        a, b = conjunct.operands
        return (isinstance(a, rex.RexInputRef)
                and isinstance(b, rex.RexLiteral)
                and b.value is not None) or (
            isinstance(b, rex.RexInputRef)
            and isinstance(a, rex.RexLiteral) and a.value is not None)
    if conjunct.op == "IN":
        return (isinstance(conjunct.operands[0], rex.RexInputRef)
                and all(isinstance(v, rex.RexLiteral)
                        and v.value is not None
                        for v in conjunct.operands[1:]))
    return False


# --------------------------------------------------------------------------- #
# static partition pruning


def prune_partitions(root: rel.RelNode, hms: HiveMetastore) -> rel.RelNode:
    """Evaluate sargs against partition values and record survivors."""

    def rule(node: rel.RelNode) -> Optional[rel.RelNode]:
        if not isinstance(node, rel.TableScan) or not node.sarg_conjuncts:
            return None
        if node.pushed_query is not None:
            return None
        table = hms.get_table(node.table_name)
        if not table.is_partitioned or not table.partitions:
            return None
        part_width = len(table.partition_columns)
        data_width = len(table.schema)
        part_ordinals = set(range(data_width, data_width + part_width))
        relevant = [c for c in node.sarg_conjuncts
                    if c.input_refs() and c.input_refs() <= part_ordinals]
        # scans may already be column-pruned: ordinals then differ, so
        # re-derive partition ordinals from the scan schema by name
        if not relevant:
            name_ords = {}
            for i, col in enumerate(node.schema):
                name_ords[col.name.lower()] = i
            part_ords_by_name = {
                name_ords[c.name.lower()]
                for c in table.partition_columns
                if c.name.lower() in name_ords}
            relevant = [c for c in node.sarg_conjuncts
                        if c.input_refs()
                        and c.input_refs() <= part_ords_by_name]
            if not relevant:
                return None
            part_ordinals = part_ords_by_name
        survivors = []
        from ..exec import expr_eval
        for descriptor in table.list_partitions():
            row = _partition_row(node.schema, table, descriptor)
            batch = VectorBatch.from_rows(node.schema, [row])
            keep = True
            for conjunct in relevant:
                if not expr_eval.evaluate_predicate(conjunct, batch)[0]:
                    keep = False
                    break
            if keep:
                survivors.append(descriptor.values)
        return rel.TableScan(
            node.table_name, node.schema, tuple(survivors),
            node.sarg_conjuncts, node.semijoin_sources, node.pushed_query,
            node.scan_id)

    return rel.transform_bottom_up(root, rule)


def _partition_row(schema: Schema, table, descriptor) -> tuple:
    """A synthetic row carrying the partition values (rest is NULL)."""
    values = {c.name.lower(): v for c, v in
              zip(table.partition_columns, descriptor.values)}
    return tuple(values.get(col.name.lower()) for col in schema)
