"""Strict parser for the Prometheus text exposition format (0.0.4).

The inverse of :mod:`repro.obs.exposition`: it turns a ``/metrics``
payload back into metric families, *validating* the grammar as it goes.
Tests and the CI smoke job use it so "the endpoint works" means "a real
Prometheus scraper would accept this payload", not "some substring was
present".

Checks enforced:

- ``# HELP``/``# TYPE`` lines are well-formed and precede samples of
  their family; TYPE is one of the four Prometheus kinds
- sample lines match ``name{labels} value`` with balanced quotes and
  ``\\``/``"``/newline escapes in label values
- sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed)
- histogram families carry ``_bucket``/``_sum``/``_count`` samples and
  bucket counts are monotone non-decreasing, ending at ``+Inf``
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

#: legal values of a ``# TYPE`` line
PROM_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


@dataclass
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class Family:
    """A metric family: HELP/TYPE header plus its samples."""

    name: str
    help: str = ""
    type: str = "untyped"
    samples: list[Sample] = field(default_factory=list)


def _unescape(value: str) -> str:
    return (value.replace("\\\\", "\x00").replace('\\"', '"')
            .replace("\\n", "\n").replace("\x00", "\\"))


def _parse_value(text: str, lineno: int) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {text!r}")


def _parse_labels(text: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            raise ValueError(f"line {lineno}: bad label syntax in "
                             f"{{{text}}}")
        labels[match.group("key")] = _unescape(match.group("value"))
        pos = match.end()
    return labels


def _family_of(sample_name: str) -> str:
    """Histogram samples report under the family's base name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[:-len(suffix)]
    return sample_name


def parse_prometheus_text(text: str) -> dict[str, Family]:
    """Parse and validate a ``/metrics`` payload.

    Returns ``{family name: Family}``; raises :class:`ValueError` with
    the offending line number on any grammar violation.
    """
    families: dict[str, Family] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            if not parts or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: malformed HELP line")
            family = families.setdefault(parts[0], Family(parts[0]))
            family.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2 or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: malformed TYPE line")
            if parts[1] not in PROM_KINDS:
                raise ValueError(
                    f"line {lineno}: unknown metric type {parts[1]!r}")
            family = families.setdefault(parts[0], Family(parts[0]))
            family.type = parts[1]
            continue
        if line.startswith("#"):
            continue                              # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", lineno)
        value = _parse_value(match.group("value"), lineno)
        base = _family_of(name)
        family = families.get(base) or families.get(name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding "
                "HELP/TYPE header")
        family.samples.append(Sample(name, labels, value))
    for family in families.values():
        if family.type == "histogram":
            _validate_histogram(family)
    return families


def _validate_histogram(family: Family) -> None:
    """Bucket counts must be cumulative and end at ``+Inf``."""
    by_series: dict[tuple, list[tuple[float, float]]] = {}
    for sample in family.samples:
        if not sample.name.endswith("_bucket"):
            continue
        key = tuple(sorted((k, v) for k, v in sample.labels.items()
                           if k != "le"))
        le = sample.labels.get("le", "")
        bound = math.inf if le == "+Inf" else float(le)
        by_series.setdefault(key, []).append((bound, sample.value))
    for key, buckets in by_series.items():
        buckets.sort(key=lambda b: b[0])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(
                f"histogram {family.name}{dict(key)} lacks an "
                "le=\"+Inf\" bucket")
        counts = [count for _, count in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            raise ValueError(
                f"histogram {family.name}{dict(key)} bucket counts "
                "are not cumulative")


def total_series(families: dict[str, Family]) -> int:
    """Number of individual sample lines across every family."""
    return sum(len(f.samples) for f in families.values())
