"""Thread-safe metrics registry: counters, gauges, histograms.

Metric instances are addressed by ``(name, labels)``; asking for the
same address twice returns the same instance, so instrumented code can
call ``registry.counter("scan.rows", table=t).inc(n)`` on every scan
without holding references.  Histograms use fixed exponential bucket
boundaries (Prometheus style) so memory stays bounded no matter how many
observations arrive; percentiles are estimated from the cumulative
bucket counts.

Callback gauges (:meth:`MetricsRegistry.register_callback`) read their
value lazily at snapshot time — this is how pre-existing stats objects
(``CacheStats``, ``ResultsCacheStats``) are absorbed without rewriting
the code that mutates them.
"""

from __future__ import annotations

import json
import threading

from ..common import sync
from typing import Callable, Optional, Sequence

from ..errors import HiveError

LabelKey = tuple[tuple[str, str], ...]

#: default histogram boundaries: ~1 ms to ~17 min of (virtual) seconds
DEFAULT_BUCKETS = tuple(0.001 * (4 ** i) for i in range(11))

#: HELP text for every metric the warehouse registers.  A registry
#: created with ``require_help=True`` (the server's) rejects any
#: registration that neither passes ``help=`` nor appears here, so a
#: new instrumentation site cannot ship an undocumented series —
#: ``sys.metrics`` and the Prometheus ``/metrics`` exposition render
#: these as HELP lines.
METRIC_HELP: dict[str, str] = {
    "queries.total": "statements executed, by operation and status",
    "queries.results_cache_hits":
        "statements answered from the query results cache",
    "query.latency_s":
        "end-to-end virtual latency of successful queries, per pool",
    "runtime.queries": "queries executed by the Tez runner",
    "runtime.rows_produced": "rows returned by query root operators",
    "runtime.disk_bytes": "bytes read from simulated disk",
    "runtime.cache_bytes": "bytes served from the LLAP cache",
    "runtime.startup_s": "virtual seconds of container/fragment startup",
    "runtime.io_s": "virtual seconds of scan IO",
    "runtime.cpu_s": "virtual seconds of operator CPU",
    "runtime.shuffle_s": "virtual seconds of network shuffle",
    "runtime.external_s": "virtual seconds in external (federated) scans",
    "runtime.queue_s": "virtual seconds queued for a WM pool slot",
    "runtime.retry_s": "virtual seconds lost to injected task retries",
    "runtime.failover_s":
        "virtual seconds re-charged for LLAP daemon failover",
    "runtime.failed_task_attempts": "injected task attempts that failed",
    "runtime.speculative_tasks": "backup attempts launched by speculation",
    "scan.rows": "raw rows decoded per table scan",
    "scan.disk_bytes": "scan bytes read from disk, per table",
    "scan.cache_bytes": "scan bytes served from LLAP cache, per table",
    "scan.row_groups_pruned": "row groups skipped by sargable predicates",
    "scan.partitions_pruned": "partitions eliminated at compile time",
    "scan.semijoin_filtered_rows":
        "rows dropped by dynamic semijoin bloom filters",
    "scan.io_retries": "injected IO errors recovered by re-reads",
    "federation.calls": "pushdown calls issued to external handlers",
    "federation.rows": "rows returned by external handlers",
    "federation.external_s": "virtual seconds spent in external systems",
    "compaction.runs": "compaction jobs executed, by type",
    "compaction.merged_rows": "rows merged by compaction jobs",
    "wm.pool.admissions": "queries admitted per WM pool",
    "wm.pool.queue_delay_s": "admission queue delay distribution per pool",
    "wm.pool.running": "queries currently holding a pool slot",
    "wm.trigger.kills": "queries killed by WM triggers, per pool",
    "wm.trigger.moves": "queries moved between pools by WM triggers",
    "wm.query.total_runtime":
        "per-query scratch gauge read by WM triggers (virtual seconds)",
    "wm.query.elapsed":
        "per-query scratch gauge read by WM triggers (virtual seconds)",
    "wm.query.rows_produced":
        "per-query scratch gauge read by WM triggers (rows)",
    "faults.injected": "faults injected, by site",
    "faults.delay_s": "virtual seconds of injected delay, by site",
    "monitor.kill_requests": "KILL QUERY statements accepted",
    "monitor.kills": "queries terminated via KILL QUERY",
    "service.sessions.opened": "service sessions opened, per tenant",
    "service.sessions.closed": "service sessions closed, per tenant",
    "service.sessions.expired":
        "idle service sessions reaped by the TTL housekeeper",
    "service.sessions.rejected":
        "session opens refused (bad token or tenant quota), per reason",
    "service.statements.submitted":
        "statements accepted by the serving layer, per tenant",
    "service.statements.finished":
        "service operations reaching a terminal state, per status",
    "service.admission.wait_s":
        "virtual seconds queued at the service admission gate, per pool",
    "service.admission.timeouts":
        "submissions rejected by the admission queue timeout, per pool",
    "service.admission.cancelled":
        "queued operations cancelled by KILL QUERY, per pool",
    "service.admission.queued":
        "operations currently waiting for a run slot, per pool",
    "service.admission.running":
        "operations currently holding a service run slot, per pool",
    "service.admission.wait_s.p99":
        "p99 of the service admission wait distribution, per pool",
    "service.admission.wait_s.p95":
        "p95 of the service admission wait distribution, per pool",
    "llap.cache.used_bytes": "LLAP cache bytes resident per daemon",
    "llap.cache.chunks": "LLAP cache chunks resident per daemon",
    "llap.cache.occupancy":
        "fraction of a daemon's cache capacity in use",
    "llap.executors.busy": "executor slots busy per daemon (modeled)",
    "llap.executors.total": "executor slots per daemon",
    "llap.queue_depth": "fragments waiting for an executor per daemon",
    "cluster.nodes_total": "configured LLAP daemon count",
    "txn.open": "transactions currently open",
    "txn.min_open": "oldest open transaction id (0 when none)",
    "locks.held": "locks currently held in the lock manager",
    "locks.waiters": "lock requests currently waiting",
    "lint.sanitizer.enabled":
        "1 when the process runs with the lock sanitizer installed "
        "(HIVE_SANITIZE=1), else 0",
    "lint.sanitizer.sites":
        "distinct lock sites the sanitizer has instrumented",
    "lint.sanitizer.acquisitions":
        "lock acquisitions observed by the sanitizer",
    "lint.sanitizer.contended":
        "sanitized acquisitions that had to block on a held lock",
    "lint.sanitizer.longest_hold_s":
        "longest wall-clock hold of any sanitized lock, in seconds",
    "lint.findings":
        "runtime sanitizer findings so far (rows of sys.lint_findings)",
    "qstore.fingerprints":
        "distinct statement fingerprints tracked by the query store",
    "qstore.plans":
        "distinct (fingerprint, plan hash) pairs tracked by the "
        "query store",
    "qstore.events":
        "deduplicated findings retained in sys.query_store_events",
    "qstore.recorded": "executions aggregated into the query store",
    "qstore.plan_changes":
        "plan-change events detected (fingerprint switched plan hash)",
    "qstore.regressions":
        "latency-regression events detected (window p95 vs. baseline)",
    "qstore.evictions":
        "fingerprints evicted from the query store at capacity",
    "hooks.fired": "execution-hook invocations, by hook and phase",
    "hooks.errors":
        "execution-hook exceptions absorbed (statement unaffected), "
        "by hook and phase",
    "hooks.timeouts":
        "execution hooks quarantined for exceeding hive.hook.timeout.s, "
        "by hook and phase",
    "audit.records": "audit records written (ring + spilled)",
    "audit.ring": "audit records currently resident in the ring",
    "audit.spilled": "audit records spilled to the overflow store",
    "lineage.fingerprints":
        "statement fingerprints with recorded column lineage",
    "lineage.edges":
        "column-level dependency edges resident in the lineage graph",
    "lineage.recorded": "lineage extractions recorded (incl. refreshes)",
    "lineage.evictions":
        "fingerprints evicted from the lineage graph at capacity",
    "lineage.table_edges":
        "table-to-table provenance records in the metastore "
        "(incl. tombstones)",
}


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (float increments allowed)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise HiveError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        # single GIL-atomic float read on the scrape hot path
        return self._value  # concheck: disable=CC002


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        # single GIL-atomic float read on the scrape hot path
        return self._value  # concheck: disable=CC002


class Histogram:
    """Fixed-bucket histogram with count / sum / min / max."""

    __slots__ = ("buckets", "_counts", "count", "sum", "min", "max",
                 "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-quantile (upper bucket bound), p in [0, 100]."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = self.count * p / 100.0
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += self._counts[i]
                if cumulative >= rank:
                    return bound
            return self.max if self.max is not None else self.buckets[-1]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, ending
        with the ``+Inf`` bucket (== total count)."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out

    def to_dict(self) -> dict:
        # snapshot under the lock, then compute percentiles (which
        # take the non-reentrant lock themselves) after release
        with self._lock:
            count, total = self.count, self.sum
            low, high = self.min, self.max
        mean = total / count if count else 0.0
        return {"count": count, "sum": total,
                "min": low, "max": high, "mean": mean,
                "p50": self.percentile(50), "p95": self.percentile(95)}


class MetricsRegistry:
    """Labeled metric series, one namespace per server."""

    def __init__(self, require_help: bool = False):
        self._lock = sync.new_rlock('MetricsRegistry._lock')
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._series: dict[str, dict[LabelKey, object]] = {}
        self._callbacks: dict[str, dict[LabelKey, Callable[[], float]]] \
            = {}
        #: reject registrations with neither ``help=`` nor a METRIC_HELP
        #: catalog entry (the server registry runs in this mode)
        self.require_help = require_help

    # -- instrument accessors ------------------------------------------- #
    def counter(self, name: str, *, help: str = "",
                **labels) -> Counter:
        return self._get(name, "counter", Counter, labels, help)

    def gauge(self, name: str, *, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", Gauge, labels, help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  *, help: str = "", **labels) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(buckets), labels, help)

    def register_callback(self, name: str, fn: Callable[[], float],
                          *, help: str = "", **labels) -> None:
        """A gauge whose value is computed at read time."""
        with self._lock:
            self._check_kind(name, "callback")
            self._record_help(name, help)
            self._callbacks.setdefault(name, {})[_label_key(labels)] = fn

    def _get(self, name, kind, factory, labels, help_text=""):
        key = _label_key(labels)
        with self._lock:
            self._check_kind(name, kind)
            self._record_help(name, help_text)
            series = self._series.setdefault(name, {})
            metric = series.get(key)
            if metric is None:
                metric = factory()
                series[key] = metric
            return metric

    def _record_help(self, name: str, help_text: str) -> None:
        # always called with self._lock (an RLock) held by the accessor
        if self._help.get(name):
            return
        resolved = help_text or METRIC_HELP.get(name, "")
        if not resolved and self.require_help:
            raise HiveError(
                f"metric {name!r} registered without help text: pass "
                "help=... or add it to the METRIC_HELP catalog")
        self._help[name] = resolved  # reprolint: disable=RL001

    def _check_kind(self, name: str, kind: str) -> None:
        existing = self._kinds.setdefault(name, kind)
        if existing != kind:
            raise HiveError(
                f"metric {name!r} is a {existing}, not a {kind}")

    # -- reads ---------------------------------------------------------- #
    def value(self, name: str, **labels) -> Optional[float]:
        """Scalar value of one series (histograms report their count)."""
        key = _label_key(labels)
        with self._lock:
            fn = self._callbacks.get(name, {}).get(key)
            if fn is not None:
                return float(fn())
            metric = self._series.get(name, {}).get(key)
        if metric is None:
            return None
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.value

    def percentile(self, name: str, p: float,
                   **labels) -> Optional[float]:
        """Estimated p-quantile of one histogram series.

        Returns ``None`` when the series does not exist or is not a
        histogram — callers treat that as "no distribution yet", the
        same contract as :meth:`value`.
        """
        key = _label_key(labels)
        with self._lock:
            metric = self._series.get(name, {}).get(key)
        if not isinstance(metric, Histogram):
            return None
        return metric.percentile(p)

    def total(self, name: str, **label_filter) -> float:
        """Sum a metric across all label series matching the filter."""
        wanted = set(_label_key(label_filter))
        total = 0.0
        with self._lock:
            for key, metric in self._series.get(name, {}).items():
                if wanted <= set(key):
                    total += (metric.count
                              if isinstance(metric, Histogram)
                              else metric.value)
            for key, fn in self._callbacks.get(name, {}).items():
                if wanted <= set(key):
                    total += float(fn())
        return total

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._series) | set(self._callbacks))

    def describe(self, name: str) -> str:
        """HELP text recorded for a metric name ('' when absent)."""
        with self._lock:
            return self._help.get(name, "")

    def kind_of(self, name: str) -> str:
        """Registered kind: counter | gauge | histogram | callback."""
        with self._lock:
            return self._kinds.get(name, "")

    def drop(self, name: str, **labels) -> None:
        """Remove one series (e.g. a per-query gauge after evaluation)."""
        key = _label_key(labels)
        with self._lock:
            self._series.get(name, {}).pop(key, None)
            self._callbacks.get(name, {}).pop(key, None)

    # -- export --------------------------------------------------------- #
    def snapshot(self) -> dict:
        """``{name: [{labels, kind, value...}, ...]}`` over every series."""
        out: dict[str, list] = {}
        with self._lock:
            items = [(name, dict(series))
                     for name, series in self._series.items()]
            callbacks = [(name, dict(series))
                         for name, series in self._callbacks.items()]
            kinds = dict(self._kinds)
        for name, series in items:
            rows = out.setdefault(name, [])
            for key, metric in sorted(series.items()):
                entry = {"labels": dict(key),
                         "kind": kinds.get(name, "?"),
                         "help": self.describe(name)}
                if isinstance(metric, Histogram):
                    entry.update(metric.to_dict())
                    entry["buckets"] = [
                        [bound, count] for bound, count
                        in metric.cumulative_buckets()]
                else:
                    entry["value"] = metric.value
                rows.append(entry)
        for name, series in callbacks:
            rows = out.setdefault(name, [])
            for key, fn in sorted(series.items()):
                rows.append({"labels": dict(key), "kind": "gauge",
                             "help": self.describe(name),
                             "value": float(fn())})
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            # callbacks mirror live objects; keep them registered
            self._kinds = {name: "callback" for name in self._callbacks}
