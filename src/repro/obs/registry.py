"""Thread-safe metrics registry: counters, gauges, histograms.

Metric instances are addressed by ``(name, labels)``; asking for the
same address twice returns the same instance, so instrumented code can
call ``registry.counter("scan.rows", table=t).inc(n)`` on every scan
without holding references.  Histograms use fixed exponential bucket
boundaries (Prometheus style) so memory stays bounded no matter how many
observations arrive; percentiles are estimated from the cumulative
bucket counts.

Callback gauges (:meth:`MetricsRegistry.register_callback`) read their
value lazily at snapshot time — this is how pre-existing stats objects
(``CacheStats``, ``ResultsCacheStats``) are absorbed without rewriting
the code that mutates them.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Optional, Sequence

from ..errors import HiveError

LabelKey = tuple[tuple[str, str], ...]

#: default histogram boundaries: ~1 ms to ~17 min of (virtual) seconds
DEFAULT_BUCKETS = tuple(0.001 * (4 ** i) for i in range(11))


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (float increments allowed)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise HiveError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count / sum / min / max."""

    __slots__ = ("buckets", "_counts", "count", "sum", "min", "max",
                 "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-quantile (upper bucket bound), p in [0, 100]."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = self.count * p / 100.0
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += self._counts[i]
                if cumulative >= rank:
                    return bound
            return self.max if self.max is not None else self.buckets[-1]

    def to_dict(self) -> dict:
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max, "mean": self.mean,
                "p50": self.percentile(50), "p95": self.percentile(95)}


class MetricsRegistry:
    """Labeled metric series, one namespace per server."""

    def __init__(self):
        self._lock = threading.RLock()
        self._kinds: dict[str, str] = {}
        self._series: dict[str, dict[LabelKey, object]] = {}
        self._callbacks: dict[str, dict[LabelKey, Callable[[], float]]] \
            = {}

    # -- instrument accessors ------------------------------------------- #
    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, "gauge", Gauge, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(buckets), labels)

    def register_callback(self, name: str, fn: Callable[[], float],
                          **labels) -> None:
        """A gauge whose value is computed at read time."""
        with self._lock:
            self._check_kind(name, "callback")
            self._callbacks.setdefault(name, {})[_label_key(labels)] = fn

    def _get(self, name, kind, factory, labels):
        key = _label_key(labels)
        with self._lock:
            self._check_kind(name, kind)
            series = self._series.setdefault(name, {})
            metric = series.get(key)
            if metric is None:
                metric = factory()
                series[key] = metric
            return metric

    def _check_kind(self, name: str, kind: str) -> None:
        existing = self._kinds.setdefault(name, kind)
        if existing != kind:
            raise HiveError(
                f"metric {name!r} is a {existing}, not a {kind}")

    # -- reads ---------------------------------------------------------- #
    def value(self, name: str, **labels) -> Optional[float]:
        """Scalar value of one series (histograms report their count)."""
        key = _label_key(labels)
        with self._lock:
            fn = self._callbacks.get(name, {}).get(key)
            if fn is not None:
                return float(fn())
            metric = self._series.get(name, {}).get(key)
        if metric is None:
            return None
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.value

    def percentile(self, name: str, p: float,
                   **labels) -> Optional[float]:
        """Estimated p-quantile of one histogram series.

        Returns ``None`` when the series does not exist or is not a
        histogram — callers treat that as "no distribution yet", the
        same contract as :meth:`value`.
        """
        key = _label_key(labels)
        with self._lock:
            metric = self._series.get(name, {}).get(key)
        if not isinstance(metric, Histogram):
            return None
        return metric.percentile(p)

    def total(self, name: str, **label_filter) -> float:
        """Sum a metric across all label series matching the filter."""
        wanted = set(_label_key(label_filter))
        total = 0.0
        with self._lock:
            for key, metric in self._series.get(name, {}).items():
                if wanted <= set(key):
                    total += (metric.count
                              if isinstance(metric, Histogram)
                              else metric.value)
            for key, fn in self._callbacks.get(name, {}).items():
                if wanted <= set(key):
                    total += float(fn())
        return total

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._series) | set(self._callbacks))

    def drop(self, name: str, **labels) -> None:
        """Remove one series (e.g. a per-query gauge after evaluation)."""
        key = _label_key(labels)
        with self._lock:
            self._series.get(name, {}).pop(key, None)
            self._callbacks.get(name, {}).pop(key, None)

    # -- export --------------------------------------------------------- #
    def snapshot(self) -> dict:
        """``{name: [{labels, kind, value...}, ...]}`` over every series."""
        out: dict[str, list] = {}
        with self._lock:
            items = [(name, dict(series))
                     for name, series in self._series.items()]
            callbacks = [(name, dict(series))
                         for name, series in self._callbacks.items()]
        for name, series in items:
            rows = out.setdefault(name, [])
            for key, metric in sorted(series.items()):
                entry = {"labels": dict(key),
                         "kind": self._kinds.get(name, "?")}
                if isinstance(metric, Histogram):
                    entry.update(metric.to_dict())
                else:
                    entry["value"] = metric.value
                rows.append(entry)
        for name, series in callbacks:
            rows = out.setdefault(name, [])
            for key, fn in sorted(series.items()):
                rows.append({"labels": dict(key), "kind": "gauge",
                             "value": float(fn())})
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            # callbacks mirror live objects; keep them registered
            self._kinds = {name: "callback" for name in self._callbacks}
