"""Machine-readable benchmark export (``BENCH_obs.json``).

The benchmark harness records one record per executed benchmark query —
scenario label, query name, and the full virtual-time latency breakdown
from the observability layer — into a process-wide collector.  The
``benchmarks/`` suite flushes the collector to ``BENCH_obs.json`` at
session end, so the perf trajectory of every PR is tracked by a file a
tool (or the next session) can diff.
"""

from __future__ import annotations

import json
import threading

from ..common import sync
from typing import Optional


class BenchObsCollector:
    """Accumulates per-query benchmark records for JSON export."""

    def __init__(self):
        self._lock = sync.new_lock('BenchObsCollector._lock')
        self._records: list[dict] = []

    def record(self, scenario: str, query: str, *,
               seconds: Optional[float], rows: int = 0,
               from_cache: bool = False, error: str = "",
               wall_s: Optional[float] = None,
               breakdown: Optional[dict] = None) -> None:
        entry = {"scenario": scenario, "query": query,
                 "seconds": seconds, "rows": rows,
                 "from_cache": from_cache}
        if wall_s is not None:
            entry["wall_s"] = round(wall_s, 6)
        if error:
            entry["error"] = error
        if breakdown:
            entry["breakdown"] = {k: round(v, 6) if
                                  isinstance(v, float) else v
                                  for k, v in breakdown.items()}
        with self._lock:
            self._records.append(entry)

    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def summary(self) -> dict:
        """Per-scenario totals for the export header."""
        scenarios: dict[str, dict] = {}
        for record in self.records():
            s = scenarios.setdefault(record["scenario"],
                                     {"queries": 0, "failed": 0,
                                      "total_s": 0.0, "wall_s": 0.0})
            s["queries"] += 1
            if record["seconds"] is None:
                s["failed"] += 1
            else:
                s["total_s"] += record["seconds"]
            s["wall_s"] += record.get("wall_s") or 0.0
        for s in scenarios.values():
            s["total_s"] = round(s["total_s"], 6)
            s["wall_s"] = round(s["wall_s"], 6)
        return scenarios

    def write(self, path: str) -> dict:
        payload = {"summary": self.summary(),
                   "records": self.records()}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        return payload


#: process-wide collector the bench harness feeds (benchmarks/ flushes it)
BENCH_COLLECTOR = BenchObsCollector()


def breakdown_of(metrics) -> dict:
    """Flatten a QueryMetrics into the export's breakdown dict."""
    if metrics is None:
        return {}
    return {"total_s": metrics.total_s, "queue_s": metrics.queue_s,
            "compile_s": metrics.compile_s,
            "startup_s": metrics.startup_s, "io_s": metrics.io_s,
            "cpu_s": metrics.cpu_s, "shuffle_s": metrics.shuffle_s,
            "external_s": metrics.external_s,
            "disk_bytes": metrics.disk_bytes,
            "cache_bytes": metrics.cache_bytes,
            "cache_hit_fraction": metrics.cache_hit_fraction,
            "rows_produced": metrics.rows_produced}
