"""Query Store: fingerprint-level workload history (``sys.query_store``).

The query log (PR 1) records single executions richly; this module adds
*query identity across executions*.  Every executed statement is
normalized to a fingerprint (:mod:`repro.obs.fingerprint`) and its
execution stats are aggregated per ``(fingerprint, plan_hash)`` —
counts, exact latency percentiles over bounded sample reservoirs,
rows/bytes, retries, admission wait and the cache-hit mix — in
time-bucketed windows on the session virtual clock.

On top of the aggregates the store detects two kinds of findings, both
deduplicated into ``sys.query_store_events``:

* **plan changes** — a fingerprint switches plan hash; the event
  carries a structural diff of the two EXPLAIN trees,
* **latency regressions** — the current window's p95 exceeds the
  per-fingerprint baseline (samples from all earlier windows) by a
  configurable factor, with a minimum sample count on both sides.

Regression state is also exposed to the WM trigger machinery
(``WHEN regression(query.latency_s) > F THEN MOVE/KILL``) through
:meth:`regression_factor`, so findings fire through the existing
Trigger/alert path and land in ``sys.wm_events``.

Retention mirrors the query log: the store keeps at most
``hive.query.store.capacity`` fingerprints (LRU on last virtual use)
and ``hive.query.store.max.events`` events.
"""

from __future__ import annotations

from ..common import sync
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from . import fingerprint as fp_mod

#: bounded latency reservoirs: enough for exact p99 at workload scale,
#: small enough that a hot fingerprint cannot grow without bound
_SAMPLES_PER_WINDOW = 256
_BASELINE_SAMPLES = 512
#: raw-SQL -> fingerprint memo bound (the driver fingerprints every
#: statement; recurring workloads repeat a handful of texts)
_FINGERPRINT_MEMO = 512


def _percentile(samples, p: float) -> float:
    """Exact nearest-rank p-quantile of a sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
    return ordered[int(rank) - 1]


@dataclass
class QueryStoreEvent:
    """One deduplicated finding — a row of ``sys.query_store_events``."""

    event_id: int
    kind: str                    # "plan_change" | "regression"
    fingerprint: str
    statement: str
    old_plan_hash: str = ""
    new_plan_hash: str = ""
    before_p95_s: float = 0.0
    after_p95_s: float = 0.0
    factor: float = 0.0
    detail: str = ""
    at_s: float = 0.0            # session virtual clock at detection
    count: int = 1               # dedup: repeat findings bump this

    def as_row(self) -> tuple:
        return (self.event_id, self.kind, self.fingerprint,
                self.statement, self.old_plan_hash, self.new_plan_hash,
                self.before_p95_s, self.after_p95_s, self.factor,
                self.detail, self.at_s, self.count)


@dataclass
class _PlanStats:
    """Aggregates for one (fingerprint, plan_hash) pair."""

    plan_hash: str
    explain_text: str = ""
    executions: int = 0
    errors: int = 0
    retries: int = 0
    rows_produced: int = 0
    disk_bytes: int = 0
    cache_bytes: int = 0
    total_s_sum: float = 0.0
    wall_ms_sum: float = 0.0
    samples: deque = field(
        default_factory=lambda: deque(maxlen=_SAMPLES_PER_WINDOW))
    first_seen_s: float = 0.0
    last_seen_s: float = 0.0

    def percentile(self, p: float) -> float:
        return _percentile(self.samples, p)

    @property
    def mean_s(self) -> float:
        return self.total_s_sum / self.executions if self.executions \
            else 0.0

    @property
    def mean_wall_ms(self) -> float:
        return self.wall_ms_sum / self.executions if self.executions \
            else 0.0


@dataclass
class _FingerprintStats:
    """Aggregates for one fingerprint across all plans."""

    fingerprint: str
    statement: str               # first spelling seen (raw SQL)
    plans: dict = field(default_factory=dict)
    last_plan_hash: str = ""
    executions: int = 0
    errors: int = 0
    retries: int = 0
    results_cache_hits: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    rows_produced: int = 0
    queue_s_sum: float = 0.0     # admission wait (WM queue delay)
    wall_ms_sum: float = 0.0
    #: current time bucket on the virtual clock, and its samples
    bucket: Optional[int] = None
    current: list = field(default_factory=list)
    #: samples from completed buckets — the regression baseline
    baseline: deque = field(
        default_factory=lambda: deque(maxlen=_BASELINE_SAMPLES))
    first_seen_s: float = 0.0
    last_seen_s: float = 0.0

    def all_samples(self) -> list:
        return list(self.baseline) + list(self.current)


class QueryStore:
    """Thread-safe per-server workload history keyed by fingerprint."""

    def __init__(self, capacity: int = 512, window_s: float = 300.0,
                 regression_threshold: float = 1.5,
                 regression_min_samples: int = 5,
                 max_events: int = 512):
        self.enabled = True
        self.capacity = max(1, int(capacity))
        self.window_s = float(window_s)
        self.regression_threshold = float(regression_threshold)
        self.regression_min_samples = max(1, int(regression_min_samples))
        self.max_events = max(1, int(max_events))
        self._lock = sync.new_lock('QueryStore._lock')
        self._fps: dict[str, _FingerprintStats] = {}
        #: dedup key -> event; insertion-ordered, bounded by max_events
        self._events: dict[tuple, QueryStoreEvent] = {}
        self._next_event_id = 1
        #: query_id -> fingerprint of the statement in flight (read by
        #: WM ``regression(...)`` triggers during execution)
        self._live: dict[int, str] = {}
        self._memo: dict[str, str] = {}
        # lifetime counters behind the qstore.* gauges
        self.recorded = 0
        self.plan_changes = 0
        self.regressions = 0
        self.evictions = 0

    # -- configuration -------------------------------------------------- #
    def configure(self, conf) -> None:
        """Adopt the ``qstore_*`` knobs of a server conf."""
        with self._lock:
            self.enabled = bool(conf.qstore_enabled)
            self.capacity = max(1, int(conf.qstore_capacity))
            self.window_s = float(conf.qstore_window_s)
            self.regression_threshold = float(
                conf.qstore_regression_threshold)
            self.regression_min_samples = max(
                1, int(conf.qstore_regression_min_samples))
            self.max_events = max(1, int(conf.qstore_max_events))
            self._trim()

    def apply_knob(self, attr: str, value) -> bool:
        """Live-push one ``qstore_*`` conf attribute (SET statement)."""
        with self._lock:
            if attr == "qstore_enabled":
                self.enabled = bool(value)
            elif attr == "qstore_capacity":
                self.capacity = max(1, int(value))
            elif attr == "qstore_window_s":
                self.window_s = float(value)
            elif attr == "qstore_regression_threshold":
                self.regression_threshold = float(value)
            elif attr == "qstore_regression_min_samples":
                self.regression_min_samples = max(1, int(value))
            elif attr == "qstore_max_events":
                self.max_events = max(1, int(value))
            else:
                return False
            self._trim()
            return True

    # -- identity ------------------------------------------------------- #
    def fingerprint_of(self, sql: str) -> str:
        """Fingerprint of one statement text (memoized)."""
        key = sql.strip()
        with self._lock:
            hit = self._memo.get(key)
            if hit is not None:
                return hit
        value = fp_mod.fingerprint(sql)
        with self._lock:
            if len(self._memo) >= _FINGERPRINT_MEMO:
                self._memo.clear()
            self._memo[key] = value
        return value

    # -- live queries (WM regression triggers) -------------------------- #
    def register_live(self, query_id: int, fingerprint: str) -> None:
        with self._lock:
            self._live[query_id] = fingerprint

    def forget_live(self, query_id: int) -> None:
        with self._lock:
            self._live.pop(query_id, None)

    def regression_factor(self, query_id: int) -> Optional[float]:
        """Current-window p95 / baseline p95 for the live query's
        fingerprint; None when either side lacks samples.  This is the
        value ``WHEN regression(...) > F`` triggers compare."""
        with self._lock:
            fingerprint = self._live.get(query_id)
            if fingerprint is None:
                return None
            stats = self._fps.get(fingerprint)
            if stats is None:
                return None
            state = self._regression_state(stats)
        if state is None:
            return None
        return state[2]

    def _regression_state(self, stats) -> Optional[tuple]:
        """(baseline_p95, current_p95, factor) — None below minimums.

        Caller holds ``self._lock``.
        """
        need = self.regression_min_samples
        if len(stats.baseline) < need or len(stats.current) < need:
            return None
        base_p95 = _percentile(stats.baseline, 95)
        cur_p95 = _percentile(stats.current, 95)
        if base_p95 <= 0.0:
            return None
        return base_p95, cur_p95, cur_p95 / base_p95

    # -- recording ------------------------------------------------------ #
    def record(self, entry, *, fingerprint: str, plan_hash: str = "",
               plan_explain: str = "", now_s: float = 0.0) -> None:
        """Aggregate one finished statement (a QueryLogEntry).

        Called exactly once per ``Session.execute`` — internal task
        retries and plan re-executions already happened inside the
        entry, so they can never double-count an execution.
        """
        if not fingerprint:
            return
        with self._lock:
            if not self.enabled:
                return
            stats = self._fps.get(fingerprint)
            if stats is None:
                stats = _FingerprintStats(
                    fingerprint=fingerprint, statement=entry.statement,
                    first_seen_s=now_s, last_seen_s=now_s)
                self._fps[fingerprint] = stats
                self._trim()
            self.recorded += 1
            stats.executions += 1
            stats.last_seen_s = now_s
            stats.rows_produced += entry.rows_produced
            stats.queue_s_sum += entry.queue_s
            stats.wall_ms_sum += entry.wall_ms
            if entry.status != "ok":
                stats.errors += 1
            if entry.reexecuted:
                stats.retries += 1
            if entry.from_cache:
                stats.results_cache_hits += 1
            self._record_plan(stats, entry, plan_hash, plan_explain,
                              now_s)
            # latency windows track real executions only: a results-
            # cache fetch (constant virtual cost) or a failed statement
            # would poison the distribution either way
            if entry.status == "ok" and not entry.from_cache:
                bucket = (int(entry.started_s // self.window_s)
                          if self.window_s > 0 else 0)
                if stats.bucket is None:
                    stats.bucket = bucket
                elif bucket != stats.bucket:
                    stats.baseline.extend(stats.current)
                    stats.current.clear()
                    stats.bucket = bucket
                stats.current.append(entry.total_s)
                if len(stats.current) > _SAMPLES_PER_WINDOW:
                    del stats.current[0]
                self._check_regression(stats, now_s)

    def _record_plan(self, stats, entry, plan_hash: str,
                     plan_explain: str, now_s: float) -> None:
        # caller holds self._lock
        if not plan_hash:
            return
        plan = stats.plans.get(plan_hash)
        if plan is None:
            plan = _PlanStats(plan_hash=plan_hash,
                              explain_text=plan_explain,
                              first_seen_s=now_s)
            stats.plans[plan_hash] = plan
        plan.executions += 1
        plan.last_seen_s = now_s
        plan.rows_produced += entry.rows_produced
        plan.disk_bytes += entry.disk_bytes
        plan.cache_bytes += entry.cache_bytes
        plan.wall_ms_sum += entry.wall_ms
        if entry.status != "ok":
            plan.errors += 1
        if entry.reexecuted:
            plan.retries += 1
        if entry.status == "ok" and not entry.from_cache:
            plan.total_s_sum += entry.total_s
            plan.samples.append(entry.total_s)
        old = stats.last_plan_hash
        if old and old != plan_hash:
            old_text = (stats.plans[old].explain_text
                        if old in stats.plans else "")
            self._emit(("plan_change", stats.fingerprint, old,
                        plan_hash),
                       kind="plan_change", stats=stats,
                       old_plan_hash=old, new_plan_hash=plan_hash,
                       detail=fp_mod.plan_diff(old_text, plan_explain),
                       at_s=now_s)
        stats.last_plan_hash = plan_hash

    def _check_regression(self, stats, now_s: float) -> None:
        # caller holds self._lock
        state = self._regression_state(stats)
        if state is None:
            return
        base_p95, cur_p95, factor = state
        if factor <= self.regression_threshold:
            return
        self._emit(("regression", stats.fingerprint),
                   kind="regression", stats=stats,
                   old_plan_hash="", new_plan_hash=stats.last_plan_hash,
                   before_p95_s=base_p95, after_p95_s=cur_p95,
                   factor=factor, at_s=now_s)

    def _emit(self, key: tuple, *, kind: str, stats,
              old_plan_hash: str = "", new_plan_hash: str = "",
              before_p95_s: float = 0.0, after_p95_s: float = 0.0,
              factor: float = 0.0, detail: str = "",
              at_s: float = 0.0) -> None:
        """Create or bump one deduplicated event (caller holds lock)."""
        event = self._events.get(key)
        if event is not None:
            event.count += 1
            # keep the detection-time "before", track the latest state
            event.after_p95_s = after_p95_s or event.after_p95_s
            event.factor = factor or event.factor
            return
        event = QueryStoreEvent(
            event_id=self._next_event_id, kind=kind,
            fingerprint=stats.fingerprint, statement=stats.statement,
            old_plan_hash=old_plan_hash, new_plan_hash=new_plan_hash,
            before_p95_s=before_p95_s, after_p95_s=after_p95_s,
            factor=factor, detail=detail, at_s=at_s)
        self._next_event_id += 1        # reprolint: disable=RL001
        self._events[key] = event       # reprolint: disable=RL001
        if kind == "plan_change":
            self.plan_changes += 1      # reprolint: disable=RL001
        else:
            self.regressions += 1       # reprolint: disable=RL001
        while len(self._events) > self.max_events:
            oldest = next(iter(self._events))
            self._events.pop(oldest)    # reprolint: disable=RL001

    def _trim(self) -> None:
        # caller holds self._lock; LRU on last virtual use
        while len(self._fps) > self.capacity:
            victim = min(self._fps,
                         key=lambda k: (self._fps[k].last_seen_s, k))
            self._fps.pop(victim)  # reprolint: disable=RL001
            self.evictions += 1   # reprolint: disable=RL001

    # -- plan cache hook ------------------------------------------------ #
    def note_plan_cache(self, database: str, canonical: str,
                        hit: bool) -> None:
        """Per-fingerprint compiled-plan-cache hit/miss accounting.

        Wired as ``CompiledPlanCache.on_lookup``; called after the
        cache releases its own lock, so lock order stays acyclic.
        """
        fingerprint = self.fingerprint_of(canonical)
        with self._lock:
            if not self.enabled:
                return
            stats = self._fps.get(fingerprint)
            if stats is None:
                # first execution: the lookup precedes the record; keep
                # a shell so the miss is not lost
                stats = _FingerprintStats(fingerprint=fingerprint,
                                          statement=canonical)
                self._fps[fingerprint] = stats
                self._trim()
            if hit:
                stats.plan_cache_hits += 1
            else:
                stats.plan_cache_misses += 1

    # -- reads ---------------------------------------------------------- #
    def rows_store(self) -> list[tuple]:
        """Rows of ``sys.query_store`` (hottest fingerprints first)."""
        with self._lock:
            out = []
            for stats in sorted(self._fps.values(),
                                key=lambda s: (-s.executions,
                                               s.fingerprint)):
                samples = stats.all_samples()
                state = self._regression_state(stats)
                out.append((
                    stats.fingerprint, stats.statement,
                    len(stats.plans), stats.executions, stats.errors,
                    stats.retries, stats.results_cache_hits,
                    stats.plan_cache_hits, stats.plan_cache_misses,
                    stats.rows_produced, stats.queue_s_sum,
                    _percentile(samples, 50), _percentile(samples, 95),
                    _percentile(samples, 99),
                    state[0] if state else _percentile(stats.baseline,
                                                       95),
                    (stats.wall_ms_sum / stats.executions
                     if stats.executions else 0.0),
                    stats.last_plan_hash, stats.first_seen_s,
                    stats.last_seen_s))
            return out

    def rows_plans(self) -> list[tuple]:
        """Rows of ``sys.query_store_plans``."""
        with self._lock:
            out = []
            for stats in sorted(self._fps.values(),
                                key=lambda s: s.fingerprint):
                for plan in sorted(stats.plans.values(),
                                   key=lambda p: p.first_seen_s):
                    out.append((
                        stats.fingerprint, plan.plan_hash,
                        plan.executions, plan.errors, plan.retries,
                        plan.rows_produced, plan.disk_bytes,
                        plan.cache_bytes, plan.percentile(50),
                        plan.percentile(95), plan.percentile(99),
                        plan.mean_s, plan.mean_wall_ms,
                        plan.first_seen_s, plan.last_seen_s))
            return out

    def rows_events(self) -> list[tuple]:
        """Rows of ``sys.query_store_events`` (detection order)."""
        with self._lock:
            return [e.as_row() for e in self._events.values()]

    def events(self) -> list[QueryStoreEvent]:
        with self._lock:
            return list(self._events.values())

    def history_lines(self, sql: str) -> list[str]:
        """The ``EXPLAIN HISTORY`` rendering for one statement text."""
        fingerprint = self.fingerprint_of(sql)
        with self._lock:
            stats = self._fps.get(fingerprint)
            if stats is None:
                return [f"no history for fingerprint {fingerprint}"]
            samples = stats.all_samples()
            lines = [
                f"fingerprint: {fingerprint}",
                f"statement: {fp_mod.canonicalize(stats.statement)}",
                f"executions: {stats.executions}  "
                f"errors: {stats.errors}  retries: {stats.retries}  "
                f"plans: {len(stats.plans)}",
                f"cache hits: plan={stats.plan_cache_hits}/"
                f"{stats.plan_cache_hits + stats.plan_cache_misses}  "
                f"results={stats.results_cache_hits}",
                f"latency p50/p95/p99 (virtual s): "
                f"{_percentile(samples, 50):.3f}/"
                f"{_percentile(samples, 95):.3f}/"
                f"{_percentile(samples, 99):.3f}",
            ]
            for plan in sorted(stats.plans.values(),
                               key=lambda p: p.first_seen_s):
                marker = (" [current]"
                          if plan.plan_hash == stats.last_plan_hash
                          else "")
                lines.append(
                    f"plan {plan.plan_hash}{marker}: "
                    f"executions={plan.executions} "
                    f"p50={plan.percentile(50):.3f} "
                    f"p95={plan.percentile(95):.3f} "
                    f"p99={plan.percentile(99):.3f} "
                    f"mean={plan.mean_s:.3f} "
                    f"wall_ms={plan.mean_wall_ms:.1f}")
            last_change = None
            for event in self._events.values():
                if (event.kind == "plan_change"
                        and event.fingerprint == fingerprint):
                    last_change = event
            if last_change is not None:
                lines.append(
                    f"last plan change: {last_change.old_plan_hash} -> "
                    f"{last_change.new_plan_hash} "
                    f"(virtual t={last_change.at_s:.3f}s, "
                    f"seen x{last_change.count})")
                lines.append("plan diff:")
                lines.extend(f"  {line}" for line in
                             last_change.detail.splitlines())
            for event in self._events.values():
                if (event.kind == "regression"
                        and event.fingerprint == fingerprint):
                    lines.append(
                        f"regression: p95 {event.before_p95_s:.3f}s -> "
                        f"{event.after_p95_s:.3f}s "
                        f"({event.factor:.2f}x, seen x{event.count})")
            return lines

    def ui_snapshot(self) -> dict:
        """The ``/ui`` dashboard section."""
        with self._lock:
            top = sorted(self._fps.values(),
                         key=lambda s: (-s.executions, s.fingerprint))
            return {
                "fingerprints": len(self._fps),
                "plan_changes": self.plan_changes,
                "regressions": self.regressions,
                "top": [{
                    "fingerprint": s.fingerprint,
                    "statement": s.statement[:120],
                    "executions": s.executions,
                    "plans": len(s.plans),
                    "p95_s": _percentile(s.all_samples(), 95),
                } for s in top[:10]],
                "events": [{
                    "kind": e.kind, "fingerprint": e.fingerprint,
                    "factor": e.factor, "count": e.count,
                    "old_plan": e.old_plan_hash,
                    "new_plan": e.new_plan_hash,
                } for e in list(self._events.values())[-10:]],
            }

    # -- gauges ---------------------------------------------------------- #
    def fingerprints_tracked(self) -> int:
        with self._lock:
            return len(self._fps)

    def plans_tracked(self) -> int:
        with self._lock:
            return sum(len(s.plans) for s in self._fps.values())

    def events_retained(self) -> int:
        with self._lock:
            return len(self._events)

    def __len__(self) -> int:
        return self.fingerprints_tracked()
