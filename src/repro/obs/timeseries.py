"""Cluster-state timeseries: fixed-capacity ring buffers per series.

End-of-query counters answer "how much, total"; operators need "how
much, *when*" — cache churn during a compaction storm, executor
saturation while the BI pool backs up, fault bursts.  Each series is a
bounded ``deque`` of :class:`Sample` keyed ``(name, labels)``, exactly
like registry series, so the same addressing works in both worlds.

Two clocks ride on every sample:

* ``ts_s`` — the warehouse **virtual** clock (the transaction manager's
  ``advance_clock`` value at sampling time).  Periodic sampling is
  driven by this clock: the monitor samples whenever it has advanced
  ``interval_s`` past the previous sample, so a benchmark replay
  produces the same timeline every run.
* ``wall_s`` — wall-clock seconds from the scrape-clock shim
  (:mod:`repro.obs.clock`), stamped so external scrapers (Prometheus)
  can line samples up with their own scrape times.

``rate(name, over_s, now_s)`` computes the increase of a sampled
counter over a trailing virtual-time window — the primitive behind
alert-rule triggers (``WHEN rate(faults.injected) > N OVER 60s``).
"""

from __future__ import annotations

import threading

from ..common import sync
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One observation of one series."""

    ts_s: float          # virtual warehouse clock
    wall_s: float        # wall clock (scrape shim)
    value: float
    source: str          # "interval" | "scrape"


class TimeseriesStore:
    """Bounded per-series sample rings, thread-safe."""

    def __init__(self, capacity: int = 512):
        if capacity < 2:
            raise ValueError("timeseries capacity must be >= 2")
        self.capacity = capacity
        self._lock = sync.new_lock('TimeseriesStore._lock')
        self._series: dict[tuple[str, LabelKey], deque] = {}

    # -- writes --------------------------------------------------------- #
    def append(self, name: str, value: float, ts_s: float,
               wall_s: float, source: str = "interval",
               **labels) -> None:
        key = (name, _label_key(labels))
        sample = Sample(ts_s, wall_s, float(value), source)
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = deque(maxlen=self.capacity)
                self._series[key] = ring
            ring.append(sample)

    # -- reads ---------------------------------------------------------- #
    def series(self, name: str, **labels) -> list[Sample]:
        key = (name, _label_key(labels))
        with self._lock:
            ring = self._series.get(key)
            return list(ring) if ring is not None else []

    def latest(self, name: str, **labels) -> Optional[Sample]:
        key = (name, _label_key(labels))
        with self._lock:
            ring = self._series.get(key)
            return ring[-1] if ring else None

    def names(self) -> list[str]:
        with self._lock:
            return sorted({name for name, _ in self._series})

    def __len__(self) -> int:
        with self._lock:
            return sum(len(ring) for ring in self._series.values())

    def rate(self, name: str, over_s: float, now_s: float,
             **labels) -> Optional[float]:
        """Per-second increase of a series over a trailing window.

        Sums across every label series of ``name`` matching the filter
        (so ``rate(faults.injected)`` covers all sites), using the
        oldest sample inside ``[now_s - over_s, now_s]`` as the
        baseline.  ``None`` when no series has two in-window samples —
        callers treat that as "no signal yet", the same contract as
        ``MetricsRegistry.value``.
        """
        if over_s <= 0:
            return None
        wanted = set(_label_key(labels))
        window_start = now_s - over_s
        increase = 0.0
        seen = False
        with self._lock:
            rings = [ring for (n, key), ring in self._series.items()
                     if n == name and wanted <= set(key)]
            snapshots = [list(ring) for ring in rings]
        for samples in snapshots:
            window = [s for s in samples if s.ts_s >= window_start]
            if len(window) < 2:
                continue
            seen = True
            # counters only go up; clamp so a reset never goes negative
            increase += max(0.0, window[-1].value - window[0].value)
        if not seen:
            return None
        return increase / over_s

    # -- export (sys.timeseries) ---------------------------------------- #
    def rows(self) -> Iterator[tuple]:
        """``(ts_s, wall_s, name, labels, value, source)`` per sample."""
        with self._lock:
            items = [(name, key, list(ring))
                     for (name, key), ring in self._series.items()]
        for name, key, samples in sorted(items):
            labels = ",".join(f"{k}={v}" for k, v in key)
            for s in samples:
                yield (s.ts_s, s.wall_s, name, labels, s.value, s.source)
