"""The per-server observability facade.

``HiveServer2`` owns one :class:`Observability`; it wires the metrics
registry, tracer and query log to the rest of the warehouse:

* the pre-existing stats fragments (``LlapCache.stats``,
  ``QueryResultsCache.stats``) are *absorbed* as callback gauges — the
  fragments keep their types and call sites, the registry mirrors them,
* each ``Session.execute`` opens a :class:`~repro.obs.tracing.QueryTrace`
  and lands a :class:`~repro.obs.query_log.QueryLogEntry` here,
* the ``sys`` virtual catalog is served from this facade's references,
* :meth:`snapshot` / :meth:`to_json` export everything for the bench
  harness (``BENCH_obs.json``).
"""

from __future__ import annotations

import itertools
import json
import threading

from ..common import sync
from collections import deque
from typing import Optional

from ..llap.workload import WmEventLog
from .audit import AuditLog, AuditOverflow
from .cluster import ClusterMonitor
from .hooks import HookRegistry
from .lineage import LineageGraph
from .live import LiveQueryRegistry
from .query_log import QueryLog, QueryLogEntry, QueryLogOverflow
from .query_store import QueryStore
from .registry import MetricsRegistry
from .timeseries import TimeseriesStore
from .tracing import QueryTrace


class Observability:
    """Registry + tracer + query log + sys catalog for one server."""

    def __init__(self, log_capacity: int = 1000,
                 trace_capacity: int = 64,
                 overflow_path: Optional[str] = None,
                 timeseries_capacity: int = 512,
                 audit_capacity: int = 1000,
                 audit_overflow_path: Optional[str] = None,
                 lineage_capacity: int = 512,
                 lineage_enabled: bool = True,
                 hook_timeout_s: float = 1.0):
        # the server registry refuses undocumented metric names
        self.registry = MetricsRegistry(require_help=True)
        self.query_log = QueryLog(
            log_capacity, overflow=QueryLogOverflow(overflow_path))
        self.query_store = QueryStore()
        self.audit_log = AuditLog(
            audit_capacity, overflow=AuditOverflow(audit_overflow_path))
        self.lineage_graph = LineageGraph(
            capacity=lineage_capacity, enabled=lineage_enabled)
        self.hooks = HookRegistry(metrics=self.registry,
                                  timeout_s=hook_timeout_s)
        self.wm_events = WmEventLog()
        self.timeseries = TimeseriesStore(capacity=timeseries_capacity)
        self.live_queries = LiveQueryRegistry(
            registry=self.registry, wm_events=self.wm_events)
        self.cluster = ClusterMonitor(self.registry, self.timeseries,
                                      self.live_queries)
        self.traces: deque[QueryTrace] = deque(maxlen=trace_capacity)
        self._query_ids = itertools.count(1)
        self._lock = sync.new_lock('Observability._lock')
        # server components the sys tables read (bound by HiveServer2)
        self.hms = None
        self.workload_manager = None
        self.faults = None
        #: serving-layer sources for sys.sessions / sys.plan_cache
        #: (bound by HiveService / HiveServer2; anything with .rows())
        self.session_source = None
        self.plan_cache_source = None
        self._caches: list[tuple[str, object]] = []
        self.http_server = None
        from .systables import SysTableHandler
        self.sys_handler = SysTableHandler(self)
        self._sys_ready = False
        self._register_lint_gauges()
        self._register_qstore_gauges()
        self._register_audit_lineage_gauges()

    def _register_lint_gauges(self) -> None:
        """Lock-sanitizer visibility (``lint.*``).  Registered
        unconditionally: the callbacks read the live sanitizer lazily
        and report zeros when the process runs without one, so
        dashboards keep a stable series either way."""
        from ..lint import sanitizer

        def totals(key):
            active = sanitizer.current()
            return float(active.totals()[key]) if active else 0.0

        reg = self.registry
        reg.register_callback(
            "lint.sanitizer.enabled",
            lambda: 1.0 if sanitizer.current() else 0.0)
        reg.register_callback("lint.sanitizer.sites",
                              lambda: totals("sites"))
        reg.register_callback("lint.sanitizer.acquisitions",
                              lambda: totals("acquisitions"))
        reg.register_callback("lint.sanitizer.contended",
                              lambda: totals("contended"))
        reg.register_callback("lint.sanitizer.longest_hold_s",
                              lambda: totals("longest_hold_s"))
        reg.register_callback(
            "lint.findings",
            lambda: float(len(sanitizer.current().findings()))
            if sanitizer.current() else 0.0)

    def _register_qstore_gauges(self) -> None:
        """Query-store visibility (``qstore.*``)."""
        store = self.query_store
        reg = self.registry
        reg.register_callback("qstore.fingerprints",
                              lambda: float(store.fingerprints_tracked()))
        reg.register_callback("qstore.plans",
                              lambda: float(store.plans_tracked()))
        reg.register_callback("qstore.events",
                              lambda: float(store.events_retained()))
        reg.register_callback("qstore.recorded",
                              lambda: float(store.recorded))
        reg.register_callback("qstore.plan_changes",
                              lambda: float(store.plan_changes))
        reg.register_callback("qstore.regressions",
                              lambda: float(store.regressions))
        reg.register_callback("qstore.evictions",
                              lambda: float(store.evictions))

    def _register_audit_lineage_gauges(self) -> None:
        """Audit/lineage visibility (``audit.*`` / ``lineage.*``).

        ``lineage.table_edges`` is registered lazily by
        ``bind_server`` — the metastore isn't known at construction."""
        audit, graph = self.audit_log, self.lineage_graph
        reg = self.registry
        reg.register_callback("audit.records",
                              lambda: float(audit.recorded))
        reg.register_callback("audit.ring", lambda: float(len(audit)))
        reg.register_callback("audit.spilled",
                              lambda: float(audit.overflow.spilled))
        reg.register_callback("lineage.fingerprints",
                              lambda: float(len(graph)))
        reg.register_callback("lineage.edges",
                              lambda: float(graph.edge_count()))
        reg.register_callback("lineage.recorded",
                              lambda: float(graph.recorded))
        reg.register_callback("lineage.evictions",
                              lambda: float(graph.evictions))

    # -- wiring --------------------------------------------------------- #
    def bind_server(self, hms, workload_manager) -> None:
        with self._lock:
            self.hms = hms
            self.workload_manager = workload_manager
        self.registry.register_callback(
            "lineage.table_edges",
            lambda: float(len(hms.provenance_rows())))

    def bind_faults(self, faults) -> None:
        """Attach the fault registry so ``sys.fault_log`` can serve it."""
        with self._lock:
            self.faults = faults

    def bind_sessions(self, source) -> None:
        """Attach the service session manager (``sys.sessions``)."""
        with self._lock:
            self.session_source = source

    def bind_plan_cache(self, source) -> None:
        """Attach the compiled plan cache (``sys.plan_cache``)."""
        with self._lock:
            self.plan_cache_source = source

    def bind_cache(self, component: str, stats, *,
                   extra: Optional[dict] = None) -> None:
        """Absorb an ad-hoc stats object as callback gauges.

        Every numeric public field of ``stats`` becomes a registry
        series ``cache.<field>{component=...}``; ``extra`` adds computed
        values (e.g. ``used_bytes``) the stats object doesn't carry.
        """
        with self._lock:
            self._caches.append((component, stats))
        for metric, value in vars(stats).items():
            if metric.startswith("_") \
                    or not isinstance(value, (int, float)):
                continue
            self.registry.register_callback(
                f"cache.{metric}",
                (lambda s=stats, m=metric: getattr(s, m)),
                help=f"live '{metric}' stat of a cache component",
                component=component)
        for metric, fn in (extra or {}).items():
            self.registry.register_callback(
                f"cache.{metric}", fn,
                help=f"live '{metric}' stat of a cache component",
                component=component)

    def bind_cluster(self, llap_cache, hms, workload_manager, *,
                     num_nodes: int, executors_per_node: int,
                     cache_capacity_bytes: int,
                     interval_s: float) -> None:
        """Wire the cluster monitor to the warehouse components."""
        self.cluster.bind(llap_cache, hms, workload_manager,
                          num_nodes=num_nodes,
                          executors_per_node=executors_per_node,
                          cache_capacity_bytes=cache_capacity_bytes,
                          interval_s=interval_s)

    def cache_components(self) -> list[tuple[str, object]]:
        with self._lock:
            return list(self._caches)

    # -- monitor -------------------------------------------------------- #
    def monitor_tick(self, now_s: float) -> None:
        """Virtual-clock tick from the driver; interval sampling."""
        self.cluster.maybe_sample(now_s)

    def scrape(self) -> None:
        """Scrape-time sample, taken on every ``/metrics`` GET."""
        self.cluster.scrape_sample()

    def start_http(self, host: str = "127.0.0.1",
                   port: int = 0):
        """Start the monitor endpoint; returns the running server."""
        with self._lock:
            if self.http_server is None:
                from .exposition import MonitorHttpServer
                self.http_server = MonitorHttpServer(
                    self, host=host, port=port).start()
            return self.http_server

    def stop_http(self) -> None:
        with self._lock:
            server = self.http_server
            self.http_server = None
        if server is not None:
            # join outside the lock: handler threads may still be in a
            # scrape that reads this facade
            server.stop()

    def ensure_sys_tables(self, hms=None) -> None:
        """Lazily create the ``sys`` database + virtual tables."""
        with self._lock:
            target = hms or self.hms
            if target is None:
                return
            if not self._sys_ready:
                self.sys_handler.ensure_tables(target)
                self._sys_ready = True

    # -- per-query recording -------------------------------------------- #
    def next_query_id(self) -> int:
        return next(self._query_ids)

    def start_trace(self, sql: str,
                    query_id: Optional[int] = None) -> QueryTrace:
        """Open a trace; ``query_id`` reuses an id the serving layer
        pre-allocated at submit time (the operation handle), so queued
        phase, kill flags and the final log entry share one id."""
        trace = QueryTrace(query_id or self.next_query_id(), sql)
        with self._lock:
            self.traces.append(trace)
        return trace

    def record_query(self, entry: QueryLogEntry, *,
                     plan_hash: str = "",
                     plan_explain: str = "") -> None:
        # QueryLog carries its own lock; appends are synchronized there
        self.query_log.append(entry)  # reprolint: disable=RL001
        self.query_store.record(
            entry, fingerprint=entry.fingerprint, plan_hash=plan_hash,
            plan_explain=plan_explain,
            now_s=entry.started_s + entry.total_s)
        labels = {"operation": entry.operation or "unknown",
                  "status": entry.status}
        self.registry.counter("queries.total", **labels).inc()
        if entry.status == "ok" and not entry.from_cache:
            self.registry.histogram(
                "query.latency_s",
                pool=entry.pool or "unmanaged").observe(entry.total_s)
        if entry.from_cache:
            self.registry.counter("queries.results_cache_hits").inc()

    # -- export --------------------------------------------------------- #
    def snapshot(self) -> dict:
        return {
            "metrics": self.registry.snapshot(),
            "queries": {
                "logged": len(self.query_log),
                "spilled": self.query_log.overflow.spilled,
                "last_query_id": (self.query_log.last().query_id
                                  if len(self.query_log) else 0),
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True,
                          default=str)

    def to_chrome_trace(self, indent: Optional[int] = None) -> str:
        """Export every retained query trace as Chrome trace-event JSON.

        Load the result in ``chrome://tracing`` / Perfetto: one track
        (tid) per query, complete events (``ph="X"``) per span, wall
        durations in microseconds; the cost model's virtual seconds ride
        along in each event's ``args``.  Traces are laid out on a common
        timeline using their real start offsets, so concurrent sessions
        interleave the way they actually ran.
        """
        with self._lock:
            traces = list(self.traces)
        events: list[dict] = []
        if not traces:
            return json.dumps({"traceEvents": [],
                               "displayTimeUnit": "ms"}, indent=indent)
        base = min(trace._started for trace in traces)
        for trace in traces:
            tid = trace.query_id
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": f"query {tid}: {trace.sql[:80]}"}})
            offset_us = (trace._started - base) * 1e6
            self._span_events(trace.root, offset_us, tid, events)
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms"}, indent=indent)

    @staticmethod
    def _span_events(span, offset_us: float, tid: int,
                     events: list) -> None:
        args = {"virtual_ms": round(span.virtual_s * 1000.0, 3)}
        args.update({k: str(v) for k, v in sorted(span.attrs.items())})
        events.append({
            "name": span.name, "ph": "X", "cat": "query",
            "pid": 1, "tid": tid,
            "ts": round(offset_us + span.start_s * 1e6, 3),
            "dur": round(span.wall_s * 1e6, 3),
            "args": args})
        for child in span.children:
            Observability._span_events(child, offset_us, tid, events)
