"""Execution hooks: Hive's ecosystem integration point, reproduced.

Production Hive fires pre/post-execution hooks around every statement;
Apache Atlas consumes them for lineage and Apache Ranger for audit
(Camacho-Rodriguez et al., SIGMOD 2019, §6).  This module provides the
same shape: a :class:`HookRegistry` holding named hooks fired at three
phases — ``pre_exec`` (after parse/fingerprint, before execution),
``post_exec`` (statement succeeded) and ``on_failure`` (statement
errored, was killed, or was denied) — from the single
``Session.execute`` choke point, each receiving a :class:`HookContext`
with the resolved inputs/outputs of the statement.

Isolation contract: a hook can never change a statement's result or
status.  Exceptions are caught, logged and counted (``hooks.errors``);
a hook whose wall-clock runtime exceeds the ``hive.hook.timeout.s``
budget is quarantined (skipped for subsequent statements, counted in
``hooks.timeouts``).  Hooks run inline on the executing thread — the
first over-budget run still blocks for its duration, a documented blind
spot of the inline model (see DESIGN.md).

The built-in lineage / audit / provenance hooks are ordinary
registrations made by :func:`register_builtin_hooks`; user hooks go
through ``HiveServer2.register_hook`` (reprolint RL013 flags hook
registrations anywhere else).
"""

from __future__ import annotations

import logging
import time

from ..common import sync
from dataclasses import dataclass, field
from typing import Callable, Optional

logger = logging.getLogger("repro.obs.hooks")

#: hook phases, in firing order
PRE_EXEC = "pre_exec"
POST_EXEC = "post_exec"
ON_FAILURE = "on_failure"
PHASES = (PRE_EXEC, POST_EXEC, ON_FAILURE)


@dataclass
class HookContext:
    """Everything a hook may observe about one statement.

    Built by ``Session.execute``; enriched during compilation (optimized
    plan, resolved inputs) and execution (rows, latency).  Mutating it
    from a hook affects later hooks in the same statement but never the
    statement itself.
    """

    query_id: int
    sql: str = ""
    fingerprint: str = ""
    tenant: str = "anonymous"
    session: str = ""
    database: str = "default"
    application: Optional[str] = None
    operation: str = ""
    status: str = "ok"                 # ok | error | killed | denied
    error: str = ""
    #: the OptimizedPlan of the (last) SELECT compiled for this
    #: statement — None for pure DDL
    optimized: object = None
    input_tables: set = field(default_factory=set)
    output_tables: set = field(default_factory=set)
    #: table -> set of column names actually read (post column pruning)
    input_columns: dict = field(default_factory=dict)
    rows_produced: int = 0
    rows_affected: int = 0
    admission_wait_s: float = 0.0
    total_s: float = 0.0               # virtual seconds, end to end
    started_s: float = 0.0             # session virtual clock at start
    wall_ms: float = 0.0

    def add_input(self, table: str, columns=()) -> None:
        self.input_tables.add(table)
        self.input_columns.setdefault(table, set()).update(columns)

    def add_output(self, table: str) -> None:
        self.output_tables.add(table)

    def inputs(self) -> list[str]:
        return sorted(self.input_tables)

    def outputs(self) -> list[str]:
        return sorted(self.output_tables)

    def column_refs(self) -> list[str]:
        """Sorted ``table.column`` strings over every input column."""
        return sorted(f"{table}.{column}"
                      for table, columns in self.input_columns.items()
                      for column in columns)


@dataclass
class HookEntry:
    name: str
    fn: Callable
    phases: frozenset
    builtin: bool = False
    #: quarantined after a timeout — skipped until re-registered
    disabled: bool = False
    calls: int = 0
    failures: int = 0


class HookRegistry:
    """Named hooks fired per phase, with error/timeout isolation."""

    def __init__(self, metrics=None, timeout_s: float = 1.0):
        self._lock = sync.new_lock('HookRegistry._lock')
        self._hooks: list[HookEntry] = []
        self.metrics = metrics
        self.timeout_s = float(timeout_s)

    def register(self, name: str, fn: Callable, phases=PHASES,
                 builtin: bool = False) -> HookEntry:
        """Add (or replace, by name) a hook.

        ``fn`` is called as ``fn(phase, ctx)``.  Re-registering a
        quarantined name re-enables it.
        """
        entry = HookEntry(name=name, fn=fn,
                          phases=frozenset(phases), builtin=builtin)
        with self._lock:
            self._hooks = [h for h in self._hooks if h.name != name]
            self._hooks.append(entry)
        return entry

    def unregister(self, name: str) -> bool:
        with self._lock:
            before = len(self._hooks)
            self._hooks = [h for h in self._hooks if h.name != name]
            return len(self._hooks) != before

    def hooks(self) -> list[HookEntry]:
        with self._lock:
            return list(self._hooks)

    def set_timeout(self, timeout_s: float) -> None:
        with self._lock:
            self.timeout_s = float(timeout_s)

    def fire(self, phase: str, ctx: HookContext) -> None:
        """Run every enabled hook registered for ``phase``.

        Never raises: hook exceptions and timeouts are absorbed here so
        the statement's outcome is exactly what it would have been with
        no hooks installed.
        """
        with self._lock:
            snapshot = list(self._hooks)
            budget = self.timeout_s
        for entry in snapshot:
            if entry.disabled or phase not in entry.phases:
                continue
            started = time.perf_counter()
            try:
                entry.fn(phase, ctx)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                logger.warning("hook %s failed in %s: %s",
                               entry.name, phase, exc)
                self._count("hooks.errors", entry.name, phase)
                with self._lock:
                    entry.failures += 1
            elapsed = time.perf_counter() - started
            with self._lock:
                entry.calls += 1
                if elapsed > budget:
                    entry.disabled = True
            self._count("hooks.fired", entry.name, phase)
            if elapsed > budget:
                logger.warning(
                    "hook %s exceeded %.3fs budget (%.3fs); quarantined",
                    entry.name, budget, elapsed)
                self._count("hooks.timeouts", entry.name, phase)

    def _count(self, name: str, hook: str, phase: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, hook=hook, phase=phase).inc()


# --------------------------------------------------------------------------- #
# built-in hooks (Atlas/Ranger equivalents)

#: operation → provenance kind for table→table edges
_PROVENANCE_KINDS = {
    "create_table": "ctas",
    "insert": "insert",
    "multi_insert": "insert",
    "merge": "insert",
    "create_materialized_view": "mv",
    "rebuild": "mv",
}


def make_audit_hook(audit_log) -> Callable:
    """Ranger-style hook: one AuditRecord per finished statement."""
    from .audit import AuditRecord

    def audit_hook(phase: str, ctx: HookContext) -> None:
        record = AuditRecord(
            query_id=ctx.query_id, tenant=ctx.tenant,
            session=ctx.session, database=ctx.database,
            application=ctx.application, statement=ctx.sql,
            operation=ctx.operation, status=ctx.status, error=ctx.error,
            input_tables=ctx.inputs(), output_tables=ctx.outputs(),
            columns=ctx.column_refs(), rows_returned=ctx.rows_produced,
            rows_affected=ctx.rows_affected,
            admission_wait_s=ctx.admission_wait_s, total_s=ctx.total_s,
            at_s=ctx.started_s + ctx.total_s,
            fingerprint=ctx.fingerprint)
        audit_log.append(record)

    return audit_hook


def make_lineage_hook(graph) -> Callable:
    """Atlas-style hook: column-level edges into the lineage graph."""
    from .lineage import extract_lineage

    def lineage_hook(phase: str, ctx: HookContext) -> None:
        if not graph.enabled or ctx.optimized is None:
            return
        edges = extract_lineage(ctx.optimized.root)
        dst = ctx.outputs()
        graph.record(fingerprint=ctx.fingerprint, statement=ctx.sql,
                     query_id=ctx.query_id,
                     at_s=ctx.started_s + ctx.total_s, edges=edges,
                     dst_table=dst[0] if dst else "")

    return lineage_hook


def make_provenance_hook(hms) -> Callable:
    """Registers table→table provenance in the metastore for
    CTAS / INSERT / MV statements (survives rename, tombstoned on
    drop — see HiveMetastore.record_provenance)."""

    def provenance_hook(phase: str, ctx: HookContext) -> None:
        kind = _PROVENANCE_KINDS.get(ctx.operation)
        if kind is None or not ctx.output_tables:
            return
        at_s = ctx.started_s + ctx.total_s
        for dst in ctx.outputs():
            for src in ctx.inputs():
                if src != dst:
                    hms.record_provenance(dst, src, kind, at_s)

    return provenance_hook


def register_builtin_hooks(registry: HookRegistry, obs, hms) -> None:
    """Install the lineage / audit / provenance hooks on a server.

    These are ordinary registrations — the statement pipeline has no
    special-cased knowledge of them, so dropping ``unregister("audit")``
    genuinely turns auditing off.
    """
    registry.register("lineage", make_lineage_hook(obs.lineage_graph),
                      phases=(POST_EXEC,), builtin=True)
    registry.register("provenance", make_provenance_hook(hms),
                      phases=(POST_EXEC,), builtin=True)
    registry.register("audit", make_audit_hook(obs.audit_log),
                      phases=(POST_EXEC, ON_FAILURE), builtin=True)
