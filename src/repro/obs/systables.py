"""SQL-queryable system tables: the ``sys`` catalog.

Hive 3 ships a ``sys`` database whose tables expose server state to
plain SQL.  Here the tables are virtual: each is a handler-backed table
(``storage_handler="sys"``) whose rows are generated from live server
state at scan time — no metastore write path, no files, always current.
Because they ride the federated-scan path, the full SQL surface works on
them: ``SELECT status, COUNT(*) FROM sys.query_log GROUP BY status``.

Tables:

* ``sys.query_log``    — one row per executed statement (latency breakdown),
* ``sys.vertex_log``   — one row per DAG vertex per query (task
  distribution, skew factor, straggler flag); joins ``sys.query_log``
  on ``query_id``,
* ``sys.operator_log`` — one row per plan operator per vertex per query
  (rows in/out, batches, wall + attributed virtual time),
* ``sys.wm_events``    — workload-management trigger firings (MOVE/KILL),
* ``sys.cache_stats``  — LLAP cache + results cache counters,
* ``sys.compactions``  — the compaction queue history,
* ``sys.pools``        — active resource-plan pools,
* ``sys.metrics``      — every series in the metrics registry,
* ``sys.fault_log``    — every injected fault and recovery action
  (``repro.faults``): IO re-reads, task retries, speculation, node
  death, reaped transactions,
* ``sys.live_queries`` — statements in flight *right now* (phase,
  progress, ETA, kill flag); targets for ``KILL QUERY <id>``,
* ``sys.sessions``     — pooled serving-layer sessions (tenant,
  application, TTL state, statement counts),
* ``sys.plan_cache``   — compiled-plan cache entries (statement,
  tables, per-entry hit counts),
* ``sys.timeseries``   — the cluster-state sample rings (virtual +
  wall timestamps, interval and scrape sources),
* ``sys.cluster_nodes`` / ``sys.llap_daemons`` — per-daemon executor
  occupancy and cache heatmap (the paper's LLAP monitor view),
* ``sys.lint_findings`` — runtime lock-sanitizer findings (order
  inversions, waits holding foreign locks, long holds) when the
  process runs under ``HIVE_SANITIZE=1``; empty otherwise,
* ``sys.query_store`` / ``sys.query_store_plans`` /
  ``sys.query_store_events`` — fingerprint-level workload history,
  per-plan-hash stats and deduplicated plan-change/regression
  findings; join ``sys.query_log`` on ``fingerprint``,
* ``sys.audit_log``     — one row per statement with tenant
  attribution, the resolved tables/columns it touched and its outcome
  (incl. ``killed`` / ``denied``); join ``sys.query_store`` on
  ``fingerprint``,
* ``sys.lineage_edges`` — column-level dependency edges from the
  lineage graph (``dst_column = '*'`` marks JOIN-KEY/FILTER predicate
  edges),
* ``sys.lineage_tables`` — table→table provenance from CTAS/INSERT/MV
  statements, with each source table's current plan version — what a
  DDL on the source will invalidate downstream.
"""

from __future__ import annotations

from typing import Sequence

from ..common.rows import Column, Schema
from ..common.types import BIGINT, BOOLEAN, DOUBLE, STRING
from ..errors import ExecutionError
from ..federation.handler import StorageHandler
from ..metastore.catalog import TableDescriptor, TableKind

SYS_DATABASE = "sys"

QUERY_LOG_SCHEMA = Schema([
    Column("query_id", BIGINT), Column("statement", STRING),
    Column("db", STRING), Column("application", STRING),
    Column("operation", STRING), Column("status", STRING),
    Column("error", STRING), Column("pool", STRING),
    Column("from_cache", BOOLEAN), Column("reexecuted", BOOLEAN),
    Column("rows_produced", BIGINT), Column("rows_affected", BIGINT),
    Column("started_s", DOUBLE), Column("total_s", DOUBLE),
    Column("queue_s", DOUBLE), Column("compile_s", DOUBLE),
    Column("startup_s", DOUBLE), Column("io_s", DOUBLE),
    Column("cpu_s", DOUBLE), Column("shuffle_s", DOUBLE),
    Column("external_s", DOUBLE), Column("disk_bytes", BIGINT),
    Column("cache_bytes", BIGINT), Column("cache_hit_fraction", DOUBLE),
    Column("wall_ms", DOUBLE), Column("fingerprint", STRING)])

VERTEX_LOG_SCHEMA = Schema([
    Column("query_id", BIGINT), Column("vertex_id", BIGINT),
    Column("name", STRING), Column("tasks", BIGINT),
    Column("rows", BIGINT), Column("startup_s", DOUBLE),
    Column("io_s", DOUBLE), Column("cpu_s", DOUBLE),
    Column("shuffle_s", DOUBLE), Column("external_s", DOUBLE),
    Column("duration_s", DOUBLE), Column("start_s", DOUBLE),
    Column("finish_s", DOUBLE), Column("shuffle_bytes", BIGINT),
    Column("max_task_s", DOUBLE), Column("median_task_s", DOUBLE),
    Column("skew_factor", DOUBLE), Column("straggler", BOOLEAN),
    Column("attempts", BIGINT), Column("failed_attempts", BIGINT),
    Column("speculative_tasks", BIGINT), Column("retry_s", DOUBLE)])

OPERATOR_LOG_SCHEMA = Schema([
    Column("query_id", BIGINT), Column("vertex", STRING),
    Column("operator", STRING), Column("digest", STRING),
    Column("rows_in", BIGINT), Column("rows_out", BIGINT),
    Column("batches", BIGINT), Column("calls", BIGINT),
    Column("wall_ms", DOUBLE), Column("virtual_s", DOUBLE)])

WM_EVENTS_SCHEMA = Schema([
    Column("event_id", BIGINT), Column("query_id", BIGINT),
    Column("pool", STRING), Column("trigger_name", STRING),
    Column("metric", STRING), Column("value", DOUBLE),
    Column("threshold", DOUBLE), Column("action", STRING),
    Column("target_pool", STRING)])

CACHE_STATS_SCHEMA = Schema([
    Column("component", STRING), Column("metric", STRING),
    Column("value", DOUBLE)])

COMPACTIONS_SCHEMA = Schema([
    Column("request_id", BIGINT), Column("table_name", STRING),
    Column("partition", STRING), Column("type", STRING),
    Column("state", STRING), Column("merged_rows", BIGINT),
    Column("output_dir", STRING)])

POOLS_SCHEMA = Schema([
    Column("plan", STRING), Column("pool", STRING),
    Column("alloc_fraction", DOUBLE), Column("query_parallelism", BIGINT),
    Column("trigger_count", BIGINT), Column("is_default", BOOLEAN)])

METRICS_SCHEMA = Schema([
    Column("name", STRING), Column("labels", STRING),
    Column("kind", STRING), Column("help", STRING),
    Column("value", DOUBLE)])

LIVE_QUERIES_SCHEMA = Schema([
    Column("query_id", BIGINT), Column("statement", STRING),
    Column("db", STRING), Column("application", STRING),
    Column("phase", STRING), Column("pool", STRING),
    Column("started_s", DOUBLE), Column("elapsed_s", DOUBLE),
    Column("vertices_total", BIGINT), Column("vertices_done", BIGINT),
    Column("tasks_total", BIGINT), Column("tasks_done", BIGINT),
    Column("progress", DOUBLE), Column("eta_s", DOUBLE),
    Column("kill_requested", BOOLEAN)])

TIMESERIES_SCHEMA = Schema([
    Column("ts_s", DOUBLE), Column("wall_s", DOUBLE),
    Column("name", STRING), Column("labels", STRING),
    Column("value", DOUBLE), Column("source", STRING)])

CLUSTER_NODES_SCHEMA = Schema([
    Column("node", BIGINT), Column("state", STRING),
    Column("executors_total", BIGINT), Column("executors_busy", BIGINT),
    Column("queue_depth", BIGINT)])

LLAP_DAEMONS_SCHEMA = Schema([
    Column("node", BIGINT), Column("cache_bytes", BIGINT),
    Column("cache_chunks", BIGINT), Column("occupancy", DOUBLE)])

SESSIONS_SCHEMA = Schema([
    Column("session_id", STRING), Column("tenant", STRING),
    Column("application", STRING), Column("db", STRING),
    Column("state", STRING), Column("created_s", DOUBLE),
    Column("last_used_s", DOUBLE), Column("statements", BIGINT)])

PLAN_CACHE_SCHEMA = Schema([
    Column("db", STRING), Column("statement", STRING),
    Column("tables", STRING), Column("conf_digest", STRING),
    Column("hits", BIGINT), Column("last_used", BIGINT)])

FAULT_LOG_SCHEMA = Schema([
    Column("event_id", BIGINT), Column("query_id", BIGINT),
    Column("site", STRING), Column("target", STRING),
    Column("attempts", BIGINT), Column("delay_s", DOUBLE),
    Column("detail", STRING)])

QUERY_STORE_SCHEMA = Schema([
    Column("fingerprint", STRING), Column("statement", STRING),
    Column("plans", BIGINT), Column("executions", BIGINT),
    Column("errors", BIGINT), Column("retries", BIGINT),
    Column("results_cache_hits", BIGINT),
    Column("plan_cache_hits", BIGINT),
    Column("plan_cache_misses", BIGINT),
    Column("rows_produced", BIGINT), Column("queue_s", DOUBLE),
    Column("p50_s", DOUBLE), Column("p95_s", DOUBLE),
    Column("p99_s", DOUBLE), Column("baseline_p95_s", DOUBLE),
    Column("mean_wall_ms", DOUBLE), Column("last_plan_hash", STRING),
    Column("first_seen_s", DOUBLE), Column("last_seen_s", DOUBLE)])

QUERY_STORE_PLANS_SCHEMA = Schema([
    Column("fingerprint", STRING), Column("plan_hash", STRING),
    Column("executions", BIGINT), Column("errors", BIGINT),
    Column("retries", BIGINT), Column("rows_produced", BIGINT),
    Column("disk_bytes", BIGINT), Column("cache_bytes", BIGINT),
    Column("p50_s", DOUBLE), Column("p95_s", DOUBLE),
    Column("p99_s", DOUBLE), Column("mean_s", DOUBLE),
    Column("mean_wall_ms", DOUBLE), Column("first_seen_s", DOUBLE),
    Column("last_seen_s", DOUBLE)])

QUERY_STORE_EVENTS_SCHEMA = Schema([
    Column("event_id", BIGINT), Column("kind", STRING),
    Column("fingerprint", STRING), Column("statement", STRING),
    Column("old_plan_hash", STRING), Column("new_plan_hash", STRING),
    Column("before_p95_s", DOUBLE), Column("after_p95_s", DOUBLE),
    Column("factor", DOUBLE), Column("detail", STRING),
    Column("at_s", DOUBLE), Column("count", BIGINT)])

AUDIT_LOG_SCHEMA = Schema([
    Column("query_id", BIGINT), Column("tenant", STRING),
    Column("session", STRING), Column("db", STRING),
    Column("application", STRING), Column("statement", STRING),
    Column("operation", STRING), Column("status", STRING),
    Column("error", STRING), Column("input_tables", STRING),
    Column("output_tables", STRING), Column("columns", STRING),
    Column("rows_returned", BIGINT), Column("rows_affected", BIGINT),
    Column("admission_wait_s", DOUBLE), Column("total_s", DOUBLE),
    Column("at_s", DOUBLE), Column("fingerprint", STRING)])

LINEAGE_EDGES_SCHEMA = Schema([
    Column("fingerprint", STRING), Column("dst_table", STRING),
    Column("dst_column", STRING), Column("src_table", STRING),
    Column("src_column", STRING), Column("kind", STRING),
    Column("query_id", BIGINT), Column("at_s", DOUBLE),
    Column("executions", BIGINT)])

LINEAGE_TABLES_SCHEMA = Schema([
    Column("dst_table", STRING), Column("src_table", STRING),
    Column("kind", STRING), Column("statements", BIGINT),
    Column("first_at_s", DOUBLE), Column("last_at_s", DOUBLE),
    Column("tombstoned", BOOLEAN),
    Column("src_plan_version", BIGINT)])

LINT_FINDINGS_SCHEMA = Schema([
    Column("finding_id", BIGINT), Column("source", STRING),
    Column("kind", STRING), Column("locks", STRING),
    Column("thread", STRING), Column("site", STRING),
    Column("detail", STRING), Column("wall_s", DOUBLE),
    Column("count", BIGINT)])

SYS_TABLES: dict[str, Schema] = {
    "query_log": QUERY_LOG_SCHEMA,
    "vertex_log": VERTEX_LOG_SCHEMA,
    "operator_log": OPERATOR_LOG_SCHEMA,
    "wm_events": WM_EVENTS_SCHEMA,
    "cache_stats": CACHE_STATS_SCHEMA,
    "compactions": COMPACTIONS_SCHEMA,
    "pools": POOLS_SCHEMA,
    "metrics": METRICS_SCHEMA,
    "fault_log": FAULT_LOG_SCHEMA,
    "live_queries": LIVE_QUERIES_SCHEMA,
    "sessions": SESSIONS_SCHEMA,
    "plan_cache": PLAN_CACHE_SCHEMA,
    "timeseries": TIMESERIES_SCHEMA,
    "cluster_nodes": CLUSTER_NODES_SCHEMA,
    "llap_daemons": LLAP_DAEMONS_SCHEMA,
    "lint_findings": LINT_FINDINGS_SCHEMA,
    "query_store": QUERY_STORE_SCHEMA,
    "query_store_plans": QUERY_STORE_PLANS_SCHEMA,
    "query_store_events": QUERY_STORE_EVENTS_SCHEMA,
    "audit_log": AUDIT_LOG_SCHEMA,
    "lineage_edges": LINEAGE_EDGES_SCHEMA,
    "lineage_tables": LINEAGE_TABLES_SCHEMA,
}


class SysTableHandler(StorageHandler):
    """Serves the virtual ``sys`` tables from live server state."""

    name = "sys"

    def __init__(self, obs):
        self.obs = obs        # the owning Observability facade

    # -- catalog -------------------------------------------------------- #
    def ensure_tables(self, hms) -> None:
        """Create the ``sys`` database and table descriptors lazily."""
        hms.create_database(SYS_DATABASE, if_not_exists=True)
        db = hms.get_database(SYS_DATABASE)
        for table_name, schema in SYS_TABLES.items():
            if table_name not in db.tables:
                hms.create_table(SYS_DATABASE, table_name, schema,
                                 kind=TableKind.EXTERNAL,
                                 is_acid=False, storage_handler=self.name)

    # -- input format --------------------------------------------------- #
    def scan_table(self, table: TableDescriptor,
                   columns: Sequence[str]) -> tuple[list[tuple], float]:
        builder = getattr(self, f"_rows_{table.name}", None)
        if builder is None:
            raise ExecutionError(f"unknown sys table {table.name!r}")
        # handlers return rows projected to the requested columns
        indexes = [table.schema.index_of(c) for c in columns]
        rows = [tuple(row[i] for i in indexes) for row in builder()]
        return rows, 0.0

    def insert_rows(self, table: TableDescriptor,
                    rows: Sequence[tuple]) -> None:
        raise ExecutionError("sys tables are read-only")

    def execute_pushed(self, table: TableDescriptor,
                       query: object) -> tuple[list[tuple], float]:
        raise ExecutionError("sys tables do not support pushdown")

    # -- row builders --------------------------------------------------- #
    def _rows_query_log(self) -> list[tuple]:
        # all_entries: ring + spilled overflow, so long workloads stay
        # fully queryable (retention, not truncation)
        return [e.as_row() for e in self.obs.query_log.all_entries()]

    def _rows_vertex_log(self) -> list[tuple]:
        return [tuple(row) for e in self.obs.query_log.all_entries()
                for row in e.vertices]

    def _rows_operator_log(self) -> list[tuple]:
        return [tuple(row) for e in self.obs.query_log.all_entries()
                for row in e.operators]

    def _rows_wm_events(self) -> list[tuple]:
        return [event.as_row() for event in self.obs.wm_events.entries()]

    def _rows_cache_stats(self) -> list[tuple]:
        rows: list[tuple] = []
        for component, stats in self.obs.cache_components():
            for metric, value in sorted(vars(stats).items()):
                if isinstance(value, (int, float)) \
                        and not metric.startswith("_"):
                    rows.append((component, metric, float(value)))
        return rows

    def _rows_compactions(self) -> list[tuple]:
        hms = self.obs.hms
        if hms is None:
            return []
        rows = []
        for request in hms.compaction_queue.history():
            partition = ("" if request.partition is None
                         else "/".join(str(v) for v in request.partition))
            rows.append((request.request_id, request.table, partition,
                         request.compaction_type.value,
                         request.state.value,
                         getattr(request, "merged_rows", 0),
                         getattr(request, "output_dir", "")))
        return rows

    def _rows_pools(self) -> list[tuple]:
        wm = self.obs.workload_manager
        if wm is None or wm.plan is None:
            return []
        plan = wm.plan
        return [(plan.name, pool.name, pool.alloc_fraction,
                 pool.query_parallelism, len(pool.triggers),
                 pool.name == plan.default_pool)
                for pool in plan.pools.values()]

    def _rows_fault_log(self) -> list[tuple]:
        faults = self.obs.faults
        if faults is None:
            return []
        return [event.as_row() for event in faults.events()]

    def _rows_metrics(self) -> list[tuple]:
        rows = []
        for name, series in sorted(self.obs.registry.snapshot().items()):
            for entry in series:
                labels = ",".join(f"{k}={v}" for k, v in
                                  sorted(entry["labels"].items()))
                value = entry.get("value")
                if value is None:           # histogram: expose the count
                    value = entry.get("count", 0)
                rows.append((name, labels, entry["kind"],
                             entry.get("help", ""), float(value)))
        return rows

    def _rows_live_queries(self) -> list[tuple]:
        return self.obs.live_queries.rows()

    def _rows_sessions(self) -> list[tuple]:
        source = self.obs.session_source
        return [] if source is None else source.rows()

    def _rows_plan_cache(self) -> list[tuple]:
        source = self.obs.plan_cache_source
        return [] if source is None else source.rows()

    def _rows_timeseries(self) -> list[tuple]:
        # rows() already renders labels as "k=v,k=v"
        return list(self.obs.timeseries.rows())

    def _rows_cluster_nodes(self) -> list[tuple]:
        return self.obs.cluster.cluster_node_rows()

    def _rows_llap_daemons(self) -> list[tuple]:
        return self.obs.cluster.llap_daemon_rows()

    def _rows_query_store(self) -> list[tuple]:
        return self.obs.query_store.rows_store()

    def _rows_query_store_plans(self) -> list[tuple]:
        return self.obs.query_store.rows_plans()

    def _rows_query_store_events(self) -> list[tuple]:
        return self.obs.query_store.rows_events()

    def _rows_audit_log(self) -> list[tuple]:
        # ring + spilled overflow, like sys.query_log
        return [r.as_row() for r in self.obs.audit_log.all_entries()]

    def _rows_lineage_edges(self) -> list[tuple]:
        rows: list[tuple] = []
        for record in self.obs.lineage_graph.records():
            for edge in record.edges:
                rows.append((record.fingerprint, record.dst_table,
                             edge.dst_column, edge.src_table,
                             edge.src_column, edge.kind,
                             record.query_id, record.at_s,
                             record.executions))
        return rows

    def _rows_lineage_tables(self) -> list[tuple]:
        hms = self.obs.hms
        if hms is None:
            return []
        records = hms.provenance_rows()
        versions = hms.plan_versions([r.src_table for r in records])
        return [(r.dst_table, r.src_table, r.kind, r.statements,
                 r.first_at_s, r.last_at_s, r.tombstoned,
                 versions.get(r.src_table, 0)) for r in records]

    def _rows_lint_findings(self) -> list[tuple]:
        """Runtime lock-sanitizer findings; empty when the process
        does not run under ``HIVE_SANITIZE=1``."""
        from ..lint import sanitizer
        active = sanitizer.current()
        if active is None:
            return []
        return [finding.as_row() for finding in active.findings()]
