"""Markdown + gating over ``BENCH_obs.json`` exports.

Two consumers share this module:

* ``tools/bench_report`` regenerates the marker-delimited section of
  ``EXPERIMENTS.md`` from the latest benchmark export, so every paper
  table cites the per-query virtual-time breakdown of the same run that
  produced it (no hand-copied numbers drifting from the data).
* ``tools/perf_gate`` compares a fresh export against the committed
  baseline (``benchmarks/BENCH_baseline.json``) and fails CI when any
  scenario's total virtual time regresses beyond the tolerance.

Virtual time is deterministic (no wall-clock noise), so the gate can be
tight without flaking; the default tolerance of 25% exists to absorb
intentional cost-model recalibrations, not jitter.
"""

from __future__ import annotations

import json
from typing import Optional

BEGIN_MARKER = "<!-- BENCH_OBS:BEGIN -->"
END_MARKER = "<!-- BENCH_OBS:END -->"

#: perf-gate failure threshold: fractional total_s growth per scenario
DEFAULT_TOLERANCE = 0.25

#: wall-clock gate threshold — deliberately generous: wall time sees
#: CI-machine noise (shared runners, GC, thermal jitter), so only a
#: multiple-of-baseline blowup should fail the gate
DEFAULT_WALL_TOLERANCE = 3.0


# --------------------------------------------------------------------------- #
# EXPERIMENTS.md generation

def render_bench_report(payload: dict) -> str:
    """The generated EXPERIMENTS.md section for one benchmark export."""
    lines = [
        BEGIN_MARKER,
        "## Per-query time breakdowns (generated from BENCH_obs.json)",
        "",
        "Regenerate with `tools/bench_report` after running "
        "`pytest benchmarks/ -q`. Times are virtual seconds; "
        "`cache%` is the LLAP cache hit fraction of bytes read.",
        "",
        "### Scenario totals",
        "",
        "| scenario | queries | failed | total virtual s |",
        "|---|---|---|---|",
    ]
    summary = payload.get("summary", {})
    for scenario in sorted(summary):
        s = summary[scenario]
        lines.append(f"| {scenario} | {s.get('queries', 0)} "
                     f"| {s.get('failed', 0)} "
                     f"| {s.get('total_s', 0.0):.3f} |")
    records = payload.get("records", [])
    scenarios = sorted({r["scenario"] for r in records})
    for scenario in scenarios:
        lines += [
            "",
            f"### {scenario}",
            "",
            "| query | total_s | startup_s | io_s | cpu_s | shuffle_s "
            "| rows | cache% |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for record in records:
            if record["scenario"] != scenario:
                continue
            if record.get("seconds") is None:
                lines.append(f"| {record['query']} | FAIL "
                             f"({record.get('error', '?')}) "
                             "| | | | | | |")
                continue
            b = record.get("breakdown", {})
            cached = " (cached)" if record.get("from_cache") else ""
            lines.append(
                "| {query}{cached} | {total:.3f} | {startup:.3f} "
                "| {io:.3f} | {cpu:.3f} | {shuffle:.3f} | {rows} "
                "| {hit:.0f}% |".format(
                    query=record["query"], cached=cached,
                    total=record["seconds"],
                    startup=b.get("startup_s", 0.0),
                    io=b.get("io_s", 0.0), cpu=b.get("cpu_s", 0.0),
                    shuffle=b.get("shuffle_s", 0.0),
                    rows=record.get("rows", 0),
                    hit=b.get("cache_hit_fraction", 0.0) * 100.0))
    lines.append(END_MARKER)
    return "\n".join(lines)


def update_experiments(text: str, payload: dict) -> str:
    """Replace (or append) the generated section of EXPERIMENTS.md."""
    section = render_bench_report(payload)
    begin = text.find(BEGIN_MARKER)
    end = text.find(END_MARKER)
    if begin != -1 and end != -1:
        return text[:begin] + section + text[end + len(END_MARKER):]
    joiner = "" if text.endswith("\n\n") else \
        ("\n" if text.endswith("\n") else "\n\n")
    return text + joiner + section + "\n"


# --------------------------------------------------------------------------- #
# CI perf gate

def perf_gate(baseline: dict, current: dict,
              tolerance: float = DEFAULT_TOLERANCE,
              wall_tolerance: float = DEFAULT_WALL_TOLERANCE
              ) -> list[str]:
    """Compare per-scenario totals against the baseline.

    Returns the list of violations (empty = gate passes).  A scenario
    present in the baseline must exist in the current run; new
    scenarios in the current run are fine (they become baseline on the
    next refresh).  Virtual time gates at ``tolerance``; wall time
    gates at the much looser ``wall_tolerance`` and only when the
    baseline carries wall data (older baselines skip the wall gate
    rather than failing on a missing field).
    """
    problems: list[str] = []
    base_summary = baseline.get("summary", {})
    cur_summary = current.get("summary", {})
    for scenario in sorted(base_summary):
        base = base_summary[scenario]
        cur = cur_summary.get(scenario)
        if cur is None:
            problems.append(f"{scenario}: missing from current run "
                            "(baseline scenario disappeared)")
            continue
        if cur.get("failed", 0) > base.get("failed", 0):
            problems.append(
                f"{scenario}: {cur['failed']} failed queries "
                f"(baseline {base.get('failed', 0)})")
        base_total = float(base.get("total_s", 0.0))
        cur_total = float(cur.get("total_s", 0.0))
        if base_total > 0.0:
            growth = (cur_total - base_total) / base_total
            if growth > tolerance:
                problems.append(
                    f"{scenario}: total virtual time {cur_total:.3f}s "
                    f"is {growth * 100:.1f}% over baseline "
                    f"{base_total:.3f}s "
                    f"(tolerance {tolerance * 100:.0f}%)")
        base_wall = float(base.get("wall_s", 0.0))
        cur_wall = float(cur.get("wall_s", 0.0))
        if base_wall > 0.0 and cur_wall > 0.0:
            wall_growth = (cur_wall - base_wall) / base_wall
            if wall_growth > wall_tolerance:
                problems.append(
                    f"{scenario}: wall time {cur_wall:.3f}s is "
                    f"{wall_growth * 100:.0f}% over baseline "
                    f"{base_wall:.3f}s (wall tolerance "
                    f"{wall_tolerance * 100:.0f}%)")
    return problems


def load_export(path: str) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as source:
            return json.load(source)
    except FileNotFoundError:
        return None
