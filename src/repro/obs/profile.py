"""Per-operator execution profile backing ``EXPLAIN ANALYZE``.

The interpreter (:mod:`repro.exec.operators`) records every operator
invocation here when a profile is attached to the
``ExecutionContext``; the Tez runner adds the scan-level IO metrics and
the final :class:`~repro.runtime.tez.QueryMetrics`.  The profile is
addressed by plan-node digest — the same key the runtime-statistics
feedback loop uses — so the annotated plan can be rendered by walking
the optimized tree.

Sub-query granularity (the vertex/operator profiler): each recorded
invocation also captures rows *in*, input batch counts and the operator
kind; the runner folds these into per-vertex
:class:`OperatorProfile` rows with a virtual-time attribution, which is
what ``sys.operator_log`` and the ``EXPLAIN ANALYZE`` operator tree
serve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class OperatorProfile:
    """One operator's runtime inside one vertex of one query.

    ``virtual_s`` is the share of the vertex's modeled time attributed
    to this operator (CPU proportional to rows processed; scans also
    carry the vertex's IO); ``wall_s`` is real interpreter time.
    """

    operator: str                 # e.g. "TableScan", "Join", "Aggregate"
    digest: str
    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    calls: int = 0
    wall_s: float = 0.0
    virtual_s: float = 0.0

    def as_row(self, query_id: int, vertex: str) -> tuple:
        """Row shape of ``sys.operator_log`` (see obs.systables)."""
        return (query_id, vertex, self.operator, self.digest,
                self.rows_in, self.rows_out, self.batches, self.calls,
                self.wall_s * 1000.0, self.virtual_s)


@dataclass
class ExecutionProfile:
    """What actually happened, keyed by plan-node digest."""

    #: digest -> output rows of the last execution
    operator_rows: dict = field(default_factory=dict)
    #: digest -> number of executions (memoized re-uses excluded)
    operator_calls: dict = field(default_factory=dict)
    #: digest -> cumulative wall seconds (inclusive of children)
    operator_wall_s: dict = field(default_factory=dict)
    #: digest -> rows flowing *into* the operator (sum over inputs)
    operator_rows_in: dict = field(default_factory=dict)
    #: digest -> input batches consumed across all executions
    operator_batches: dict = field(default_factory=dict)
    #: digest -> operator kind (plan-node class name)
    operator_kinds: dict = field(default_factory=dict)
    #: digest -> ScanMetrics for table scans
    scan_metrics: dict = field(default_factory=dict)
    #: the run's QueryMetrics (set by the runner)
    metrics: Optional[object] = None

    def record(self, digest: str, rows: int, wall_s: float,
               rows_in: int = 0, batches: int = 1,
               operator: str = "") -> None:
        self.operator_rows[digest] = rows
        self.operator_calls[digest] = \
            self.operator_calls.get(digest, 0) + 1
        self.operator_wall_s[digest] = \
            self.operator_wall_s.get(digest, 0.0) + wall_s
        self.operator_rows_in[digest] = rows_in
        self.operator_batches[digest] = \
            self.operator_batches.get(digest, 0) + batches
        if operator:
            self.operator_kinds[digest] = operator

    def operator_profile(self, digest: str,
                         virtual_s: float = 0.0) -> OperatorProfile:
        """Assemble one operator's profile row from the recorded maps."""
        return OperatorProfile(
            operator=self.operator_kinds.get(digest, "?"),
            digest=digest,
            rows_in=self.operator_rows_in.get(digest, 0),
            rows_out=self.operator_rows.get(digest, 0),
            batches=self.operator_batches.get(digest, 0),
            calls=self.operator_calls.get(digest, 0),
            wall_s=self.operator_wall_s.get(digest, 0.0),
            virtual_s=virtual_s)
