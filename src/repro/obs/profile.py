"""Per-operator execution profile backing ``EXPLAIN ANALYZE``.

The interpreter (:mod:`repro.exec.operators`) records every operator
invocation here when a profile is attached to the
``ExecutionContext``; the Tez runner adds the scan-level IO metrics and
the final :class:`~repro.runtime.tez.QueryMetrics`.  The profile is
addressed by plan-node digest — the same key the runtime-statistics
feedback loop uses — so the annotated plan can be rendered by walking
the optimized tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ExecutionProfile:
    """What actually happened, keyed by plan-node digest."""

    #: digest -> output rows of the last execution
    operator_rows: dict = field(default_factory=dict)
    #: digest -> number of executions (memoized re-uses excluded)
    operator_calls: dict = field(default_factory=dict)
    #: digest -> cumulative wall seconds (inclusive of children)
    operator_wall_s: dict = field(default_factory=dict)
    #: digest -> ScanMetrics for table scans
    scan_metrics: dict = field(default_factory=dict)
    #: the run's QueryMetrics (set by the runner)
    metrics: Optional[object] = None

    def record(self, digest: str, rows: int, wall_s: float) -> None:
        self.operator_rows[digest] = rows
        self.operator_calls[digest] = \
            self.operator_calls.get(digest, 0) + 1
        self.operator_wall_s[digest] = \
            self.operator_wall_s.get(digest, 0.0) + wall_s
