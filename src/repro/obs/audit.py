"""Per-tenant audit log: the ring buffer behind ``sys.audit_log``.

One record per statement — successes, errors, kills, and admission
denials alike — attributing every access to a tenant the way Hive's
Ranger hook does in production deployments (Camacho-Rodriguez et al.,
SIGMOD 2019, §6).  Each record carries the resolved input/output tables
and the per-table column sets the statement actually touched (post
column pruning), the rows it returned, and how long admission made it
wait.

Retention mirrors the query log: a bounded in-memory ring
(``hive.audit.capacity``) whose evicted records spill to an
:class:`AuditOverflow` store (optionally file-persisted as JSON lines),
so ``sys.audit_log`` still covers long multi-tenant workloads.
"""

from __future__ import annotations

import json

from ..common import sync
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass
class AuditRecord:
    query_id: int
    tenant: str = "anonymous"
    session: str = ""
    database: str = "default"
    application: Optional[str] = None
    statement: str = ""
    operation: str = ""
    status: str = "ok"                 # ok | error | killed | denied
    error: str = ""
    #: resolved input tables (sorted), e.g. ["default.store_sales"]
    input_tables: list = field(default_factory=list)
    #: resolved output tables (sorted)
    output_tables: list = field(default_factory=list)
    #: per-table column access, as sorted "table.column" strings
    columns: list = field(default_factory=list)
    rows_returned: int = 0
    rows_affected: int = 0
    admission_wait_s: float = 0.0
    total_s: float = 0.0
    #: session virtual clock when the statement finished
    at_s: float = 0.0
    #: query-store identity; joins sys.audit_log to sys.query_store
    fingerprint: str = ""

    def as_row(self) -> tuple:
        """Row shape of ``sys.audit_log`` (see obs.systables)."""
        return (self.query_id, self.tenant, self.session, self.database,
                self.application, self.statement, self.operation,
                self.status, self.error,
                ",".join(self.input_tables), ",".join(self.output_tables),
                ",".join(self.columns), self.rows_returned,
                self.rows_affected, self.admission_wait_s, self.total_s,
                self.at_s, self.fingerprint)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "AuditRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class AuditOverflow:
    """Spill store for records evicted from the audit ring.

    With a ``path`` the store persists records as append-only JSON
    lines; without one it keeps them in memory, which still makes
    ``sys.audit_log`` complete for long in-process workloads.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._lock = sync.new_lock('AuditOverflow._lock')
        self._memory: list[AuditRecord] = []
        self.spilled = 0

    def append(self, record: AuditRecord) -> None:
        with self._lock:
            self.spilled += 1
            if self.path is None:
                self._memory.append(record)
                return
            with open(self.path, "a", encoding="utf-8") as sink:
                sink.write(json.dumps(record.to_dict(), default=str))
                sink.write("\n")

    def entries(self) -> list[AuditRecord]:
        with self._lock:
            if self.path is None:
                return list(self._memory)
            try:
                with open(self.path, encoding="utf-8") as source:
                    return [AuditRecord.from_dict(json.loads(line))
                            for line in source if line.strip()]
            except FileNotFoundError:
                return []

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.spilled = 0
            if self.path is not None:
                with open(self.path, "w", encoding="utf-8"):
                    pass


class AuditLog:
    """Bounded, thread-safe, append-only per-tenant audit trail.

    The newest ``capacity`` records stay in the ring; older ones move to
    the overflow store on eviction instead of vanishing.
    """

    def __init__(self, capacity: int = 1000,
                 overflow: Optional[AuditOverflow] = None):
        self._lock = sync.new_lock('AuditLog._lock')
        self._capacity = max(1, int(capacity))
        self._records: deque[AuditRecord] = deque()
        self.recorded = 0
        self.overflow = overflow if overflow is not None else AuditOverflow()

    @property
    def capacity(self) -> int:
        with self._lock:
            return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Resize the ring; shrinking spills the excess immediately."""
        with self._lock:
            self._capacity = max(1, int(capacity))
            self._spill_excess()

    def _spill_excess(self) -> None:
        # caller holds self._lock; overflow carries its own lock
        while len(self._records) > self._capacity:
            self.overflow.append(  # reprolint: disable=RL001
                self._records.popleft())

    def append(self, record: AuditRecord) -> None:
        with self._lock:
            self.recorded += 1
            self._records.append(record)
            self._spill_excess()

    def entries(self) -> list[AuditRecord]:
        """The in-memory ring only (newest ``capacity`` records)."""
        with self._lock:
            return list(self._records)

    def all_entries(self) -> list[AuditRecord]:
        """Spilled + ring records, oldest first — what sys tables read."""
        spilled = self.overflow.entries()
        with self._lock:
            return spilled + list(self._records)

    def by_tenant(self, tenant: str) -> list[AuditRecord]:
        return [r for r in self.all_entries() if r.tenant == tenant]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.recorded = 0
        # overflow synchronizes itself; don't nest its lock under ours
        self.overflow.clear()  # reprolint: disable=RL001
