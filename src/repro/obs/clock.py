"""The designated scrape-clock shim (reprolint RL008).

Query latency in this system is *virtual* — the cost model produces it
and the transaction manager's clock carries it.  The only legitimate
wall-clock consumers inside ``repro.obs``/``repro.llap`` are the
exposition layer (Prometheus scrape timestamps, ``/healthz`` uptime)
and the monitor's scrape-time samples, and they must be auditable as
such.  RL008 bans ``time.time()``/``time.monotonic()`` in those
packages *except* in this module, so any wall-clock leak into
virtual-time accounting fails lint instead of silently skewing the
calibrated model.
"""

from __future__ import annotations

import time as _time


def wall_now_s() -> float:
    """Wall-clock epoch seconds, for scrape timestamps only."""
    return _time.time()


def monotonic_s() -> float:
    """Monotonic seconds, for uptime / scrape-interval bookkeeping."""
    return _time.monotonic()
