"""HTTP exposition: ``/metrics`` (Prometheus text), ``/ui``, ``/healthz``.

The paper's HiveServer2 ships a web UI showing active queries and
recent performance; LLAP daemons expose a monitor servlet that cluster
tooling scrapes.  This module is that surface for the simulator, built
on the stdlib only:

* :func:`render_prometheus` turns a
  :class:`~repro.obs.registry.MetricsRegistry` snapshot into Prometheus
  text-format 0.0.4 — ``# HELP`` / ``# TYPE`` headers from the
  registry's help catalog, label escaping, and full
  ``_bucket``/``_sum``/``_count`` expansion for histograms.
* :class:`MonitorHttpServer` is a daemon-threaded
  ``ThreadingHTTPServer`` with three routes: ``/metrics`` (triggers a
  scrape-time timeseries sample, then renders the registry), ``/ui``
  (a JSON dashboard: live queries, per-daemon heatmap, recent WM and
  fault events, timeseries names) and ``/healthz``.

Metric names are mangled ``dots → underscores`` under a ``hive_``
prefix, e.g. ``llap.cache.used_bytes`` → ``hive_llap_cache_used_bytes``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

#: registry kind -> Prometheus TYPE keyword
_PROM_TYPES = {"counter": "counter", "gauge": "gauge",
               "callback": "gauge", "histogram": "histogram"}


def prom_name(name: str) -> str:
    """Registry name -> Prometheus metric name (``hive_`` prefixed)."""
    return "hive_" + name.replace(".", "_").replace("-", "_")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _labels_text(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"'
                    for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _fmt(value) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry) -> str:
    """Prometheus text-format 0.0.4 for every series in the registry."""
    lines: list[str] = []
    snapshot = registry.snapshot()
    for name in sorted(snapshot):
        rows = snapshot[name]
        if not rows:
            continue
        pname = prom_name(name)
        kind = registry.kind_of(name)
        help_text = registry.describe(name)
        if help_text:
            lines.append(f"# HELP {pname} {help_text}")
        lines.append(
            f"# TYPE {pname} {_PROM_TYPES.get(kind, 'untyped')}")
        for row in rows:
            labels = row.get("labels", {})
            if "buckets" in row:
                for bound, cumulative in row["buckets"]:
                    lines.append(
                        f"{pname}_bucket"
                        f"{_labels_text(labels, {'le': _fmt(bound)})}"
                        f" {_fmt(cumulative)}")
                lines.append(f"{pname}_sum{_labels_text(labels)}"
                             f" {_fmt(row['sum'])}")
                lines.append(f"{pname}_count{_labels_text(labels)}"
                             f" {_fmt(row['count'])}")
            else:
                lines.append(f"{pname}{_labels_text(labels)}"
                             f" {_fmt(row['value'])}")
    return "\n".join(lines) + "\n"


def render_ui(obs) -> dict:
    """The ``/ui`` JSON dashboard document."""
    live = [dict(zip(
        ("query_id", "statement", "database", "application", "phase",
         "pool", "started_s", "elapsed_s", "vertices_total",
         "vertices_done", "tasks_total", "tasks_done", "progress",
         "eta_s", "kill_requested"), row))
        for row in obs.live_queries.rows()]
    heatmap = [dict(zip(("node", "cache_bytes", "cache_chunks",
                         "occupancy"), row))
               for row in obs.cluster.llap_daemon_rows()]
    wm_events = [{"query_id": e.query_id, "pool": e.pool,
                  "action": e.action, "trigger": e.trigger_name,
                  "value": e.value}
                 for e in obs.wm_events.entries()[-20:]]
    faults = []
    if obs.faults is not None:
        faults = [{"query_id": f.query_id, "site": f.site,
                   "target": f.target, "detail": f.detail}
                  for f in obs.faults.events()[-20:]]
    audit = [{"query_id": r.query_id, "tenant": r.tenant,
              "operation": r.operation, "status": r.status,
              "inputs": list(r.input_tables),
              "outputs": list(r.output_tables),
              "rows_returned": r.rows_returned, "at_s": r.at_s}
             for r in obs.audit_log.entries()[-20:]]
    lineage = [{"fingerprint": r.fingerprint,
                "dst_table": r.dst_table,
                "edges": len(r.edges), "executions": r.executions,
                "at_s": r.at_s}
               for r in obs.lineage_graph.records()[-20:]]
    return {
        "live_queries": live,
        "nodes": heatmap,
        "wm_events": wm_events,
        "fault_events": faults,
        "timeseries": obs.timeseries.names(),
        "queries_logged": len(obs.query_log),
        "query_store": obs.query_store.ui_snapshot(),
        "audit": {"records": len(obs.audit_log),
                  "recent": audit},
        "lineage": {"fingerprints": len(obs.lineage_graph),
                    "edges": obs.lineage_graph.edge_count(),
                    "recent": lineage},
    }


class _MonitorHandler(BaseHTTPRequestHandler):
    server_version = "repro-monitor/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 - stdlib API
        obs = self.server.obs
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                obs.scrape()
                self._reply(200, render_prometheus(obs.registry),
                            "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/ui":
                body = json.dumps(render_ui(obs), indent=2,
                                  default=str)
                self._reply(200, body, "application/json")
            elif path == "/healthz":
                self._reply(200, "ok\n", "text/plain; charset=utf-8")
            else:
                self._reply(404, "not found\n",
                            "text/plain; charset=utf-8")
        except Exception as exc:  # surface, don't kill the thread
            self._reply(500, f"error: {exc}\n",
                        "text/plain; charset=utf-8")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format, *args):  # noqa: A002 - stdlib API
        pass  # scrapes must not spam the test output


class MonitorHttpServer:
    """Daemon-threaded monitor endpoint for one server's facade."""

    def __init__(self, obs, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _MonitorHandler)
        self._httpd.daemon_threads = True
        self._httpd.obs = obs
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MonitorHttpServer":
        thread = threading.Thread(target=self._httpd.serve_forever,
                                  name="repro-monitor", daemon=True)
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
