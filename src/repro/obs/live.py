"""Live query registry: what is running *right now*.

``sys.query_log`` is a flight recorder — rows appear when statements
finish.  This registry is the control tower: every statement registers
at admission, publishes its phase (parse → analyze → optimize → queued
→ running vertex k/n), completed-vs-total task counts and an ETA while
it runs, and disappears when it completes.  The rows back
``sys.live_queries`` and the ``/ui`` dashboard.

Registered queries are also **killable**: ``KILL QUERY <id>`` sets a
kill flag here, and the Tez runner checks it between vertices
(:meth:`checkpoint`), raising :class:`~repro.errors.QueryKilledError` —
a subclass of ``WorkloadManagementError``, so the kill travels the
exact path a WM KILL trigger uses (Section 5.2 guardrails).  Each kill
is recorded in the WM event log under the synthetic trigger
``kill_query``, making operator kills auditable next to trigger kills
in ``sys.wm_events``.

The ETA comes from the profiler's duration model: the p50 of the
query's pool latency histogram (``query.latency_s{pool=...}``) minus
virtual time elapsed, falling back to linear extrapolation from the
progress fraction when the pool has no history yet.
"""

from __future__ import annotations

import threading

from ..common import sync
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import QueryKilledError

#: phases a live query moves through, in order
PHASES = ("parse", "analyze", "optimize", "queued", "running",
          "finishing")


@dataclass
class LiveQuery:
    """One in-flight statement (a row of ``sys.live_queries``)."""

    query_id: int
    statement: str
    database: str = "default"
    application: Optional[str] = None
    phase: str = "parse"
    pool: str = ""
    started_s: float = 0.0       # session virtual clock at registration
    elapsed_s: float = 0.0       # modeled virtual time spent so far
    vertices_total: int = 0
    vertices_done: int = 0
    tasks_total: int = 0
    tasks_done: int = 0
    progress: float = 0.0        # [0, 1] fraction of vertices completed
    eta_s: float = 0.0
    kill_requested: bool = False
    kill_reason: str = ""

    def as_row(self) -> tuple:
        return (self.query_id, self.statement, self.database,
                self.application, self.phase, self.pool,
                self.started_s, self.elapsed_s,
                self.vertices_total, self.vertices_done,
                self.tasks_total, self.tasks_done,
                self.progress, self.eta_s, self.kill_requested)


class LiveQueryRegistry:
    """Thread-safe registry of in-flight queries, keyed by query id.

    Lock ordering: this registry's ``_lock`` is a *leaf* — nothing is
    called while holding it (checkpoint hooks and WM-event recording
    run outside), so scrape threads reading :meth:`rows` can never
    deadlock against a running query publishing progress.
    """

    def __init__(self, registry=None, wm_events=None):
        self._lock = sync.new_lock('LiveQueryRegistry._lock')
        self._queries: dict[int, LiveQuery] = {}
        #: obs MetricsRegistry (kill counters) — bound by Observability
        self.registry = registry
        #: WmEventLog — operator kills land next to trigger kills
        self.wm_events = wm_events
        #: test-visible checkpoint hooks: fn(LiveQuery) called at every
        #: runner checkpoint, outside the lock, reentrancy-guarded
        self._hooks: list[Callable] = []
        self._in_hook = threading.local()
        #: kill listeners: fn(query_id, reason) called (outside the
        #: lock) whenever a kill is requested — the serving layer's
        #: admission controller uses this to cancel *queued* operations
        #: that no runner checkpoint will ever observe
        self._kill_listeners: list[Callable] = []

    # -- lifecycle ------------------------------------------------------ #
    def register(self, query_id: int, statement: str,
                 database: str = "default",
                 application: Optional[str] = None,
                 started_s: float = 0.0) -> LiveQuery:
        """Register a statement; re-registering an id *merges*.

        The serving layer pre-registers queued operations (phase
        ``queued``) before the driver session picks them up; when
        ``Session.execute`` registers the same id the existing entry is
        updated in place so a kill flag raised while the operation sat
        in the admission queue survives into execution.
        """
        with self._lock:
            existing = self._queries.get(query_id)
            if existing is not None:
                existing.statement = statement
                existing.database = database
                existing.application = application
                return existing
            entry = LiveQuery(query_id=query_id, statement=statement,
                              database=database, application=application,
                              started_s=started_s)
            self._queries[query_id] = entry
        return entry

    def finish(self, query_id: int, status: str = "ok") -> None:
        """Deregister; killed queries leave a wm-event audit row."""
        with self._lock:
            entry = self._queries.pop(query_id, None)
        if entry is None or status != "killed":
            return
        if self.registry is not None:
            self.registry.counter("monitor.kills").inc()
        if self.wm_events is not None:
            self.wm_events.record(
                query_id=query_id, pool=entry.pool or "unmanaged",
                trigger=_kill_query_trigger(), value=entry.elapsed_s)

    # -- progress publishing (driver + runner) -------------------------- #
    def update(self, query_id: int, **fields) -> None:
        with self._lock:
            entry = self._queries.get(query_id)
            if entry is None:
                return
            for key, value in fields.items():
                setattr(entry, key, value)

    def vertex_progress(self, query_id: int, done: int, total: int,
                        tasks_done: int, tasks_total: int,
                        elapsed_s: float, pool_p50: Optional[float]
                        ) -> None:
        """Publish vertex k-of-n progress plus the modeled ETA."""
        progress = done / total if total else 0.0
        eta = _estimate_eta(elapsed_s, progress, pool_p50)
        self.update(query_id,
                    phase=(f"running vertex {done}/{total}"
                           if done < total else "finishing"),
                    vertices_done=done, vertices_total=total,
                    tasks_done=tasks_done, tasks_total=tasks_total,
                    elapsed_s=elapsed_s, progress=progress, eta_s=eta)

    # -- kill path ------------------------------------------------------ #
    def request_kill(self, query_id: int,
                     reason: str = "KILL QUERY") -> bool:
        """Flag a live query for termination; False if not live."""
        with self._lock:
            entry = self._queries.get(query_id)
            if entry is None:
                return False
            entry.kill_requested = True
            entry.kill_reason = reason
            listeners = list(self._kill_listeners)
        if self.registry is not None:
            self.registry.counter("monitor.kill_requests").inc()
        for listener in listeners:   # outside the lock (leaf-lock rule)
            listener(query_id, reason)
        return True

    def add_kill_listener(self, fn: Callable) -> None:
        """``fn(query_id, reason)`` fires on every kill request."""
        with self._lock:
            self._kill_listeners.append(fn)

    def remove_kill_listener(self, fn: Callable) -> None:
        with self._lock:
            if fn in self._kill_listeners:
                self._kill_listeners.remove(fn)

    def checkpoint(self, query_id: int) -> None:
        """Runner cancellation point (between DAG vertices).

        Runs the registered hooks first (tests use them to issue
        ``KILL QUERY``/scrapes mid-flight), then raises if this query
        was flagged.  Hooks never re-enter: a hook that executes SQL
        hits this checkpoint again on its own query and must not
        cascade.
        """
        if query_id == 0:
            return
        with self._lock:
            hooks = list(self._hooks)
        guard = self._in_hook
        if hooks and not getattr(guard, "active", False):
            with self._lock:
                entry = self._queries.get(query_id)
            if entry is not None:
                guard.active = True
                try:
                    for hook in hooks:
                        hook(entry)
                finally:
                    guard.active = False
        with self._lock:
            entry = self._queries.get(query_id)
            killed = entry is not None and entry.kill_requested
            reason = entry.kill_reason if killed else ""
        if killed:
            raise QueryKilledError(
                f"query {query_id} killed by {reason or 'operator'}",
                query_id=query_id, reason=reason)

    def add_checkpoint_hook(self, fn: Callable) -> None:
        with self._lock:
            self._hooks.append(fn)

    def remove_checkpoint_hook(self, fn: Callable) -> None:
        with self._lock:
            if fn in self._hooks:
                self._hooks.remove(fn)

    # -- reads ---------------------------------------------------------- #
    def get(self, query_id: int) -> Optional[LiveQuery]:
        with self._lock:
            return self._queries.get(query_id)

    def rows(self) -> list[tuple]:
        """Snapshot for ``sys.live_queries``, ordered by query id."""
        with self._lock:
            entries = sorted(self._queries.values(),
                             key=lambda e: e.query_id)
            return [e.as_row() for e in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)


def _estimate_eta(elapsed_s: float, progress: float,
                  pool_p50: Optional[float]) -> float:
    """Remaining virtual seconds from the duration model.

    Prefer the pool's p50 latency (the profiler's duration model); when
    the distribution is empty or already overrun, extrapolate linearly
    from the progress fraction.
    """
    if pool_p50 is not None and pool_p50 > elapsed_s:
        return pool_p50 - elapsed_s
    if 0.0 < progress < 1.0:
        return elapsed_s * (1.0 - progress) / progress
    return 0.0


def _kill_query_trigger():
    """The synthetic WM trigger that audits ``KILL QUERY`` firings."""
    from ..llap.workload import Trigger, TriggerAction
    return Trigger(name="kill_query", metric="live.elapsed_s",
                   threshold=0.0, action=TriggerAction.KILL)
