"""Column-level lineage: plan-walk extraction and the lineage graph.

What Apache Atlas gets from Hive's post-execution hook (SIGMOD 2019,
§6), reproduced over our own optimized plans: every output column of a
statement is traced back to the base-table columns it derives from,
with an edge kind describing *how* the value flows —

``PROJECTION``
    the column is a straight copy of a base column;
``EXPRESSION``
    the column is computed from the source via a scalar expression;
``AGGREGATION``
    the source is folded through an aggregate or window function;
``JOIN-KEY`` / ``FILTER``
    predicate edges: the source column did not produce output values
    but decided *which* rows appear (join conditions, WHERE clauses and
    pushed-down sargable predicates).  Predicate edges target the
    pseudo-column ``*``.

Extraction runs bottom-up over the optimized RelNode tree, so it sees
exactly what executes: pruned columns never appear, and expressions
folded away by the optimizer leave PROJECTION edges, not EXPRESSION
ones.  Edges are persisted into a bounded, virtual-clock-stamped
:class:`LineageGraph` keyed by statement fingerprint — the store behind
``sys.lineage_edges`` and ``EXPLAIN LINEAGE``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields

from ..common import sync
from ..plan.relnodes import (Aggregate, Filter, Join, Limit, Project,
                             RelNode, SetOp, Sort, TableScan, Union,
                             Values, Window)
from ..plan.rexnodes import RexInputRef, RexNode

PROJECTION = "PROJECTION"
EXPRESSION = "EXPRESSION"
AGGREGATION = "AGGREGATION"
JOIN_KEY = "JOIN-KEY"
FILTER = "FILTER"

#: how "transformed" a data edge is; upgrades never downgrade
_RANK = {PROJECTION: 0, EXPRESSION: 1, AGGREGATION: 2}


@dataclass(frozen=True, order=True)
class LineageEdge:
    """One dependency edge: dst_column derives from src_table.src_column.

    ``dst_column`` is the output-column name, or ``*`` for predicate
    edges (JOIN-KEY / FILTER) that select rows rather than produce
    values.
    """

    src_table: str
    src_column: str
    dst_column: str
    kind: str

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "LineageEdge":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


# --------------------------------------------------------------------------- #
# extraction

def extract_lineage(root: RelNode) -> list[LineageEdge]:
    """Column-level edges for one optimized plan, deterministically
    ordered (output-schema order, then sorted sources; predicate edges
    last)."""
    predicates: set[tuple[str, str, str]] = set()
    deps = _column_deps(root, predicates)
    edges: list[LineageEdge] = []
    for name, dep in zip(root.schema.names(), deps):
        for table, column, kind in sorted(dep):
            edges.append(LineageEdge(table, column, name, kind))
    for table, column, kind in sorted(predicates):
        edges.append(LineageEdge(table, column, "*", kind))
    return edges


def _upgrade(deps: set, kind: str) -> set:
    """Lift every dep to at least ``kind`` severity."""
    return {(table, column,
             kind if _RANK[kind] > _RANK[existing] else existing)
            for table, column, existing in deps}


def _expr_deps(expr: RexNode, child: list[set]) -> set:
    """Deps of one Rex expression over its input's per-ordinal deps."""
    if isinstance(expr, RexInputRef):
        return child[expr.index]
    merged: set = set()
    for ordinal in expr.input_refs():
        merged |= child[ordinal]
    return _upgrade(merged, EXPRESSION)


def _predicate_refs(expr: RexNode, child: list[set], kind: str,
                    predicates: set) -> None:
    """Record the base columns an executed predicate touches."""
    for ordinal in expr.input_refs():
        for table, column, _ in child[ordinal]:
            predicates.add((table, column, kind))


def _column_deps(node: RelNode, predicates: set) -> list[set]:
    """Per-output-ordinal sets of ``(table, column, kind)`` triples;
    predicate triples accumulate into ``predicates`` as a side channel.
    """
    if isinstance(node, TableScan):
        deps = [{(node.table_name, column.name, PROJECTION)}
                for column in node.schema]
        # pushed-down sargable predicates execute inside the scan
        for conjunct in node.sarg_conjuncts:
            _predicate_refs(conjunct, deps, FILTER, predicates)
        return deps
    if isinstance(node, Values):
        return [set() for _ in node.schema]
    if isinstance(node, Filter):
        child = _column_deps(node.input, predicates)
        _predicate_refs(node.condition, child, FILTER, predicates)
        return child
    if isinstance(node, Project):
        child = _column_deps(node.input, predicates)
        return [_expr_deps(expr, child) for expr in node.exprs]
    if isinstance(node, Aggregate):
        child = _column_deps(node.input, predicates)
        deps = [child[key] for key in node.group_keys]
        for call in node.agg_calls:
            deps.append(set() if call.arg is None
                        else _upgrade(child[call.arg], AGGREGATION))
        if node.grouping_sets is not None:
            deps.append(set())           # synthetic grouping_id
        return deps
    if isinstance(node, Window):
        child = _column_deps(node.input, predicates)
        deps = list(child)
        for call in node.calls:
            deps.append(set() if call.arg is None
                        else _upgrade(child[call.arg], AGGREGATION))
        return deps
    if isinstance(node, Join):
        left = _column_deps(node.left, predicates)
        right = _column_deps(node.right, predicates)
        combined = left + right          # condition row type (raw concat)
        if node.condition is not None:
            _predicate_refs(node.condition, combined, JOIN_KEY,
                            predicates)
        if node.kind in ("semi", "anti"):
            return left
        return combined
    if isinstance(node, Union):
        branches = [_column_deps(rel, predicates) for rel in node.rels]
        return [set().union(*(branch[i] for branch in branches))
                for i in range(len(node.schema))]
    if isinstance(node, SetOp):
        left = _column_deps(node.left, predicates)
        right = _column_deps(node.right, predicates)
        return [left[i] | right[i] for i in range(len(node.schema))]
    if isinstance(node, (Sort, Limit)):
        return _column_deps(node.input, predicates)
    # unknown operator: opaque — no false edges, just unknown provenance
    return [set() for _ in node.schema]


# --------------------------------------------------------------------------- #
# rendering (EXPLAIN LINEAGE)

def render_lineage(root: RelNode) -> list[str]:
    """The ``EXPLAIN LINEAGE`` body: one block per output column, then
    the predicate (row-selection) edges."""
    edges = extract_lineage(root)
    lines = ["LINEAGE"]
    for name in root.schema.names():
        lines.append(f"  column {name}")
        data = [e for e in edges if e.dst_column == name]
        if not data:
            lines.append("    <- (constant or opaque)")
        for edge in data:
            lines.append(f"    <- {edge.src_table}.{edge.src_column} "
                         f"[{edge.kind}]")
    preds = [e for e in edges if e.dst_column == "*"]
    if preds:
        lines.append("  predicates")
        for edge in preds:
            lines.append(f"    <- {edge.src_table}.{edge.src_column} "
                         f"[{edge.kind}]")
    return lines


# --------------------------------------------------------------------------- #
# the graph store

@dataclass
class LineageRecord:
    """Lineage of one statement fingerprint (latest plan wins)."""

    fingerprint: str
    statement: str
    query_id: int
    at_s: float                        # virtual clock at extraction
    dst_table: str = ""                # "" for plain SELECTs
    edges: list = field(default_factory=list)
    executions: int = 1


class LineageGraph:
    """Bounded LRU of per-fingerprint lineage, virtual-clock stamped.

    Re-recording a fingerprint refreshes its edges (the plan may have
    changed) and bumps its execution count; at capacity the least
    recently touched fingerprint is evicted (``lineage.evictions``).
    """

    def __init__(self, capacity: int = 512, enabled: bool = True):
        self._lock = sync.new_lock('LineageGraph._lock')
        self._records: OrderedDict[str, LineageRecord] = OrderedDict()
        self._capacity = max(1, int(capacity))
        self.enabled = bool(enabled)
        self.evictions = 0
        self.recorded = 0

    @property
    def capacity(self) -> int:
        with self._lock:
            return self._capacity

    def set_capacity(self, capacity: int) -> None:
        with self._lock:
            self._capacity = max(1, int(capacity))
            self._evict_excess()

    def _evict_excess(self) -> None:
        # caller holds self._lock
        while len(self._records) > self._capacity:
            self._records.popitem(last=False)
            self.evictions += 1  # reprolint: disable=RL001

    def record(self, fingerprint: str, statement: str, query_id: int,
               at_s: float, edges: list, dst_table: str = "") -> None:
        with self._lock:
            self.recorded += 1
            existing = self._records.pop(fingerprint, None)
            record = LineageRecord(
                fingerprint=fingerprint, statement=statement,
                query_id=query_id, at_s=at_s, dst_table=dst_table,
                edges=list(edges),
                executions=existing.executions + 1 if existing else 1)
            self._records[fingerprint] = record
            self._evict_excess()

    def records(self) -> list[LineageRecord]:
        with self._lock:
            return list(self._records.values())

    def get(self, fingerprint: str) -> LineageRecord | None:
        with self._lock:
            return self._records.get(fingerprint)

    def edge_count(self) -> int:
        with self._lock:
            return sum(len(r.edges) for r in self._records.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.evictions = 0
            self.recorded = 0
