"""Structured query tracing: span trees with wall and virtual time.

A :class:`QueryTrace` is a tree of :class:`Span` objects covering one
statement's life: parse → analyze → optimize → admission → execution
(with one child span per DAG vertex and per table scan).  Each span
carries two durations:

* ``wall_s`` — real elapsed seconds in this process (profiling the
  reproduction itself),
* ``virtual_s`` — seconds under the calibrated cost model (the latency
  the paper's experiments report; see DESIGN.md).

Traces are cheap: spans are plain objects, and callers that have no
trace (``trace=None``) pay only a ``None`` check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    name: str
    wall_s: float = 0.0
    virtual_s: float = 0.0
    #: wall-clock offset of this span's start from its trace's start, in
    #: seconds — what lays spans out on the Chrome-trace timeline
    start_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def child(self, name: str, virtual_s: float = 0.0,
              **attrs) -> "Span":
        span = Span(name, virtual_s=virtual_s, attrs=dict(attrs))
        self.children.append(span)
        return span

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first lookup by span name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        return {"name": self.name,
                "wall_s": round(self.wall_s, 6),
                "virtual_s": round(self.virtual_s, 6),
                "start_s": round(self.start_s, 6),
                "attrs": dict(self.attrs),
                "children": [c.to_dict() for c in self.children]}

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        bits = [f"{pad}{self.name}"]
        bits.append(f"virtual={self.virtual_s * 1000:.1f}ms")
        bits.append(f"wall={self.wall_s * 1000:.2f}ms")
        if self.attrs:
            bits.append(" ".join(f"{k}={v}"
                                 for k, v in sorted(self.attrs.items())))
        lines = [" ".join(bits)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class QueryTrace:
    """Span tree for one executed statement."""

    def __init__(self, query_id: int, sql: str):
        self.query_id = query_id
        self.sql = sql
        self.root = Span("query")
        self.error: Optional[str] = None
        self._stack = [self.root]
        self._started = time.perf_counter()

    # -- recording ------------------------------------------------------ #
    @contextmanager
    def span(self, name: str, **attrs):
        """Context manager measuring wall time of the enclosed block."""
        span = self._stack[-1].child(name, **attrs)
        self._stack.append(span)
        t0 = time.perf_counter()
        span.start_s = t0 - self._started
        try:
            yield span
        finally:
            span.wall_s = time.perf_counter() - t0
            self._stack.pop()

    def add(self, name: str, virtual_s: float = 0.0, **attrs) -> Span:
        """Append a leaf span under the currently open span."""
        span = self._stack[-1].child(name, virtual_s=virtual_s, **attrs)
        span.start_s = time.perf_counter() - self._started
        return span

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def finish(self, error: Optional[str] = None) -> None:
        self.root.wall_s = time.perf_counter() - self._started
        self.error = error

    # -- reads ---------------------------------------------------------- #
    def find(self, name: str) -> Optional[Span]:
        return self.root.find(name)

    def to_dict(self) -> dict:
        return {"query_id": self.query_id, "sql": self.sql,
                "error": self.error, "root": self.root.to_dict()}

    def render(self) -> str:
        header = f"trace #{self.query_id}: {self.sql}"
        return header + "\n" + self.root.render(1)
