"""Query log: the ring buffer behind ``sys.query_log``.

One entry per statement executed through a session — successes and
failures alike — with the full virtual-time latency breakdown the
paper's evaluation methodology requires (per-query accounting, BigBench
style).

Retention: the in-memory ring is bounded (``hive.obs.query.log.capacity``)
but evicted entries are not lost — they spill to a
:class:`QueryLogOverflow` store (optionally file-persisted as JSON
lines), so ``sys.query_log`` still covers long workloads.  Entries also
carry the per-vertex and per-operator profile rows that back
``sys.vertex_log`` and ``sys.operator_log``.
"""

from __future__ import annotations

import json
import threading

from ..common import sync
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass
class QueryLogEntry:
    query_id: int
    statement: str
    database: str = "default"
    application: Optional[str] = None
    operation: str = ""
    status: str = "ok"                 # ok | error
    error: str = ""
    pool: str = ""
    from_cache: bool = False
    reexecuted: bool = False
    rows_produced: int = 0
    rows_affected: int = 0
    started_s: float = 0.0             # session virtual clock at start
    total_s: float = 0.0
    queue_s: float = 0.0
    compile_s: float = 0.0
    startup_s: float = 0.0
    io_s: float = 0.0
    cpu_s: float = 0.0
    shuffle_s: float = 0.0
    external_s: float = 0.0
    disk_bytes: int = 0
    cache_bytes: int = 0
    cache_hit_fraction: float = 0.0
    wall_ms: float = 0.0
    #: query-store identity; joins sys.query_log to sys.query_store
    fingerprint: str = ""
    #: ``sys.vertex_log`` rows for this query (VertexMetrics.as_row)
    vertices: list = field(default_factory=list)
    #: ``sys.operator_log`` rows for this query (OperatorProfile.as_row)
    operators: list = field(default_factory=list)

    def as_row(self) -> tuple:
        """Row shape of ``sys.query_log`` (see obs.systables)."""
        return (self.query_id, self.statement, self.database,
                self.application, self.operation, self.status,
                self.error, self.pool, self.from_cache, self.reexecuted,
                self.rows_produced, self.rows_affected, self.started_s,
                self.total_s, self.queue_s, self.compile_s,
                self.startup_s, self.io_s, self.cpu_s, self.shuffle_s,
                self.external_s, self.disk_bytes, self.cache_bytes,
                self.cache_hit_fraction, self.wall_ms, self.fingerprint)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "QueryLogEntry":
        known = {f.name for f in fields(cls)}
        entry = cls(**{k: v for k, v in data.items() if k in known})
        # JSON round-trips tuples as lists; restore the row shapes
        entry.vertices = [tuple(row) for row in entry.vertices]
        entry.operators = [tuple(row) for row in entry.operators]
        return entry


class QueryLogOverflow:
    """Spill store for entries evicted from the ring buffer.

    With a ``path`` the store persists entries as append-only JSON lines
    (one file per server, survives the process); without one it keeps
    them in memory, which still makes ``sys.query_log`` complete for
    long in-process workloads.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._lock = sync.new_lock('QueryLogOverflow._lock')
        self._memory: list[QueryLogEntry] = []
        self.spilled = 0

    def append(self, entry: QueryLogEntry) -> None:
        with self._lock:
            self.spilled += 1
            if self.path is None:
                self._memory.append(entry)
                return
            with open(self.path, "a", encoding="utf-8") as sink:
                sink.write(json.dumps(entry.to_dict(), default=str))
                sink.write("\n")

    def entries(self) -> list[QueryLogEntry]:
        with self._lock:
            if self.path is None:
                return list(self._memory)
            try:
                with open(self.path, encoding="utf-8") as source:
                    return [QueryLogEntry.from_dict(json.loads(line))
                            for line in source if line.strip()]
            except FileNotFoundError:
                return []

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.spilled = 0
            if self.path is not None:
                with open(self.path, "w", encoding="utf-8"):
                    pass


class QueryLog:
    """Bounded, thread-safe, append-only log of executed statements.

    The newest ``capacity`` entries stay in the ring; older ones move to
    the overflow store on eviction instead of vanishing.
    """

    def __init__(self, capacity: int = 1000,
                 overflow: Optional[QueryLogOverflow] = None):
        self._lock = sync.new_lock('QueryLog._lock')
        self._capacity = max(1, int(capacity))
        self._entries: deque[QueryLogEntry] = deque()
        self.overflow = overflow if overflow is not None \
            else QueryLogOverflow()

    @property
    def capacity(self) -> int:
        with self._lock:
            return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Resize the ring; shrinking spills the excess immediately."""
        with self._lock:
            self._capacity = max(1, int(capacity))
            self._spill_excess()

    def _spill_excess(self) -> None:
        # caller holds self._lock; overflow carries its own lock
        while len(self._entries) > self._capacity:
            self.overflow.append(  # reprolint: disable=RL001
                self._entries.popleft())

    def append(self, entry: QueryLogEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            self._spill_excess()

    def entries(self) -> list[QueryLogEntry]:
        """The in-memory ring only (newest ``capacity`` entries)."""
        with self._lock:
            return list(self._entries)

    def all_entries(self) -> list[QueryLogEntry]:
        """Spilled + ring entries, oldest first — what sys tables read."""
        spilled = self.overflow.entries()
        with self._lock:
            return spilled + list(self._entries)

    def last(self) -> Optional[QueryLogEntry]:
        with self._lock:
            return self._entries[-1] if self._entries else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        # overflow synchronizes itself; don't nest its lock under ours
        self.overflow.clear()  # reprolint: disable=RL001
