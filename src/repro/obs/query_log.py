"""Query log: the ring buffer behind ``sys.query_log``.

One entry per statement executed through a session — successes and
failures alike — with the full virtual-time latency breakdown the
paper's evaluation methodology requires (per-query accounting, BigBench
style).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class QueryLogEntry:
    query_id: int
    statement: str
    database: str = "default"
    application: Optional[str] = None
    operation: str = ""
    status: str = "ok"                 # ok | error
    error: str = ""
    pool: str = ""
    from_cache: bool = False
    reexecuted: bool = False
    rows_produced: int = 0
    rows_affected: int = 0
    started_s: float = 0.0             # session virtual clock at start
    total_s: float = 0.0
    queue_s: float = 0.0
    compile_s: float = 0.0
    startup_s: float = 0.0
    io_s: float = 0.0
    cpu_s: float = 0.0
    shuffle_s: float = 0.0
    external_s: float = 0.0
    disk_bytes: int = 0
    cache_bytes: int = 0
    cache_hit_fraction: float = 0.0
    wall_ms: float = 0.0

    def as_row(self) -> tuple:
        """Row shape of ``sys.query_log`` (see obs.systables)."""
        return (self.query_id, self.statement, self.database,
                self.application, self.operation, self.status,
                self.error, self.pool, self.from_cache, self.reexecuted,
                self.rows_produced, self.rows_affected, self.started_s,
                self.total_s, self.queue_s, self.compile_s,
                self.startup_s, self.io_s, self.cpu_s, self.shuffle_s,
                self.external_s, self.disk_bytes, self.cache_bytes,
                self.cache_hit_fraction, self.wall_ms)


class QueryLog:
    """Bounded, thread-safe, append-only log of executed statements."""

    def __init__(self, capacity: int = 1000):
        self._lock = threading.Lock()
        self._entries: deque[QueryLogEntry] = deque(maxlen=capacity)

    def append(self, entry: QueryLogEntry) -> None:
        with self._lock:
            self._entries.append(entry)

    def entries(self) -> list[QueryLogEntry]:
        with self._lock:
            return list(self._entries)

    def last(self) -> Optional[QueryLogEntry]:
        with self._lock:
            return self._entries[-1] if self._entries else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
