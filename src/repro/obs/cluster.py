# concheck: disable-file=CC002 -- ClusterMonitor publishes its
# bindings (hms, llap_cache, num_nodes, ...) exactly once in
# bind() at server construction, before any sampler/scrape thread
# exists; the callback gauges then read them lock-free by design
# (a scrape must never contend with the query path).
"""Cluster-state monitor: per-node LLAP daemon view + samplers.

The paper's LLAP monitor shows operators each daemon's executors and
cache; HS2's web UI shows warehouse-wide state (open transactions,
pool usage).  This module reproduces both over the simulator:

* **Per-node callback gauges** — ``llap.cache.used_bytes{node=...}``,
  executor occupancy, queue depth — registered into the metrics
  registry at bind time, so ``/metrics`` and ``sys.metrics`` expose a
  daemon heatmap that is always current.  Placement comes from
  :func:`repro.llap.placement.node_of`, the same rule failover uses.
* **Samplers** — :meth:`maybe_sample` runs on the transaction
  manager's *virtual* clock (ticked per statement), appending the
  per-node gauges, warehouse gauges (open txns, lock waiters, pool
  usage) and cluster counters (faults, failed attempts, failover) to
  the :class:`~repro.obs.timeseries.TimeseriesStore` every
  ``interval_s`` virtual seconds; :meth:`scrape_sample` does the same
  at wall-clock scrape time (``/metrics`` GETs), stamped ``scrape``.

Executor occupancy is modeled, not measured: in-flight queries'
outstanding tasks (from the live registry) spread round-robin over the
live daemons — consistent with how the Tez cost model spreads task
slots.
"""

from __future__ import annotations

import threading

from ..common import sync
from typing import Optional

from ..llap.placement import node_of
from .clock import wall_now_s

#: registry counters mirrored into the timeseries on every sample
#: (container churn, fault pressure, throughput)
SAMPLED_COUNTERS = ("faults.injected", "runtime.failed_task_attempts",
                    "runtime.failover_s", "runtime.queries",
                    "queries.total")


class ClusterMonitor:
    """Heatmap + sampler façade bound to one server's components."""

    def __init__(self, registry, timeseries, live_queries):
        self.registry = registry
        self.timeseries = timeseries
        self.live_queries = live_queries
        self._lock = sync.new_lock('ClusterMonitor._lock')
        self._last_sample_s: Optional[float] = None
        #: virtual seconds between interval samples (<= 0 disables)
        self.interval_s = 5.0
        # bound by Observability.bind_cluster
        self.llap_cache = None
        self.hms = None
        self.workload_manager = None
        self.num_nodes = 1
        self.executors_per_node = 1
        self.cache_capacity_bytes = 0

    # -- wiring --------------------------------------------------------- #
    def bind(self, llap_cache, hms, workload_manager, num_nodes: int,
             executors_per_node: int, cache_capacity_bytes: int,
             interval_s: float) -> None:
        with self._lock:
            self.llap_cache = llap_cache
            self.hms = hms
            self.workload_manager = workload_manager
            self.num_nodes = max(1, num_nodes)
            self.executors_per_node = max(1, executors_per_node)
            self.cache_capacity_bytes = cache_capacity_bytes
            self.interval_s = interval_s
        self._register_gauges()

    def set_interval(self, interval_s: float) -> None:
        """Runtime knob: ``SET hive.monitor.sample.interval.s = ...``"""
        with self._lock:
            self.interval_s = float(interval_s)

    def _register_gauges(self) -> None:
        """Per-node + warehouse callback gauges (idempotent: callbacks
        overwrite by (name, labels))."""
        reg = self.registry
        for node in range(self.num_nodes):
            reg.register_callback(
                "llap.cache.used_bytes",
                (lambda n=node: self._node_cache(n)[0]), node=node)
            reg.register_callback(
                "llap.cache.chunks",
                (lambda n=node: self._node_cache(n)[1]), node=node)
            reg.register_callback(
                "llap.cache.occupancy",
                (lambda n=node: self._node_occupancy(n)), node=node)
            reg.register_callback(
                "llap.executors.busy",
                (lambda n=node: self._executors(n)[0]), node=node)
            reg.register_callback(
                "llap.executors.total",
                (lambda: self.executors_per_node), node=node)
            reg.register_callback(
                "llap.queue_depth",
                (lambda n=node: self._executors(n)[1]), node=node)
        reg.register_callback("cluster.nodes_total",
                              lambda: self.num_nodes)
        reg.register_callback("txn.open", self._open_txns)
        reg.register_callback("txn.min_open", self._min_open_txn)
        reg.register_callback("locks.held", self._locks_held)
        reg.register_callback("locks.waiters", self._lock_waiters)

    # -- per-node state ------------------------------------------------- #
    def _node_cache(self, node: int) -> tuple[int, int]:
        cache = self.llap_cache
        if cache is None:
            return (0, 0)
        return cache.node_usage(self.num_nodes).get(node, (0, 0))

    def _node_occupancy(self, node: int) -> float:
        per_node = self.cache_capacity_bytes / self.num_nodes
        if per_node <= 0:
            return 0.0
        return min(1.0, self._node_cache(node)[0] / per_node)

    def _outstanding_tasks(self) -> int:
        """Tasks not yet accounted across all in-flight queries."""
        total = 0
        for row in self.live_queries.rows():
            # as_row layout: tasks_total at 10, tasks_done at 11
            total += max(0, int(row[10]) - int(row[11]))
        return total

    def _executors(self, node: int) -> tuple[int, int]:
        """Modeled ``(busy_slots, queue_depth)`` of one daemon."""
        outstanding = self._outstanding_tasks()
        share = outstanding // self.num_nodes
        if node < outstanding % self.num_nodes:
            share += 1
        busy = min(self.executors_per_node, share)
        return busy, max(0, share - busy)

    # -- warehouse state ------------------------------------------------ #
    def _open_txns(self) -> int:
        return (self.hms.txn_manager.open_txn_count()
                if self.hms is not None else 0)

    def _min_open_txn(self) -> int:
        if self.hms is None:
            return 0
        return self.hms.txn_manager.min_open_txn() or 0

    def _locks_held(self) -> int:
        return (len(self.hms.lock_manager.locks_held())
                if self.hms is not None else 0)

    def _lock_waiters(self) -> int:
        return (len(self.hms.lock_manager.waiting())
                if self.hms is not None else 0)

    def virtual_now_s(self) -> float:
        """The warehouse virtual clock (max of all sessions' now_s)."""
        if self.hms is None:
            return 0.0
        return self.hms.txn_manager.advance_clock(0.0)

    # -- sampling ------------------------------------------------------- #
    def maybe_sample(self, now_s: float) -> bool:
        """Interval sampler, driven by the virtual clock tick.

        Samples when the clock advanced ``interval_s`` past the last
        sample (and on the very first tick), so replayed workloads
        produce identical timelines.
        """
        with self._lock:
            if self.interval_s <= 0 or self.llap_cache is None:
                return False
            last = self._last_sample_s
            if last is not None and now_s < last + self.interval_s:
                return False
            self._last_sample_s = now_s
        self.sample(now_s, source="interval")
        return True

    def scrape_sample(self) -> None:
        """Wall-clock-driven sample, taken on every ``/metrics`` GET."""
        if self.llap_cache is None:
            return
        self.sample(self.virtual_now_s(), source="scrape")

    def sample(self, now_s: float, source: str = "interval") -> None:
        ts = self.timeseries
        wall = wall_now_s()
        for node in range(self.num_nodes):
            nbytes, chunks = self._node_cache(node)
            busy, queued = self._executors(node)
            label = str(node)
            ts.append("llap.cache.used_bytes", nbytes, now_s, wall,
                      source, node=label)
            ts.append("llap.cache.chunks", chunks, now_s, wall,
                      source, node=label)
            ts.append("llap.executors.busy", busy, now_s, wall,
                      source, node=label)
            ts.append("llap.queue_depth", queued, now_s, wall,
                      source, node=label)
        ts.append("txn.open", self._open_txns(), now_s, wall, source)
        ts.append("locks.held", self._locks_held(), now_s, wall, source)
        ts.append("locks.waiters", self._lock_waiters(), now_s, wall,
                  source)
        wm = self.workload_manager
        if wm is not None:
            for pool, running in sorted(
                    wm.running_counts(now_s).items()):
                ts.append("wm.pool.running", running, now_s, wall,
                          source, pool=pool)
        for name in SAMPLED_COUNTERS:
            ts.append(name, self.registry.total(name), now_s, wall,
                      source)

    # -- sys-table rows -------------------------------------------------- #
    def cluster_node_rows(self) -> list[tuple]:
        """``sys.cluster_nodes``: membership + executor occupancy."""
        rows = []
        for node in range(self.num_nodes):
            busy, queued = self._executors(node)
            rows.append((node, "alive", self.executors_per_node, busy,
                         queued))
        return rows

    def llap_daemon_rows(self) -> list[tuple]:
        """``sys.llap_daemons``: per-daemon cache heatmap."""
        rows = []
        for node in range(self.num_nodes):
            nbytes, chunks = self._node_cache(node)
            rows.append((node, nbytes, chunks,
                         self._node_occupancy(node)))
        return rows

    def node_of(self, file_id: int) -> int:
        """Placement rule, exposed for the heatmap's consumers."""
        return node_of(file_id, self.num_nodes)
