"""Statement fingerprints and plan hashes for the query store.

A **fingerprint** identifies a recurring statement across executions:
the SQL text is canonicalized through the lexer — keywords uppercased,
identifiers lowercased, every literal replaced by ``?`` — and hashed.
The driver fingerprints the *unparsed* statement
(``statement.unparse()``), the same canonical text the plan cache keys
on, so two spellings of one statement (whitespace, literal values,
case, optional parentheses) share a fingerprint and the store, the
plan cache and ``EXPLAIN HISTORY`` agree on identity.  Raw SQL is
fingerprinted directly only for statements that fail to parse.

A **plan hash** identifies the *shape* of an optimized plan: the
EXPLAIN tree (:meth:`RelNode.explain`) plus the semijoin-reducer and
materialized-view annotations, hashed.  The tree is purely structural
(operator labels, no cardinality estimates), so the hash is stable
across pure statistics refreshes and only moves when the optimizer
actually picks a different plan — exactly the event the query store
wants to surface.

Blind spots (documented in DESIGN.md): literal stripping conflates
statements whose literals select different plans (partition pruning);
``IN`` lists of different lengths fingerprint differently; statements
that fail to tokenize fall back to whitespace-normalized text.
"""

from __future__ import annotations

import difflib
import hashlib

from ..errors import ParseError
from ..sql.lexer import TokenType, tokenize

#: hex digits kept from the sha1 — short enough to eyeball in sys
#: tables, long enough that collisions are out of scope here
_DIGEST_LEN = 12


def canonicalize(sql: str) -> str:
    """Literal-stripped canonical text of one SQL statement."""
    try:
        tokens = tokenize(sql)
    except ParseError:
        # unlexable text still deserves an identity (error statements
        # land in the store too): normalize whitespace and move on
        return " ".join(sql.split())
    parts: list[str] = []
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            parts.append("?")
        elif token.type is TokenType.KEYWORD:
            parts.append(token.value.upper())
        elif token.type is TokenType.IDENT:
            parts.append(token.value.lower())
        else:
            parts.append(token.value)
    # drop a trailing statement terminator so "X;" and "X" agree
    while parts and parts[-1] == ";":
        parts.pop()
    return " ".join(parts)


def fingerprint(sql: str) -> str:
    """Stable fingerprint of one statement's canonical text."""
    canonical = canonicalize(sql)
    digest = hashlib.sha1(canonical.encode("utf-8")).hexdigest()
    return digest[:_DIGEST_LEN]


def plan_text(optimized) -> str:
    """The EXPLAIN tree of an optimized plan, with the annotations
    that change execution shape (semijoin reducers, MV rewrites)."""
    if optimized is None:
        return ""
    lines = optimized.root.explain().splitlines()
    for reducer in optimized.semijoin_reducers:
        lines.append(f"semijoin reducer -> {reducer.target_table}"
                     f".{reducer.target_column}")
    if optimized.views_used:
        lines.append("materialized views: "
                     + ", ".join(sorted(optimized.views_used)))
    return "\n".join(lines)


def hash_plan_text(text: str) -> str:
    """Hash of an already-rendered plan text ('' when empty)."""
    if not text:
        return ""
    digest = hashlib.sha1(text.encode("utf-8")).hexdigest()
    return digest[:_DIGEST_LEN]


def plan_hash(optimized) -> str:
    """Stable hash over the optimized-plan shape ('' when no plan)."""
    return hash_plan_text(plan_text(optimized))


def plan_diff(old_text: str, new_text: str) -> str:
    """Structural unified diff between two EXPLAIN trees."""
    lines = difflib.unified_diff(
        old_text.splitlines(), new_text.splitlines(),
        fromfile="old_plan", tofile="new_plan", lineterm="", n=2)
    return "\n".join(lines)
