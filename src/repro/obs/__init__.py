"""repro.obs — the unified observability subsystem.

The paper's workload manager acts on *runtime counters* (Section 5.2)
and its whole evaluation rests on fine-grained latency breakdowns
(Figures 7/8, Table 1).  This package turns the repo's scattered stats
fragments into one layer:

* :class:`MetricsRegistry` — thread-safe counters, gauges and histograms
  with labeled series, plus callback gauges that mirror pre-existing
  stats objects (``CacheStats``, ``ResultsCacheStats``) without changing
  them,
* :class:`QueryTrace` — per-query span trees covering
  parse → analyze → optimize → admission → DAG vertices → scans, with
  both wall-clock and virtual-time durations,
* :class:`QueryLog` — a ring buffer behind ``sys.query_log``,
* :class:`SysTableHandler` — SQL-queryable system tables
  (``sys.query_log``, ``sys.cache_stats``, ``sys.compactions``,
  ``sys.pools``, ``sys.metrics``) served straight from server state,
* :class:`Observability` — the per-server facade wiring it all together
  and exporting JSON snapshots for the bench harness.

The legacy stats classes remain importable from their home modules *and*
from here, so code written against the fragments keeps working.
"""

from .live import LiveQuery, LiveQueryRegistry
from .profile import ExecutionProfile
from .query_log import QueryLog, QueryLogEntry
from .registry import (METRIC_HELP, Counter, Gauge, Histogram,
                       MetricsRegistry)
from .service import Observability
from .timeseries import Sample, TimeseriesStore
from .tracing import QueryTrace, Span

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "METRIC_HELP",
    "QueryTrace", "Span", "ExecutionProfile",
    "QueryLog", "QueryLogEntry", "Observability",
    "TimeseriesStore", "Sample", "LiveQuery", "LiveQueryRegistry",
    "ClusterMonitor", "MonitorHttpServer", "render_prometheus",
    "parse_prometheus_text",
    "SysTableHandler", "render_explain_analyze",
    "HookContext", "HookRegistry", "AuditLog", "AuditRecord",
    "LineageGraph", "LineageEdge", "extract_lineage", "render_lineage",
    # adapted legacy stats objects (lazy re-exports)
    "CacheStats", "ResultsCacheStats", "QueryMetrics", "VertexMetrics",
    "ScanMetrics",
]

_LAZY = {
    "CacheStats": ("repro.llap.cache", "CacheStats"),
    "ResultsCacheStats": ("repro.server.results_cache",
                          "ResultsCacheStats"),
    "QueryMetrics": ("repro.runtime.tez", "QueryMetrics"),
    "VertexMetrics": ("repro.runtime.tez", "VertexMetrics"),
    "ScanMetrics": ("repro.runtime.scan", "ScanMetrics"),
    "SysTableHandler": ("repro.obs.systables", "SysTableHandler"),
    "ClusterMonitor": ("repro.obs.cluster", "ClusterMonitor"),
    "MonitorHttpServer": ("repro.obs.exposition", "MonitorHttpServer"),
    "render_prometheus": ("repro.obs.exposition", "render_prometheus"),
    "parse_prometheus_text": ("repro.obs.promparse",
                              "parse_prometheus_text"),
    "render_explain_analyze": ("repro.obs.explain_analyze",
                               "render_explain_analyze"),
    "HookContext": ("repro.obs.hooks", "HookContext"),
    "HookRegistry": ("repro.obs.hooks", "HookRegistry"),
    "AuditLog": ("repro.obs.audit", "AuditLog"),
    "AuditRecord": ("repro.obs.audit", "AuditRecord"),
    "LineageGraph": ("repro.obs.lineage", "LineageGraph"),
    "LineageEdge": ("repro.obs.lineage", "LineageEdge"),
    "extract_lineage": ("repro.obs.lineage", "extract_lineage"),
    "render_lineage": ("repro.obs.lineage", "render_lineage"),
}


def __getattr__(name: str):
    # lazy so importing repro.obs never drags in the runtime stack
    # (runtime.tez imports exec.operators, which may import obs helpers)
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib
    module = importlib.import_module(target[0])
    return getattr(module, target[1])
