"""Rendering for ``EXPLAIN ANALYZE``: the executed plan, annotated.

Walks the optimized plan tree and annotates every operator with what the
execution actually observed — output rows, executions, wall time — and,
for table scans, the IO detail (disk vs cache bytes, row-group and
partition pruning, semijoin filtering).  A footer reports the
virtual-time breakdown and the per-vertex schedule of the DAG: each
vertex gets a time bar proportional to its share of the query's modeled
time, its skew factor (max task / median task) when tasks are
imbalanced, and a nested per-operator breakdown with the attributed
virtual time.
"""

from __future__ import annotations

from typing import Optional

from ..plan import relnodes as rel
from .profile import ExecutionProfile


#: width of the EXPLAIN ANALYZE per-vertex/per-operator time bars
_BAR_WIDTH = 12


def _time_bar(value: float, longest: float) -> str:
    """A fixed-width bar scaled against the longest sibling."""
    if longest <= 0.0:
        return "[" + " " * _BAR_WIDTH + "]"
    filled = int(round(_BAR_WIDTH * max(0.0, value) / longest))
    filled = min(_BAR_WIDTH, filled)
    return "[" + "#" * filled + " " * (_BAR_WIDTH - filled) + "]"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"


def _annotate(node: rel.RelNode, profile: ExecutionProfile) -> str:
    digest = node.digest
    bits = []
    rows = profile.operator_rows.get(digest)
    if rows is not None:
        bits.append(f"rows={rows}")
    calls = profile.operator_calls.get(digest, 0)
    if calls > 1:
        bits.append(f"executions={calls}")
    wall = profile.operator_wall_s.get(digest)
    if wall is not None:
        bits.append(f"wall={wall * 1000:.2f}ms")
    if isinstance(node, rel.TableScan):
        scan = profile.scan_metrics.get(digest)
        if scan is not None:
            if scan.raw_rows != scan.rows:
                bits.append(f"raw_rows={scan.raw_rows}")
            bits.append(f"disk={_fmt_bytes(scan.disk_bytes)}")
            bits.append(f"cache={_fmt_bytes(scan.cache_bytes)}")
            if scan.row_groups_total:
                bits.append(f"row-groups={scan.row_groups_read}"
                            f"/{scan.row_groups_total}")
            if scan.partitions_total:
                bits.append(f"partitions={scan.partitions_read}"
                            f"/{scan.partitions_total}")
            if scan.semijoin_filtered_rows:
                bits.append(
                    f"semijoin-filtered={scan.semijoin_filtered_rows}")
            if scan.external_time_s:
                bits.append(f"external={scan.external_time_s:.3f}s")
    return "  [" + ", ".join(bits) + "]" if bits else ""


def _render_tree(node: rel.RelNode, profile: ExecutionProfile,
                 indent: int = 0) -> list[str]:
    line = "  " * indent + node._explain_label() \
        + _annotate(node, profile)
    lines = [line]
    for child in node.inputs:
        lines.extend(_render_tree(child, profile, indent + 1))
    return lines


def render_explain_analyze(optimized, profile: ExecutionProfile,
                           reexecuted: bool = False,
                           views_used: Optional[list] = None,
                           inputs: Optional[list] = None,
                           outputs: Optional[list] = None
                           ) -> list[str]:
    """Annotated-plan lines for one executed query.

    ``inputs``/``outputs`` are the hook-context's resolved table lists
    — the driver passes the SAME resolution the audit log records, so
    EXPLAIN ANALYZE and ``sys.audit_log`` cannot disagree about what a
    statement touched.
    """
    lines = _render_tree(optimized.root, profile)
    metrics = profile.metrics
    if metrics is not None:
        lines.append(
            "-- time: total={:.3f}s queue={:.3f}s compile={:.3f}s "
            "startup={:.3f}s io={:.3f}s cpu={:.3f}s shuffle={:.3f}s "
            "external={:.3f}s".format(
                metrics.total_s, metrics.queue_s, metrics.compile_s,
                metrics.startup_s, metrics.io_s, metrics.cpu_s,
                metrics.shuffle_s, metrics.external_s))
        lines.append(
            f"-- io: disk={_fmt_bytes(metrics.disk_bytes)} "
            f"cache={_fmt_bytes(metrics.cache_bytes)} "
            f"(cache hit {metrics.cache_hit_fraction * 100:.1f}%)")
        longest = max((vm.duration_s for vm in metrics.vertices),
                      default=0.0)
        for vm in metrics.vertices:
            bar = _time_bar(vm.duration_s, longest)
            skew = ""
            if vm.skew_factor > 1.0:
                skew = f" skew={vm.skew_factor:.2f}"
                if vm.straggler:
                    skew += " STRAGGLER"
            retries = ""
            if vm.failed_attempts or vm.speculative_tasks:
                parts = [f"attempts={vm.attempts}"]
                if vm.failed_attempts:
                    parts.append(f"retried={vm.failed_attempts}")
                if vm.speculative_tasks:
                    parts.append(f"speculative={vm.speculative_tasks}")
                parts.append(f"retry={vm.retry_s:.3f}s")
                retries = " " + " ".join(parts)
            lines.append(
                f"-- vertex {vm.name}: {bar} {vm.duration_s:.3f}s "
                f"tasks={vm.tasks} rows={vm.rows} "
                f"start={vm.start_s:.3f}s finish={vm.finish_s:.3f}s "
                f"(startup={vm.startup_s:.3f}s io={vm.io_s:.3f}s "
                f"cpu={vm.cpu_s:.3f}s shuffle={vm.shuffle_s:.3f}s)"
                f"{skew}{retries}")
            op_longest = max((op.virtual_s for op in vm.operators),
                             default=0.0)
            for op in vm.operators:
                lines.append(
                    f"--   op {op.operator}: "
                    f"{_time_bar(op.virtual_s, op_longest)} "
                    f"virtual={op.virtual_s:.3f}s "
                    f"rows_in={op.rows_in} rows_out={op.rows_out} "
                    f"batches={op.batches}")
        if metrics.retry_s or metrics.failover_s:
            lines.append(
                f"-- faults: retry={metrics.retry_s:.3f}s "
                f"failover={metrics.failover_s:.3f}s")
        if metrics.pool:
            moved = (f" -> moved to {metrics.moved_to_pool}"
                     if metrics.moved_to_pool else "")
            lines.append(f"-- pool: {metrics.pool}{moved}")
    lines.append(f"-- stages: {', '.join(optimized.stages_applied)}")
    if views_used:
        lines.append(
            f"-- materialized views: {', '.join(views_used)}")
    if reexecuted:
        lines.append("-- reexecuted: yes")
    if inputs:
        lines.append(f"-- inputs: {', '.join(inputs)}")
    if outputs:
        lines.append(f"-- outputs: {', '.join(outputs)}")
    return lines
