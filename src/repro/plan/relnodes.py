"""Logical relational operators (RelNodes).

The analyzer produces these from the AST; the optimizer transforms them;
the physical planner lowers them to a Tez-style DAG.  Nodes are immutable
(transformations build new trees) and each carries its output
:class:`~repro.common.rows.Schema` plus a recursive ``digest`` that the
shared-work optimizer and result cache use for equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..common.rows import Column, Schema
from ..common.types import BIGINT, DOUBLE, DataType
from ..errors import AnalysisError
from .rexnodes import AggregateCall, RexNode

# type returned by count(*) / count(x)
COUNT_TYPE = BIGINT


class RelNode:
    """Base class.  Subclasses are dataclasses with an ``inputs`` view."""

    schema: Schema

    @property
    def inputs(self) -> tuple["RelNode", ...]:
        return ()

    def with_inputs(self, inputs: Sequence["RelNode"]) -> "RelNode":
        """Copy of this node with replaced inputs (arity must match)."""
        raise NotImplementedError

    @property
    def digest(self) -> str:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Multi-line plan rendering (EXPLAIN output)."""
        line = "  " * indent + self._explain_label()
        lines = [line]
        for child in self.inputs:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _explain_label(self) -> str:
        return self.digest

    def __eq__(self, other) -> bool:
        return isinstance(other, RelNode) and self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    def __repr__(self) -> str:
        return self._explain_label()


# --------------------------------------------------------------------------- #
# leaves

@dataclass(frozen=True, eq=False)
class TableScan(RelNode):
    """Scan of a catalog table (native or federated).

    Optimizer passes may attach:

    * ``pruned_partitions`` — static partition pruning result (None = all),
    * ``sarg_conjuncts`` — pushed-down sargable predicates (Rex, over this
      scan's schema) evaluated by the file reader,
    * ``semijoin_sources`` — ids of dynamic semijoin reducers feeding this
      scan at runtime (Section 4.6),
    * ``pushed_query`` — an engine-specific query for federated scans
      (Section 6.2); when set the external engine computes it.
    """

    table_name: str                      # qualified db.table
    schema: Schema
    pruned_partitions: Optional[tuple[tuple, ...]] = None
    sarg_conjuncts: tuple[RexNode, ...] = ()
    semijoin_sources: tuple[str, ...] = ()
    pushed_query: Optional[object] = None
    scan_id: int = 0                     # disambiguates self-joins

    @property
    def digest(self) -> str:
        # NOTE: scan_id is deliberately NOT part of the digest — two scans
        # of the same table with the same pushed state read the same data,
        # which is exactly what the shared-work optimizer merges
        # (Section 4.5).  scan_id only addresses scans for semijoin
        # reducer attachment.
        extras = []
        if self.pruned_partitions is not None:
            extras.append(f"parts={len(self.pruned_partitions)}")
        if self.sarg_conjuncts:
            extras.append(
                "sargs=[" + ",".join(s.digest for s in self.sarg_conjuncts)
                + "]")
        if self.semijoin_sources:
            extras.append(f"sj={list(self.semijoin_sources)}")
        if self.pushed_query is not None:
            extras.append(f"pushed={self.pushed_query!r}")
        columns = ",".join(c.name for c in self.schema)
        suffix = (" " + " ".join(extras)) if extras else ""
        return f"TableScan({self.table_name}[{columns}]{suffix})"

    def with_inputs(self, inputs):
        if inputs:
            raise AnalysisError("TableScan takes no inputs")
        return self


@dataclass(frozen=True, eq=False)
class Values(RelNode):
    """Inline constant relation (INSERT ... VALUES, empty results)."""

    schema: Schema
    rows: tuple[tuple, ...]

    @property
    def digest(self) -> str:
        return f"Values({len(self.rows)} rows)"

    def with_inputs(self, inputs):
        if inputs:
            raise AnalysisError("Values takes no inputs")
        return self


# --------------------------------------------------------------------------- #
# unary operators

@dataclass(frozen=True, eq=False)
class Filter(RelNode):
    input: RelNode
    condition: RexNode

    @property
    def schema(self) -> Schema:
        return self.input.schema

    @property
    def inputs(self):
        return (self.input,)

    def with_inputs(self, inputs):
        (child,) = inputs
        return Filter(child, self.condition)

    @property
    def digest(self) -> str:
        return f"Filter({self.condition.digest})\n{self.input.digest}"

    def _explain_label(self) -> str:
        return f"Filter(condition={self.condition.digest})"


@dataclass(frozen=True, eq=False)
class Project(RelNode):
    input: RelNode
    exprs: tuple[RexNode, ...]
    names: tuple[str, ...]

    def __post_init__(self):
        if len(self.exprs) != len(self.names):
            raise AnalysisError("Project exprs/names length mismatch")

    @property
    def schema(self) -> Schema:
        return Schema(Column(name, expr.dtype)
                      for name, expr in zip(self.names, self.exprs))

    @property
    def inputs(self):
        return (self.input,)

    def with_inputs(self, inputs):
        (child,) = inputs
        return Project(child, self.exprs, self.names)

    @property
    def digest(self) -> str:
        cols = ", ".join(f"{e.digest} AS {n}"
                         for e, n in zip(self.exprs, self.names))
        return f"Project({cols})\n{self.input.digest}"

    def _explain_label(self) -> str:
        cols = ", ".join(f"{e.digest} AS {n}"
                         for e, n in zip(self.exprs, self.names))
        return f"Project({cols})"

    def is_identity(self) -> bool:
        from .rexnodes import RexInputRef
        if len(self.exprs) != len(self.input.schema):
            return False
        return all(isinstance(e, RexInputRef) and e.index == i
                   and n == self.input.schema[i].name
                   for i, (e, n) in enumerate(zip(self.exprs, self.names)))


@dataclass(frozen=True, eq=False)
class Aggregate(RelNode):
    """Group-by + aggregates.

    ``group_keys`` are input ordinals; output schema is group keys (in
    order) followed by one column per aggregate call.  With
    ``grouping_sets`` the output gains a trailing BIGINT ``grouping_id``
    and non-grouped keys are NULL per set (Section 3.1, OLAP operations).
    """

    input: RelNode
    group_keys: tuple[int, ...]
    agg_calls: tuple[AggregateCall, ...]
    group_names: tuple[str, ...] = ()
    grouping_sets: Optional[tuple[tuple[int, ...], ...]] = None

    @property
    def schema(self) -> Schema:
        columns = []
        in_schema = self.input.schema
        names = self.group_names or tuple(
            in_schema[k].name for k in self.group_keys)
        for key, name in zip(self.group_keys, names):
            columns.append(Column(name, in_schema[key].dtype))
        for call in self.agg_calls:
            columns.append(Column(call.name, call.dtype))
        if self.grouping_sets is not None:
            columns.append(Column("grouping_id", BIGINT, nullable=False))
        return Schema(columns)

    @property
    def inputs(self):
        return (self.input,)

    def with_inputs(self, inputs):
        (child,) = inputs
        return Aggregate(child, self.group_keys, self.agg_calls,
                         self.group_names, self.grouping_sets)

    @property
    def digest(self) -> str:
        keys = ",".join(f"${k}" for k in self.group_keys)
        aggs = ",".join(c.digest for c in self.agg_calls)
        gs = ""
        if self.grouping_sets is not None:
            gs = " sets=" + repr(self.grouping_sets)
        return f"Aggregate(keys=[{keys}] aggs=[{aggs}]{gs})\n{self.input.digest}"

    def _explain_label(self) -> str:
        keys = ",".join(f"${k}" for k in self.group_keys)
        aggs = ",".join(c.digest for c in self.agg_calls)
        return f"Aggregate(group=[{keys}], aggs=[{aggs}])"


@dataclass(frozen=True)
class SortKey:
    index: int
    ascending: bool = True

    @property
    def digest(self) -> str:
        return f"${self.index}{'' if self.ascending else ' DESC'}"


@dataclass(frozen=True, eq=False)
class Sort(RelNode):
    """Total order; with ``fetch`` set it becomes TopN."""

    input: RelNode
    keys: tuple[SortKey, ...]
    fetch: Optional[int] = None

    @property
    def schema(self) -> Schema:
        return self.input.schema

    @property
    def inputs(self):
        return (self.input,)

    def with_inputs(self, inputs):
        (child,) = inputs
        return Sort(child, self.keys, self.fetch)

    @property
    def digest(self) -> str:
        keys = ",".join(k.digest for k in self.keys)
        fetch = f" fetch={self.fetch}" if self.fetch is not None else ""
        return f"Sort(keys=[{keys}]{fetch})\n{self.input.digest}"

    def _explain_label(self) -> str:
        keys = ",".join(k.digest for k in self.keys)
        fetch = f", fetch={self.fetch}" if self.fetch is not None else ""
        return f"Sort(keys=[{keys}]{fetch})"


@dataclass(frozen=True, eq=False)
class Limit(RelNode):
    input: RelNode
    count: int

    @property
    def schema(self) -> Schema:
        return self.input.schema

    @property
    def inputs(self):
        return (self.input,)

    def with_inputs(self, inputs):
        (child,) = inputs
        return Limit(child, self.count)

    @property
    def digest(self) -> str:
        return f"Limit({self.count})\n{self.input.digest}"

    def _explain_label(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True)
class WindowCall:
    """One windowed function: rank/row_number/sum/min/max/count/avg."""

    func: str
    arg: Optional[int]
    partition_keys: tuple[int, ...]
    order_keys: tuple[SortKey, ...]
    dtype: DataType
    name: str

    @property
    def digest(self) -> str:
        arg = "" if self.arg is None else f"${self.arg}"
        part = ",".join(f"${k}" for k in self.partition_keys)
        order = ",".join(k.digest for k in self.order_keys)
        return f"{self.func}({arg}) OVER(p=[{part}] o=[{order}])"


@dataclass(frozen=True, eq=False)
class Window(RelNode):
    """Appends window-function columns to the input schema."""

    input: RelNode
    calls: tuple[WindowCall, ...]

    @property
    def schema(self) -> Schema:
        columns = list(self.input.schema.columns)
        columns.extend(Column(c.name, c.dtype) for c in self.calls)
        return Schema(columns)

    @property
    def inputs(self):
        return (self.input,)

    def with_inputs(self, inputs):
        (child,) = inputs
        return Window(child, self.calls)

    @property
    def digest(self) -> str:
        calls = ",".join(c.digest for c in self.calls)
        return f"Window({calls})\n{self.input.digest}"

    def _explain_label(self) -> str:
        return f"Window({','.join(c.digest for c in self.calls)})"


# --------------------------------------------------------------------------- #
# binary / n-ary operators

@dataclass(frozen=True, eq=False)
class Join(RelNode):
    """``kind`` in inner/left/right/full/semi/anti; condition over the

    concatenated (left ++ right) schema."""

    left: RelNode
    right: RelNode
    kind: str
    condition: Optional[RexNode] = None

    @property
    def schema(self) -> Schema:
        if self.kind in ("semi", "anti"):
            return self.left.schema
        left, right = self.left.schema, self.right.schema
        if self.kind in ("left", "full"):
            right = Schema(replace(c, nullable=True) for c in right.columns)
        if self.kind in ("right", "full"):
            left = Schema(replace(c, nullable=True) for c in left.columns)
        return left.concat(right, dedupe=True)

    @property
    def inputs(self):
        return (self.left, self.right)

    def with_inputs(self, inputs):
        left, right = inputs
        return Join(left, right, self.kind, self.condition)

    def condition_columns(self) -> tuple:
        """Row type the join condition is resolved against: the raw
        left ++ right concatenation (even for semi/anti joins, whose
        *output* schema is the left side only)."""
        return self.left.schema.columns + self.right.schema.columns

    @property
    def digest(self) -> str:
        cond = self.condition.digest if self.condition else "true"
        return (f"Join({self.kind} cond={cond})\n"
                f"{self.left.digest}\n{self.right.digest}")

    def _explain_label(self) -> str:
        cond = self.condition.digest if self.condition else "true"
        return f"Join(kind={self.kind}, condition={cond})"


@dataclass(frozen=True, eq=False)
class Union(RelNode):
    rels: tuple[RelNode, ...]
    all: bool = True

    @property
    def schema(self) -> Schema:
        return self.rels[0].schema

    @property
    def inputs(self):
        return self.rels

    def with_inputs(self, inputs):
        return Union(tuple(inputs), self.all)

    @property
    def digest(self) -> str:
        inner = "\n".join(r.digest for r in self.rels)
        return f"Union(all={self.all})\n{inner}"

    def _explain_label(self) -> str:
        return f"Union(all={self.all})"


@dataclass(frozen=True, eq=False)
class SetOp(RelNode):
    """INTERSECT / EXCEPT (always set semantics unless ``all``)."""

    kind: str                # intersect | except
    left: RelNode
    right: RelNode
    all: bool = False

    @property
    def schema(self) -> Schema:
        return self.left.schema

    @property
    def inputs(self):
        return (self.left, self.right)

    def with_inputs(self, inputs):
        left, right = inputs
        return SetOp(self.kind, left, right, self.all)

    @property
    def digest(self) -> str:
        return (f"SetOp({self.kind} all={self.all})\n"
                f"{self.left.digest}\n{self.right.digest}")

    def _explain_label(self) -> str:
        return f"SetOp(kind={self.kind}, all={self.all})"


# --------------------------------------------------------------------------- #
# traversal helpers

def walk(rel: RelNode):
    """Pre-order traversal."""
    yield rel
    for child in rel.inputs:
        yield from walk(child)


def transform_bottom_up(rel: RelNode, fn) -> RelNode:
    """Rebuild the tree applying ``fn`` to each node after its children."""
    new_inputs = [transform_bottom_up(c, fn) for c in rel.inputs]
    if list(rel.inputs) != new_inputs:
        rel = rel.with_inputs(new_inputs)
    replaced = fn(rel)
    return replaced if replaced is not None else rel


def find_scans(rel: RelNode) -> list[TableScan]:
    return [n for n in walk(rel) if isinstance(n, TableScan)]


def node_count(rel: RelNode) -> int:
    return sum(1 for _ in walk(rel))
