"""Row expressions (Rex) — the typed expression language inside plans.

Mirrors Calcite's RexNode: after semantic analysis, every expression is
resolved to input ordinals and annotated with a type.  Rex trees are
immutable, hashable, and carry a stable ``digest`` used for plan
comparison (shared-work optimization, MV rewriting, result cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..common.types import BOOLEAN, DataType

#: operators whose result type is BOOLEAN regardless of operands
BOOLEAN_OPS = frozenset({
    "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "NOT", "IS_NULL",
    "IS_NOT_NULL", "LIKE", "NOT_LIKE", "IN", "NOT_IN", "BETWEEN",
    "NOT_BETWEEN",
})

#: operators that are commutative-associative for normalization purposes
_COMMUTATIVE = frozenset({"+", "*", "=", "<>", "AND", "OR"})


class RexNode:
    """Base class for row expressions."""

    dtype: DataType

    @property
    def digest(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def input_refs(self) -> set[int]:
        """Ordinals of all input columns referenced by this expression."""
        refs: set[int] = set()
        _collect_refs(self, refs)
        return refs

    def __repr__(self) -> str:
        return self.digest

    def __eq__(self, other) -> bool:
        return isinstance(other, RexNode) and self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)


@dataclass(frozen=True, eq=False)
class RexInputRef(RexNode):
    """Reference to the input row's column by ordinal."""

    index: int
    dtype: DataType

    @property
    def digest(self) -> str:
        return f"$" + str(self.index)


@dataclass(frozen=True, eq=False)
class RexLiteral(RexNode):
    """A constant value (already in Python-value form, not storage form)."""

    value: object
    dtype: DataType

    @property
    def digest(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class RexCall(RexNode):
    """An operator or function application."""

    op: str
    operands: tuple[RexNode, ...]
    dtype: DataType

    @property
    def digest(self) -> str:
        inner = ", ".join(o.digest for o in self.operands)
        return f"{self.op}({inner})"

    def is_boolean(self) -> bool:
        return self.op in BOOLEAN_OPS or self.dtype == BOOLEAN


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate in an Aggregate node.

    ``arg`` is the input ordinal (None for ``count(*)``); ``name`` is the
    output column name.
    """

    func: str               # sum, count, min, max, avg, count_distinct
    arg: Optional[int]
    dtype: DataType
    name: str
    distinct: bool = False

    @property
    def digest(self) -> str:
        arg = "*" if self.arg is None else f"${self.arg}"
        d = "DISTINCT " if self.distinct else ""
        return f"{self.func}({d}{arg})"


# --------------------------------------------------------------------------- #
# construction and manipulation helpers

def make_call(op: str, *operands: RexNode,
              dtype: Optional[DataType] = None) -> RexCall:
    """Build a call, defaulting boolean ops to BOOLEAN type."""
    if dtype is None:
        if op in BOOLEAN_OPS:
            dtype = BOOLEAN
        else:
            dtype = operands[0].dtype
    return RexCall(op, tuple(operands), dtype)


def conjunctions(expr: Optional[RexNode]) -> list[RexNode]:
    """Flatten an AND tree into its conjuncts (None → [])."""
    if expr is None:
        return []
    if isinstance(expr, RexCall) and expr.op == "AND":
        out: list[RexNode] = []
        for operand in expr.operands:
            out.extend(conjunctions(operand))
        return out
    return [expr]


def make_and(conjuncts: list[RexNode]) -> Optional[RexNode]:
    """Rebuild an AND tree (inverse of :func:`conjunctions`)."""
    conjuncts = [c for c in conjuncts if c is not None]
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = make_call("AND", result, conjunct)
    return result


def shift_refs(expr: RexNode, offset: int) -> RexNode:
    """Shift every input ordinal by ``offset`` (join-side remapping)."""
    return remap_refs(expr, lambda i: i + offset)


def remap_refs(expr: RexNode, mapping: Callable[[int], int]) -> RexNode:
    """Rewrite input ordinals via ``mapping``."""
    if isinstance(expr, RexInputRef):
        return RexInputRef(mapping(expr.index), expr.dtype)
    if isinstance(expr, RexCall):
        return RexCall(expr.op,
                       tuple(remap_refs(o, mapping) for o in expr.operands),
                       expr.dtype)
    return expr


def _collect_refs(expr: RexNode, refs: set[int]) -> None:
    if isinstance(expr, RexInputRef):
        refs.add(expr.index)
    elif isinstance(expr, RexCall):
        for operand in expr.operands:
            _collect_refs(operand, refs)


def is_literal(expr: RexNode) -> bool:
    return isinstance(expr, RexLiteral)


def type_errors(expr: RexNode, columns) -> list[str]:
    """Structural/type problems of ``expr`` against an input row type.

    ``columns`` is any ordered sequence of Column (a Schema works).  Used
    by the plan validator (repro.lint.plan_check): every input ref must
    land inside the row type with a matching declared type, and boolean
    operators must be typed BOOLEAN.
    """
    problems: list[str] = []
    width = len(columns)

    def visit(e: RexNode) -> None:
        if isinstance(e, RexInputRef):
            if not 0 <= e.index < width:
                problems.append(
                    f"input ref ${e.index} out of range "
                    f"(input width {width})")
            elif columns[e.index].dtype != e.dtype:
                problems.append(
                    f"input ref ${e.index} typed {e.dtype}, but input "
                    f"column {columns[e.index].name!r} is "
                    f"{columns[e.index].dtype}")
        elif isinstance(e, RexCall):
            if e.op in BOOLEAN_OPS and e.dtype != BOOLEAN:
                problems.append(
                    f"boolean operator {e.op} typed {e.dtype}")
            for operand in e.operands:
                visit(operand)

    visit(expr)
    return problems


def references_only(expr: RexNode, allowed: set[int]) -> bool:
    """True if the expression touches no ordinal outside ``allowed``."""
    return expr.input_refs() <= allowed


def split_equi_condition(condition: Optional[RexNode], left_width: int,
                         ) -> tuple[list[tuple[int, int]], list[RexNode]]:
    """Split a join condition into equi-key pairs and a residual.

    Returns ``(pairs, residual)`` where each pair is (left ordinal, right
    ordinal relative to the right input) for conjuncts of the form
    ``left_col = right_col``; everything else lands in ``residual``.
    """
    pairs: list[tuple[int, int]] = []
    residual: list[RexNode] = []
    for conjunct in conjunctions(condition):
        pair = _as_equi_pair(conjunct, left_width)
        if pair is not None:
            pairs.append(pair)
        else:
            residual.append(conjunct)
    return pairs, residual


def _as_equi_pair(expr: RexNode,
                  left_width: int) -> Optional[tuple[int, int]]:
    if not (isinstance(expr, RexCall) and expr.op == "="
            and len(expr.operands) == 2):
        return None
    a, b = expr.operands
    if not (isinstance(a, RexInputRef) and isinstance(b, RexInputRef)):
        return None
    if a.index < left_width <= b.index:
        return (a.index, b.index - left_width)
    if b.index < left_width <= a.index:
        return (b.index, a.index - left_width)
    return None
