"""Logical query algebra (Calcite-style RelNodes and RexNodes)."""

from .rexnodes import (AggregateCall, RexCall, RexInputRef, RexLiteral,
                       RexNode)
from .relnodes import (Aggregate, Filter, Join, Limit, Project, RelNode,
                       SetOp, Sort, SortKey, TableScan, Union, Values,
                       Window, WindowCall)

__all__ = [
    "AggregateCall", "RexCall", "RexInputRef", "RexLiteral", "RexNode",
    "Aggregate", "Filter", "Join", "Limit", "Project", "RelNode", "SetOp",
    "Sort", "SortKey", "TableScan", "Union", "Values", "Window",
    "WindowCall",
]
