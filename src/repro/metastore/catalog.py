"""Catalog objects stored in the Metastore.

Tables carry everything the paper's HMS records: schema, the
``PARTITIONED BY`` layout (Section 3.1), ACID-ness, integrity constraints
(used by the MV rewriting algorithm of Section 4.4), storage handler
bindings for federated tables (Section 6.1), materialized-view metadata,
and free-form table properties (e.g. the MV staleness window).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.rows import Column, Schema
from ..errors import CatalogError


class TableKind(enum.Enum):
    MANAGED = "MANAGED_TABLE"
    EXTERNAL = "EXTERNAL_TABLE"
    MATERIALIZED_VIEW = "MATERIALIZED_VIEW"


@dataclass(frozen=True)
class ForeignKey:
    """FOREIGN KEY (columns) REFERENCES ref_table (ref_columns)."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass
class Constraints:
    """Declared (not enforced) integrity constraints, per Section 4.4."""

    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    unique_keys: list[tuple[str, ...]] = field(default_factory=list)
    not_null: frozenset[str] = frozenset()


@dataclass
class MaterializedViewInfo:
    """Metadata attached to a materialized view.

    ``source_tables`` and ``snapshot_write_ids`` pin the view contents to
    the transactional snapshot it was built from; the rewrite engine
    compares them against current table states to decide freshness
    (Section 4.4, "materialized view lifecycle").
    """

    definition_sql: str
    source_tables: tuple[str, ...]
    snapshot_write_ids: dict[str, int] = field(default_factory=dict)
    rebuild_time: float = 0.0
    allowed_staleness_s: float = 0.0
    enabled_for_rewrite: bool = True


@dataclass
class PartitionDescriptor:
    """One horizontal partition: its values and directory."""

    values: tuple
    location: str

    def spec_string(self, partition_cols: Sequence[Column]) -> str:
        pairs = [f"{c.name}={v}" for c, v in zip(partition_cols, self.values)]
        return "/".join(pairs)


@dataclass
class TableDescriptor:
    """Everything HMS knows about one table."""

    database: str
    name: str
    schema: Schema
    partition_columns: tuple[Column, ...] = ()
    kind: TableKind = TableKind.MANAGED
    file_format: str = "orc"
    is_acid: bool = False
    location: str = ""
    storage_handler: Optional[str] = None
    properties: dict = field(default_factory=dict)
    constraints: Constraints = field(default_factory=Constraints)
    mv_info: Optional[MaterializedViewInfo] = None
    partitions: dict[tuple, PartitionDescriptor] = field(default_factory=dict)
    bloom_filter_columns: tuple[str, ...] = ()

    def __post_init__(self):
        overlap = {c.name.lower() for c in self.partition_columns} & {
            c.name.lower() for c in self.schema}
        if overlap:
            raise CatalogError(
                f"partition columns duplicate data columns: {sorted(overlap)}")

    # -- identity ----------------------------------------------------------- #
    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"

    @property
    def is_partitioned(self) -> bool:
        return bool(self.partition_columns)

    @property
    def is_materialized_view(self) -> bool:
        return self.kind is TableKind.MATERIALIZED_VIEW

    # -- schema views ------------------------------------------------------- #
    def full_schema(self) -> Schema:
        """Data columns followed by partition columns (scan output)."""
        return Schema(list(self.schema.columns) +
                      list(self.partition_columns))

    def partition_schema(self) -> Schema:
        return Schema(self.partition_columns)

    # -- partitions --------------------------------------------------------- #
    def add_partition(self, values: tuple, location: str) -> PartitionDescriptor:
        if len(values) != len(self.partition_columns):
            raise CatalogError(
                f"{self.qualified_name}: partition spec has {len(values)} "
                f"values, table has {len(self.partition_columns)} partition "
                "columns")
        if values in self.partitions:
            raise CatalogError(
                f"partition {values} already exists in {self.qualified_name}")
        descriptor = PartitionDescriptor(values, location)
        self.partitions[values] = descriptor
        return descriptor

    def get_partition(self, values: tuple) -> PartitionDescriptor:
        try:
            return self.partitions[values]
        except KeyError:
            raise CatalogError(
                f"no partition {values} in {self.qualified_name}") from None

    def drop_partition(self, values: tuple) -> PartitionDescriptor:
        descriptor = self.get_partition(values)
        del self.partitions[values]
        return descriptor

    def list_partitions(self) -> list[PartitionDescriptor]:
        return [self.partitions[k] for k in sorted(self.partitions,
                                                   key=repr)]


@dataclass
class Database:
    name: str
    tables: dict[str, TableDescriptor] = field(default_factory=dict)
    comment: str = ""
