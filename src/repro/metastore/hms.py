"""The Hive Metastore service facade.

HMS is "a catalog for all data queryable by Hive" (Section 2).  This class
owns:

* databases, tables, partitions and their locations on the simulated FS,
* additive table/partition statistics (Section 4.1),
* the transaction and lock managers (Section 3.2),
* the materialized-view registry with freshness metadata (Section 4.4),
* workload-management resource plans (Section 5.2),
* the compaction queue (Section 3.2),
* a notification-event log consumed by storage-handler metastore hooks
  (Section 6.1).
"""

from __future__ import annotations

import itertools
import threading

from ..common import sync
from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.rows import Column, Schema
from ..errors import CatalogError
from ..fs import SimFileSystem
from .catalog import (Constraints, Database, MaterializedViewInfo,
                      PartitionDescriptor, TableDescriptor, TableKind)
from .compaction import CompactionQueue
from .locks import LockManager
from .stats import TableStatistics
from .txn import TransactionManager

WAREHOUSE_ROOT = "/warehouse"


@dataclass
class NotificationEvent:
    event_id: int
    event_type: str           # CREATE_TABLE, DROP_TABLE, ADD_PARTITION, INSERT...
    table: str
    payload: dict


@dataclass
class ProvenanceRecord:
    """One table→table data-flow edge (the Atlas side of HMS).

    Registered by the built-in provenance hook for CTAS / INSERT / MV
    statements; ``kind`` is ``ctas`` | ``insert`` | ``mv``.  Records
    follow tables through RENAME and are tombstoned (not deleted) on
    DROP, so impact analysis keeps its history.
    """

    dst_table: str
    src_table: str
    kind: str
    first_at_s: float = 0.0
    last_at_s: float = 0.0
    statements: int = 1
    tombstoned: bool = False


class HiveMetastore:
    """One metastore instance shared by all sessions of a warehouse."""

    def __init__(self, fs: SimFileSystem):
        self.fs = fs
        self._lock = sync.new_rlock('HiveMetastore._lock')
        self._databases: dict[str, Database] = {}
        self._stats: dict[tuple[str, tuple | None], TableStatistics] = {}
        self.txn_manager = TransactionManager()
        self.lock_manager = LockManager()
        self.compaction_queue = CompactionQueue()
        self._resource_plans: dict[str, object] = {}
        self._active_resource_plan: Optional[str] = None
        self._events: list[NotificationEvent] = []
        self._event_counter = itertools.count(1)
        #: per-table metadata generation: bumped on every DDL event and
        #: on every statistics change, so a compiled plan (which bakes
        #: in partition pruning and stats-driven decisions) can be
        #: validated cheaply by the serving layer's plan cache
        self._plan_versions: dict[str, int] = {}
        #: runtime statistics captured during execution, persisted here
        #: so the optimizer can feed them back (§4.2 / §9 roadmap):
        #: plan-node digest -> last observed output cardinality
        self._runtime_stats: dict[str, int] = {}
        #: table→table provenance, keyed (dst, src, kind); the store
        #: behind sys.lineage_tables
        self._provenance: dict[tuple[str, str, str],
                               ProvenanceRecord] = {}
        self.create_database("default", if_not_exists=True)
        fs.mkdirs(WAREHOUSE_ROOT)

    # ------------------------------------------------------------------ #
    # databases
    def create_database(self, name: str, if_not_exists: bool = False) -> Database:
        name = name.lower()
        with self._lock:
            if name in self._databases:
                if if_not_exists:
                    return self._databases[name]
                raise CatalogError(f"database {name} already exists")
            db = Database(name)
            self._databases[name] = db
            self.fs.mkdirs(f"{WAREHOUSE_ROOT}/{name}")
            return db

    def get_database(self, name: str) -> Database:
        with self._lock:
            try:
                return self._databases[name.lower()]
            except KeyError:
                raise CatalogError(f"no such database: {name}") from None

    def list_databases(self) -> list[str]:
        with self._lock:
            return sorted(self._databases)

    # ------------------------------------------------------------------ #
    # tables
    def create_table(self, database: str, name: str, schema: Schema,
                     partition_columns: Sequence[Column] = (),
                     kind: TableKind = TableKind.MANAGED,
                     file_format: str = "orc",
                     is_acid: bool = False,
                     storage_handler: Optional[str] = None,
                     properties: Optional[dict] = None,
                     constraints: Optional[Constraints] = None,
                     mv_info: Optional[MaterializedViewInfo] = None,
                     bloom_filter_columns: Sequence[str] = (),
                     ) -> TableDescriptor:
        database = database.lower()
        name = name.lower()
        with self._lock:
            db = self.get_database(database)
            if name in db.tables:
                raise CatalogError(
                    f"table {database}.{name} already exists")
            location = f"{WAREHOUSE_ROOT}/{database}/{name}"
            table = TableDescriptor(
                database=database, name=name, schema=schema,
                partition_columns=tuple(partition_columns), kind=kind,
                file_format=file_format, is_acid=is_acid,
                location=location, storage_handler=storage_handler,
                properties=dict(properties or {}),
                constraints=constraints or Constraints(),
                mv_info=mv_info,
                bloom_filter_columns=tuple(bloom_filter_columns))
            db.tables[name] = table
            if storage_handler is None:
                self.fs.mkdirs(location)
            self._stats[(table.qualified_name, None)] = TableStatistics()
            self._emit("CREATE_TABLE", table.qualified_name, {})
            if mv_info is not None:
                # a new rewrite candidate changes how queries over its
                # SOURCE tables should compile: invalidate their plans
                for source in mv_info.source_tables:
                    self._bump_plan_version(source)
            return table

    def get_table(self, name: str, database: str = "default") -> TableDescriptor:
        """Resolve ``db.table`` or bare ``table`` in ``database``."""
        if "." in name:
            database, name = name.split(".", 1)
        db = self.get_database(database)
        try:
            return db.tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no such table: {database}.{name}") from None

    def table_exists(self, name: str, database: str = "default") -> bool:
        try:
            self.get_table(name, database)
            return True
        except CatalogError:
            return False

    def drop_table(self, name: str, database: str = "default",
                   purge: bool = True) -> None:
        with self._lock:
            table = self.get_table(name, database)
            del self._databases[table.database].tables[table.name]
            self._stats.pop((table.qualified_name, None), None)
            for values in list(table.partitions):
                self._stats.pop((table.qualified_name, values), None)
            if purge and table.storage_handler is None and self.fs.exists(
                    table.location):
                self.fs.delete(table.location, recursive=True)
            # provenance outlives the table, marked as historical
            dropped = table.qualified_name
            for record in self._provenance.values():
                if dropped in (record.dst_table, record.src_table):
                    record.tombstoned = True
            self._emit("DROP_TABLE", table.qualified_name, {})

    def rename_table(self, name: str, new_name: str,
                     database: str = "default") -> TableDescriptor:
        """Metadata-only rename within the table's database.

        The catalog entry, statistics keys, plan versions and
        provenance records all follow the new name; file locations are
        left in place (Hive's rename is a metadata operation for
        external tables, and our simulated FS paths are opaque).
        """
        new_name = new_name.lower()
        if "." in new_name:
            raise CatalogError(
                "RENAME target must be a bare table name")
        with self._lock:
            table = self.get_table(name, database)
            db = self._databases[table.database]
            if new_name in db.tables:
                raise CatalogError(
                    f"table {table.database}.{new_name} already exists")
            old_qualified = table.qualified_name
            del db.tables[table.name]
            table.name = new_name
            db.tables[new_name] = table
            new_qualified = table.qualified_name
            for key in [k for k in self._stats
                        if k[0] == old_qualified]:
                self._stats[(new_qualified, key[1])] = \
                    self._stats.pop(key)
            for key in [k for k in self._provenance
                        if old_qualified in (k[0], k[1])]:
                record = self._provenance.pop(key)
                if record.dst_table == old_qualified:
                    record.dst_table = new_qualified
                if record.src_table == old_qualified:
                    record.src_table = new_qualified
                self._provenance[(record.dst_table, record.src_table,
                                  record.kind)] = record
            # ACID write-id history follows the name, or readers would
            # see an empty watermark and hide every committed row
            self.txn_manager.rename_table(old_qualified, new_qualified)
            # both names' compiled plans are stale now
            self._bump_plan_version(new_qualified)
            self._emit("ALTER_TABLE_RENAME", old_qualified,
                       {"new_name": new_qualified})
            return table

    def list_tables(self, database: str = "default") -> list[str]:
        return sorted(self.get_database(database).tables)

    # ------------------------------------------------------------------ #
    # table provenance (the Atlas integration point, Section 6)
    def record_provenance(self, dst_table: str, src_table: str,
                          kind: str, at_s: float) -> None:
        """Upsert one dst←src data-flow edge (virtual-clock stamped)."""
        key = (dst_table.lower(), src_table.lower(), kind)
        with self._lock:
            record = self._provenance.get(key)
            if record is None:
                self._provenance[key] = ProvenanceRecord(
                    dst_table=key[0], src_table=key[1], kind=kind,
                    first_at_s=at_s, last_at_s=at_s)
                return
            record.last_at_s = max(record.last_at_s, at_s)
            record.statements += 1
            # a fresh write into a previously-dropped name revives it
            record.tombstoned = False

    def provenance_rows(self) -> list[ProvenanceRecord]:
        """Every provenance record (tombstones included), stable order."""
        with self._lock:
            return sorted(
                (ProvenanceRecord(**vars(r))
                 for r in self._provenance.values()),
                key=lambda r: (r.dst_table, r.src_table, r.kind))

    # ------------------------------------------------------------------ #
    # partitions
    def add_partition(self, table: TableDescriptor,
                      values: tuple) -> PartitionDescriptor:
        with self._lock:
            spec = "/".join(
                f"{c.name}={v}"
                for c, v in zip(table.partition_columns, values))
            location = f"{table.location}/{spec}"
            descriptor = table.add_partition(values, location)
            self.fs.mkdirs(location)
            self._emit("ADD_PARTITION", table.qualified_name,
                       {"values": values})
            return descriptor

    def get_or_add_partition(self, table: TableDescriptor,
                             values: tuple) -> PartitionDescriptor:
        if values in table.partitions:
            return table.partitions[values]
        return self.add_partition(table, values)

    def drop_partition(self, table: TableDescriptor, values: tuple,
                       purge: bool = True) -> None:
        with self._lock:
            descriptor = table.drop_partition(values)
            self._stats.pop((table.qualified_name, values), None)
            if purge and self.fs.exists(descriptor.location):
                self.fs.delete(descriptor.location, recursive=True)
            self._emit("DROP_PARTITION", table.qualified_name,
                       {"values": values})

    # ------------------------------------------------------------------ #
    # statistics (additive, Section 4.1)
    def update_statistics(self, table: TableDescriptor,
                          delta: TableStatistics,
                          partition: tuple | None = None) -> None:
        """Merge ``delta`` into existing stats (inserts add on)."""
        with self._lock:
            key = (table.qualified_name, partition)
            existing = self._stats.get(key)
            self._stats[key] = existing.merge(delta) if existing else delta
            if partition is not None:
                # roll partition deltas into the table-level aggregate too
                table_key = (table.qualified_name, None)
                table_stats = self._stats.get(table_key)
                self._stats[table_key] = (table_stats.merge(delta)
                                          if table_stats else delta.copy())
            self._bump_plan_version(table.qualified_name)

    def set_statistics(self, table: TableDescriptor, stats: TableStatistics,
                       partition: tuple | None = None) -> None:
        """Replace stats wholesale (ANALYZE TABLE / full rebuild)."""
        with self._lock:
            self._stats[(table.qualified_name, partition)] = stats
            self._bump_plan_version(table.qualified_name)

    def get_statistics(self, table: TableDescriptor,
                       partition: tuple | None = None) -> TableStatistics:
        with self._lock:
            stats = self._stats.get((table.qualified_name, partition))
            return stats.copy() if stats else TableStatistics()

    # ------------------------------------------------------------------ #
    # materialized views (Section 4.4)
    def list_materialized_views(self) -> list[TableDescriptor]:
        with self._lock:
            out = []
            for db in self._databases.values():
                for table in db.tables.values():
                    if table.is_materialized_view:
                        out.append(table)
            return sorted(out, key=lambda t: t.qualified_name)

    def views_enabled_for_rewrite(self) -> list[TableDescriptor]:
        return [v for v in self.list_materialized_views()
                if v.mv_info is not None and v.mv_info.enabled_for_rewrite]

    def is_view_fresh(self, view: TableDescriptor,
                      now_s: float = 0.0) -> bool:
        """Fresh if no source table advanced past the snapshot the view was

        built from, or staleness is within the allowed window."""
        info = view.mv_info
        if info is None:
            return False
        stale = False
        for source in info.source_tables:
            current = self.txn_manager.current_write_id(source)
            if current > info.snapshot_write_ids.get(source, 0):
                stale = True
                break
        if not stale:
            return True
        if info.allowed_staleness_s > 0:
            return (now_s - info.rebuild_time) <= info.allowed_staleness_s
        return False

    # ------------------------------------------------------------------ #
    # resource plans (Section 5.2) — persisted by HMS
    def save_resource_plan(self, name: str, plan: object) -> None:
        with self._lock:
            self._resource_plans[name.lower()] = plan

    def get_resource_plan(self, name: str) -> object:
        with self._lock:
            try:
                return self._resource_plans[name.lower()]
            except KeyError:
                raise CatalogError(
                    f"no such resource plan: {name}") from None

    def activate_resource_plan(self, name: str) -> None:
        with self._lock:
            if name.lower() not in self._resource_plans:
                raise CatalogError(f"no such resource plan: {name}")
            self._active_resource_plan = name.lower()

    def active_resource_plan(self) -> object | None:
        with self._lock:
            if self._active_resource_plan is None:
                return None
            return self._resource_plans[self._active_resource_plan]

    # ------------------------------------------------------------------ #
    # runtime statistics (Section 4.2; §9: "feedback that information
    # into the optimizer")
    def record_runtime_stats(self, stats: dict[str, int]) -> None:
        with self._lock:
            self._runtime_stats.update(stats)

    def runtime_stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self._runtime_stats)

    def clear_runtime_stats(self) -> None:
        with self._lock:
            self._runtime_stats.clear()

    # ------------------------------------------------------------------ #
    # notification events (Section 6.1, metastore hooks)
    def _emit(self, event_type: str, table: str, payload: dict) -> None:
        # caller holds self._lock (see emit_event and the DDL methods)
        self._events.append(NotificationEvent(  # reprolint: disable=RL001
            next(self._event_counter), event_type, table, payload))
        self._bump_plan_version(table)

    def _bump_plan_version(self, table: str) -> None:
        # caller holds self._lock (every DDL/stats path takes it)
        key = table.lower()
        versions = self._plan_versions
        versions[key] = versions.get(key, 0) + 1

    def plan_versions(self, tables) -> dict[str, int]:
        """Current plan-relevant metadata generation per table.

        The serving layer's compiled plan cache snapshots these at store
        time; any mismatch at lookup time invalidates the cached plan
        (DDL, new partitions, or statistics changes may all have shifted
        pruning and join decisions baked into it).
        """
        with self._lock:
            return {t: self._plan_versions.get(t.lower(), 0)
                    for t in tables}

    def emit_event(self, event_type: str, table: str, payload: dict) -> None:
        with self._lock:
            self._emit(event_type, table, payload)

    def events_since(self, event_id: int) -> list[NotificationEvent]:
        with self._lock:
            return [e for e in self._events if e.event_id > event_id]
