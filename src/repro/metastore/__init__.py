"""Hive Metastore (HMS): catalog, statistics, transactions, locks."""

from .catalog import (Database, PartitionDescriptor, TableDescriptor,
                      TableKind)
from .hms import HiveMetastore
from .locks import LockManager, LockType
from .stats import ColumnStatistics, TableStatistics
from .txn import Snapshot, TransactionManager, TxnState, ValidWriteIdList

__all__ = [
    "Database", "PartitionDescriptor", "TableDescriptor", "TableKind",
    "HiveMetastore", "LockManager", "LockType", "ColumnStatistics",
    "TableStatistics", "Snapshot", "TransactionManager", "TxnState",
    "ValidWriteIdList",
]
