"""Lock manager (Section 3.2, "Transaction and lock management").

Lock granularity follows the paper: a partition for partitioned tables,
the whole table otherwise.  Ordinary reads and writes take **shared**
locks; only operations that disrupt both readers and writers (DROP TABLE,
DROP PARTITION) take **exclusive** locks.  Update/delete conflicts are
*not* resolved here — they use the optimistic write-set check at commit
time in :mod:`repro.metastore.txn`.
"""

from __future__ import annotations

import enum
import threading

from ..common import sync
from dataclasses import dataclass, field

from ..errors import LockTimeoutError, TransactionError


class LockType(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass(frozen=True)
class LockKey:
    """(table, partition values or None) — the lockable unit."""

    table: str
    partition: tuple | None = None

    def conflicts_with(self, other: "LockKey") -> bool:
        if self.table != other.table:
            return False
        if self.partition is None or other.partition is None:
            # table-level lock covers all partitions
            return True
        return self.partition == other.partition


@dataclass
class _Held:
    key: LockKey
    lock_type: LockType
    txn_id: int


@dataclass
class _Waiter:
    """A pending acquire, queued in arrival order for fairness."""

    seq: int
    key: LockKey
    lock_type: LockType
    txn_id: int


class LockManager:
    """Blocking lock table with timeout; locks are owned by transactions.

    Grants are FIFO-fair: a SHARED request is not granted past an
    earlier-queued conflicting EXCLUSIVE request, otherwise steady read
    traffic starves writers (DROP TABLE would time out forever under
    continuous readers).
    """

    def __init__(self, default_timeout_s: float = 5.0):
        self._cond = sync.new_condition('LockManager._cond')
        self._held: list[_Held] = []
        self._waiters: list[_Waiter] = []
        self._seq = 0
        self.default_timeout_s = default_timeout_s

    # -- acquisition ----------------------------------------------------------- #
    def acquire(self, txn_id: int, table: str, partition: tuple | None,
                lock_type: LockType, timeout_s: float | None = None) -> None:
        """Block until the lock is grantable or the timeout elapses."""
        key = LockKey(table.lower(),
                      tuple(partition) if partition is not None else None)
        deadline = (timeout_s if timeout_s is not None
                    else self.default_timeout_s)
        with self._cond:
            self._seq += 1
            waiter = _Waiter(self._seq, key, lock_type, txn_id)
            self._waiters.append(waiter)
            try:
                if not self._cond.wait_for(
                        lambda: self._grantable(waiter),
                        timeout=deadline):
                    raise LockTimeoutError(
                        f"txn {txn_id}: timed out acquiring "
                        f"{lock_type.value} lock on {key.table} "
                        f"partition {key.partition}")
                self._held.append(_Held(key, lock_type, txn_id))
            finally:
                # on grant *or* timeout the queue entry goes away, and
                # anyone queued behind it must re-evaluate (a timed-out
                # EXCLUSIVE no longer bars the SHARED requests after it)
                self._waiters.remove(waiter)
                self._cond.notify_all()

    def _grantable(self, waiter: _Waiter) -> bool:
        for held in self._held:
            if held.txn_id == waiter.txn_id:
                continue  # re-entrant within a transaction
            if not held.key.conflicts_with(waiter.key):
                continue
            if (waiter.lock_type is LockType.EXCLUSIVE
                    or held.lock_type is LockType.EXCLUSIVE):
                return False
        if waiter.lock_type is LockType.SHARED:
            # fairness: don't jump an exclusive request that queued first
            for other in self._waiters:
                if (other.seq < waiter.seq
                        and other.txn_id != waiter.txn_id
                        and other.lock_type is LockType.EXCLUSIVE
                        and other.key.conflicts_with(waiter.key)):
                    return False
        return True

    # -- release ------------------------------------------------------------ #
    def release_all(self, txn_id: int) -> int:
        """Release every lock owned by ``txn_id`` (commit/abort path)."""
        with self._cond:
            before = len(self._held)
            self._held = [h for h in self._held if h.txn_id != txn_id]
            released = before - len(self._held)
            if released:
                self._cond.notify_all()
            return released

    # -- introspection -------------------------------------------------------- #
    def waiting(self) -> list[tuple]:
        """Queued (not yet granted) requests, in arrival order."""
        with self._cond:
            return [(w.key.table, w.key.partition, w.lock_type, w.txn_id)
                    for w in sorted(self._waiters, key=lambda w: w.seq)]

    def locks_held(self, txn_id: int | None = None) -> list[tuple]:
        with self._cond:
            out = []
            for held in self._held:
                if txn_id is None or held.txn_id == txn_id:
                    out.append((held.key.table, held.key.partition,
                                held.lock_type, held.txn_id))
            return out

    def assert_no_locks(self) -> None:
        with self._cond:
            if self._held:
                raise TransactionError(
                    f"lock leak: {len(self._held)} locks still held")
