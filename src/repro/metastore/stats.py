"""Additive table and column statistics.

Section 4.1: "The statistics are stored such that they can be combined in
an additive fashion ... For the number of distinct values, HMS uses a bit
array representation based on HyperLogLog++ which can be combined without
loss of approximation accuracy."

:class:`ColumnStatistics` therefore keeps min/max/null-count (trivially
mergeable) plus a :class:`~repro.common.hll.HyperLogLog` sketch for NDV,
and :meth:`merge` is exact over concatenated inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..common.hll import HyperLogLog
from ..errors import HiveError

_HLL_PRECISION = 12


@dataclass
class ColumnStatistics:
    """Statistics for one column, mergeable across partitions/inserts."""

    null_count: int = 0
    min_value: object = None
    max_value: object = None
    ndv_sketch: HyperLogLog = field(
        default_factory=lambda: HyperLogLog(_HLL_PRECISION))

    # -- updates ----------------------------------------------------------- #
    def update(self, value) -> None:
        if value is None:
            self.null_count += 1
            return
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self.ndv_sketch.add(value)

    def update_all(self, values: Iterable) -> None:
        for value in values:
            self.update(value)

    # -- queries ------------------------------------------------------------ #
    @property
    def ndv(self) -> int:
        return max(1, self.ndv_sketch.cardinality())

    def range_width(self) -> Optional[float]:
        """Numeric range, if the column is numeric with known bounds."""
        if isinstance(self.min_value, (int, float)) and isinstance(
                self.max_value, (int, float)):
            return float(self.max_value) - float(self.min_value)
        return None

    # -- merging ------------------------------------------------------------ #
    def merge(self, other: "ColumnStatistics") -> "ColumnStatistics":
        merged = ColumnStatistics(
            null_count=self.null_count + other.null_count,
            min_value=_merge_min(self.min_value, other.min_value),
            max_value=_merge_max(self.max_value, other.max_value),
            ndv_sketch=self.ndv_sketch.merge(other.ndv_sketch),
        )
        return merged

    def copy(self) -> "ColumnStatistics":
        return ColumnStatistics(self.null_count, self.min_value,
                                self.max_value, self.ndv_sketch.copy())


@dataclass
class TableStatistics:
    """Row count, size and per-column stats for a table or partition."""

    row_count: int = 0
    total_bytes: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())

    def merge(self, other: "TableStatistics") -> "TableStatistics":
        merged = TableStatistics(self.row_count + other.row_count,
                                 self.total_bytes + other.total_bytes)
        names = set(self.columns) | set(other.columns)
        for name in names:
            mine, theirs = self.columns.get(name), other.columns.get(name)
            if mine and theirs:
                merged.columns[name] = mine.merge(theirs)
            else:
                merged.columns[name] = (mine or theirs).copy()
        return merged

    def copy(self) -> "TableStatistics":
        clone = TableStatistics(self.row_count, self.total_bytes)
        clone.columns = {k: v.copy() for k, v in self.columns.items()}
        return clone

    @classmethod
    def from_rows(cls, schema, rows, row_bytes: int = 0) -> "TableStatistics":
        """Compute full statistics from materialized rows."""
        stats = cls(row_count=len(rows), total_bytes=row_bytes)
        for i, col in enumerate(schema):
            column_stats = ColumnStatistics()
            column_stats.update_all(row[i] for row in rows)
            stats.columns[col.name.lower()] = column_stats
        if row_bytes == 0:
            stats.total_bytes = len(rows) * schema.row_width_bytes()
        return stats


def _merge_min(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _merge_max(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)
