"""Transaction manager (Section 3.2).

Implements the paper's design precisely:

* a global, monotonically increasing **TxnId** per transaction,
* per-table, monotonically increasing **WriteIds** allocated on demand —
  all records written by one transaction to one table share a WriteId,
* **snapshots**: the high-watermark TxnId plus the set of open and aborted
  TxnIds below it, captured when a query starts,
* **ValidWriteIdList**: the snapshot projected onto one table, so readers
  keep per-table state that stays small even with many open transactions,
* **first-commit-wins** conflict detection for UPDATE/DELETE/MERGE via
  write-set tracking at partition granularity.

The manager is thread-safe; HS2 sessions share one instance.
"""

from __future__ import annotations

import enum
import itertools
import threading

from ..common import sync
from dataclasses import dataclass, field

from ..errors import TransactionError, WriteConflictError


class TxnState(enum.Enum):
    OPEN = "open"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class Snapshot:
    """A consistent view of the transactional state of the warehouse."""

    high_watermark: int
    open_txns: frozenset[int]
    aborted_txns: frozenset[int]

    def is_visible(self, txn_id: int) -> bool:
        """Is data committed by ``txn_id`` visible in this snapshot?"""
        if txn_id > self.high_watermark:
            return False
        return txn_id not in self.open_txns and txn_id not in self.aborted_txns


@dataclass(frozen=True)
class ValidWriteIdList:
    """Snapshot restricted to a single table's WriteIds.

    Readers skip rows whose WriteId is above the high watermark or in the
    invalid set (WriteIds allocated by still-open or aborted transactions).
    """

    table: str
    high_watermark: int
    invalid_ids: frozenset[int]

    def is_valid(self, write_id: int) -> bool:
        if write_id > self.high_watermark:
            return False
        return write_id not in self.invalid_ids

    def range_fully_valid(self, min_write_id: int, max_write_id: int) -> bool:
        """True if every WriteId in [min, max] is valid — lets readers

        accept a whole base/delta directory without per-row checks."""
        if max_write_id > self.high_watermark:
            return False
        return not any(min_write_id <= i <= max_write_id
                       for i in self.invalid_ids)


@dataclass(frozen=True)
class DeltaWriteIdList(ValidWriteIdList):
    """A snapshot restricted to rows written *after* ``min_write_id``.

    Used by incremental materialized-view rebuild (Section 4.4): the MV
    definition query re-runs with the changed source reading only the
    delta since the view's snapshot.
    """

    min_write_id: int = 0

    def is_valid(self, write_id: int) -> bool:
        if write_id <= self.min_write_id:
            return False
        return super().is_valid(write_id)

    def range_fully_valid(self, min_write_id: int,
                          max_write_id: int) -> bool:
        # force per-row WriteId checks so pre-snapshot rows are excluded
        return False


@dataclass(frozen=True)
class OwnWriteIdList(ValidWriteIdList):
    """A snapshot extended with the reader's *own* uncommitted WriteId.

    Multi-statement transactions (§9 roadmap) read their own writes:
    the base snapshot marks the open transaction's WriteIds invalid, so
    this wrapper whitelists the one WriteId the transaction holds on the
    table being read.
    """

    own_write_id: int = 0

    def is_valid(self, write_id: int) -> bool:
        if self.own_write_id and write_id == self.own_write_id:
            return True
        return super().is_valid(write_id)

    def range_fully_valid(self, min_write_id: int,
                          max_write_id: int) -> bool:
        # never skip per-row checks: the own id sits above the base
        # snapshot's high watermark semantics
        return False


@dataclass
class _WriteSetEntry:
    table: str
    partition: tuple
    operation: str            # "insert" | "update" | "delete"


@dataclass
class _Transaction:
    txn_id: int
    user: str
    state: TxnState = TxnState.OPEN
    write_ids: dict[str, int] = field(default_factory=dict)
    write_set: list[_WriteSetEntry] = field(default_factory=list)
    commit_txn_id: int | None = None   # TxnId counter value at commit time
    #: virtual-clock stamp of the last heartbeat (open time initially);
    #: the AcidHouseKeeper reaps transactions that stop heartbeating
    last_heartbeat_s: float = 0.0


class TransactionManager:
    """Allocates TxnIds/WriteIds and validates commits."""

    def __init__(self):
        self._lock = sync.new_lock('TransactionManager._lock')
        self._txn_counter = itertools.count(1)
        self._next_txn_id = 0
        self._txns: dict[int, _Transaction] = {}
        self._write_id_counters: dict[str, int] = {}
        # committed write-set entries kept for conflict checks:
        # (table, partition, commit_marker)
        self._committed_write_sets: list[tuple[str, tuple, int, str]] = []
        self._table_write_allocations: dict[str, list[tuple[int, int]]] = {}
        #: global virtual clock: the max of every now_s any session has
        #: reported.  Sessions advance at different virtual rates, so
        #: heartbeats and open stamps use this shared monotonic clock —
        #: a slow session's transaction is never reaped just because a
        #: fast session's clock ran ahead while it kept heartbeating.
        self._clock_s = 0.0

    # -- transaction lifecycle ---------------------------------------------- #
    def open_transaction(self, user: str = "anonymous") -> int:
        with self._lock:
            txn_id = next(self._txn_counter)
            self._next_txn_id = txn_id
            txn = _Transaction(txn_id, user,
                               last_heartbeat_s=self._clock_s)
            self._txns[txn_id] = txn
            return txn_id

    # -- heartbeats & expiry -------------------------------------------------- #
    def advance_clock(self, now_s: float) -> float:
        """Fold a session's virtual time into the global clock."""
        with self._lock:
            self._clock_s = max(self._clock_s, now_s)
            return self._clock_s

    def heartbeat(self, txn_id: int, now_s: float = 0.0) -> None:
        """Refresh a transaction's lease; raises TransactionError if the
        transaction is unknown or already finished (the client learns it
        was reaped)."""
        with self._lock:
            self._clock_s = max(self._clock_s, now_s)
            txn = self._txns.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown txn {txn_id}")
            if txn.state is not TxnState.OPEN:
                raise TransactionError(
                    f"txn {txn_id} is {txn.state.value}, not open "
                    "— cannot heartbeat")
            txn.last_heartbeat_s = self._clock_s

    def expired_txns(self, timeout_s: float) -> list[int]:
        """Open transactions whose last heartbeat is older than
        ``timeout_s`` on the global virtual clock."""
        with self._lock:
            return [t.txn_id for t in self._txns.values()
                    if t.state is TxnState.OPEN
                    and self._clock_s - t.last_heartbeat_s > timeout_s]

    def last_heartbeat_of(self, txn_id: int) -> float:
        with self._lock:
            txn = self._txns.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown txn {txn_id}")
            return txn.last_heartbeat_s

    def commit(self, txn_id: int) -> None:
        """Commit; raises :class:`WriteConflictError` under first-commit-wins.

        A conflict exists when another transaction that committed *after*
        this transaction opened has an update/delete write-set entry on
        the same (table, partition).
        """
        with self._lock:
            txn = self._get_open(txn_id)
            for entry in txn.write_set:
                if entry.operation not in ("update", "delete"):
                    continue
                for (table, partition, commit_marker,
                     operation) in self._committed_write_sets:
                    # conflict iff the other update/delete committed
                    # *after this transaction began* (it was invisible to
                    # our snapshot, so our write would clobber it)
                    if (table == entry.table and partition == entry.partition
                            and commit_marker >= txn.txn_id
                            and operation in ("update", "delete")):
                        txn.state = TxnState.ABORTED
                        raise WriteConflictError(
                            f"txn {txn_id}: write-write conflict on "
                            f"{table} partition {partition} "
                            "(first commit wins)")
            txn.state = TxnState.COMMITTED
            txn.commit_txn_id = self._next_txn_id
            for entry in txn.write_set:
                self._committed_write_sets.append(
                    (entry.table, entry.partition, txn.commit_txn_id,
                     entry.operation))

    def abort(self, txn_id: int) -> None:
        """Abort a transaction.

        Idempotent on an already-aborted transaction: the housekeeper's
        reap races client aborts (and commit itself aborts on a write
        conflict), and both sides must be able to finish the abort they
        observed.  Aborting a *committed* transaction is still an error.
        """
        with self._lock:
            txn = self._txns.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown txn {txn_id}")
            if txn.state is TxnState.ABORTED:
                return
            if txn.state is TxnState.COMMITTED:
                raise TransactionError(
                    f"txn {txn_id} is committed, cannot abort")
            txn.state = TxnState.ABORTED

    def state_of(self, txn_id: int) -> TxnState:
        with self._lock:
            txn = self._txns.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown txn {txn_id}")
            return txn.state

    # -- write ids ------------------------------------------------------------ #
    def allocate_write_id(self, txn_id: int, table: str) -> int:
        """Allocate (or return the already allocated) WriteId for a table."""
        table = table.lower()
        with self._lock:
            txn = self._get_open(txn_id)
            if table in txn.write_ids:
                return txn.write_ids[table]
            write_id = self._write_id_counters.get(table, 0) + 1
            self._write_id_counters[table] = write_id
            txn.write_ids[table] = write_id
            self._table_write_allocations.setdefault(table, []).append(
                (write_id, txn_id))
            return write_id

    def rename_table(self, old_name: str, new_name: str) -> None:
        """Move per-table write-id state to a renamed table's key.

        Without this, a renamed ACID table's valid-write-id list would
        restart at watermark 0 and readers would treat every existing
        delta as uncommitted (invisible rows after RENAME).
        """
        old_name, new_name = old_name.lower(), new_name.lower()
        with self._lock:
            if old_name in self._write_id_counters:
                self._write_id_counters[new_name] = \
                    self._write_id_counters.pop(old_name)
            if old_name in self._table_write_allocations:
                self._table_write_allocations[new_name] = \
                    self._table_write_allocations.pop(old_name)
            self._committed_write_sets = [
                (new_name if table == old_name else table,
                 partition, txn_id, operation)
                for table, partition, txn_id, operation
                in self._committed_write_sets]

    def record_write_set(self, txn_id: int, table: str, partition: tuple,
                         operation: str) -> None:
        if operation not in ("insert", "update", "delete"):
            raise TransactionError(f"unknown write operation {operation!r}")
        with self._lock:
            txn = self._get_open(txn_id)
            txn.write_set.append(
                _WriteSetEntry(table.lower(), tuple(partition), operation))

    # -- snapshots ------------------------------------------------------------ #
    def get_snapshot(self) -> Snapshot:
        with self._lock:
            open_set = frozenset(t.txn_id for t in self._txns.values()
                                 if t.state is TxnState.OPEN)
            aborted = frozenset(t.txn_id for t in self._txns.values()
                                if t.state is TxnState.ABORTED)
            return Snapshot(self._next_txn_id, open_set, aborted)

    def valid_write_ids(self, snapshot: Snapshot,
                        table: str) -> ValidWriteIdList:
        """Project a snapshot onto one table (the per-table list the

        paper keeps small for readers)."""
        table = table.lower()
        with self._lock:
            allocations = self._table_write_allocations.get(table, [])
            high = 0
            invalid = set()
            for write_id, txn_id in allocations:
                if txn_id <= snapshot.high_watermark:
                    high = max(high, write_id)
                    if not snapshot.is_visible(txn_id):
                        invalid.add(write_id)
            return ValidWriteIdList(table, high, frozenset(invalid))

    def write_ids_of(self, txn_id: int) -> dict[str, int]:
        """WriteIds this transaction has allocated, per table."""
        with self._lock:
            txn = self._txns.get(txn_id)
            return dict(txn.write_ids) if txn else {}

    def current_write_id(self, table: str) -> int:
        """Highest WriteId ever allocated for a table (0 if none)."""
        with self._lock:
            return self._write_id_counters.get(table.lower(), 0)

    def min_open_txn(self) -> int | None:
        """Oldest open TxnId; the compaction cleaner must not delete files

        still readable by it (Section 3.2, compaction)."""
        with self._lock:
            open_ids = [t.txn_id for t in self._txns.values()
                        if t.state is TxnState.OPEN]
            return min(open_ids) if open_ids else None

    def open_txn_count(self) -> int:
        with self._lock:
            return sum(1 for t in self._txns.values()
                       if t.state is TxnState.OPEN)

    # -- helpers ------------------------------------------------------------ #
    def _get_open(self, txn_id: int) -> _Transaction:
        try:
            txn = self._txns[txn_id]
        except KeyError:
            raise TransactionError(f"unknown txn {txn_id}") from None
        if txn.state is not TxnState.OPEN:
            raise TransactionError(
                f"txn {txn_id} is {txn.state.value}, not open")
        return txn


class AcidHouseKeeper:
    """Heartbeat reaper (the AcidHouseKeeperService analogue, §3.2).

    Aborts transactions whose heartbeat lease expired and releases their
    locks, so a dead client can't wedge compaction or starve writers.
    Their WriteIds land in every later snapshot's invalid set, which is
    what makes the reaped deltas invisible to ``acid.reader``.
    """

    def __init__(self, txn_manager: TransactionManager, lock_manager,
                 timeout_s: float = 300.0, faults=None):
        self.txn_manager = txn_manager
        self.lock_manager = lock_manager
        self.timeout_s = timeout_s
        #: optional repro.faults.FaultRegistry — reaps are logged there
        self.faults = faults
        self.reaped_total = 0

    def run(self, now_s: float = 0.0) -> list[int]:
        """One housekeeping pass; returns the TxnIds reaped."""
        self.txn_manager.advance_clock(now_s)
        reaped = []
        for txn_id in self.txn_manager.expired_txns(self.timeout_s):
            try:
                self.txn_manager.abort(txn_id)
            except TransactionError:
                continue  # raced a client commit; nothing to reap
            if self.lock_manager is not None:
                self.lock_manager.release_all(txn_id)
            reaped.append(txn_id)
        if reaped:
            self.reaped_total += len(reaped)
            if self.faults is not None:
                for txn_id in reaped:
                    self.faults.clear_stall(txn_id)
                    self.faults.record(
                        "txn.reaped", f"txn {txn_id}",
                        detail=f"heartbeat older than {self.timeout_s:g}s"
                               "; aborted, locks released")
        return reaped
