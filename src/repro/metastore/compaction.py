"""Compaction queue and triggering policy (Section 3.2, "Compaction").

HS2 triggers compaction automatically when thresholds are surpassed:
number of delta directories (→ *minor* compaction: merge deltas into one
delta) or the ratio of delta records to base records (→ *major*
compaction: fold everything into a new base, deleting history).  The
queue lives in HMS; workers in :mod:`repro.acid.compactor` execute the
merge, and a separate cleaning phase removes obsolete directories only
when no open reader can still need them.
"""

from __future__ import annotations

import enum
import itertools
import threading

from ..common import sync
from dataclasses import dataclass, field


class CompactionType(enum.Enum):
    MINOR = "minor"
    MAJOR = "major"


class CompactionState(enum.Enum):
    INITIATED = "initiated"
    WORKING = "working"
    READY_FOR_CLEANING = "ready_for_cleaning"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class CompactionRequest:
    request_id: int
    table: str
    partition: tuple | None
    compaction_type: CompactionType
    state: CompactionState = CompactionState.INITIATED
    obsolete_paths: list[str] = field(default_factory=list)
    #: smallest TxnId that must have no open readers before cleaning
    cleaner_barrier_txn: int | None = None
    # filled in by the worker (surfaced in sys.compactions)
    merged_rows: int = 0
    output_dir: str = ""


def should_compact(delta_count: int, delete_delta_count: int,
                   delta_rows: int, base_rows: int,
                   delta_threshold: int,
                   delta_pct_threshold: float) -> CompactionType | None:
    """The initiator's policy.

    Returns the compaction type warranted by the current state, or None.
    Major compaction wins when delta data is large relative to the base;
    otherwise a pile-up of small delta directories warrants a minor pass.
    """
    total_deltas = delta_count + delete_delta_count
    if base_rows > 0 and delta_rows / base_rows >= delta_pct_threshold:
        return CompactionType.MAJOR
    if base_rows == 0 and delta_rows > 0 and total_deltas >= delta_threshold:
        return CompactionType.MAJOR
    if total_deltas >= delta_threshold:
        return CompactionType.MINOR
    return None


class CompactionQueue:
    """FIFO of compaction work with lifecycle states."""

    def __init__(self):
        self._lock = sync.new_lock('CompactionQueue._lock')
        self._counter = itertools.count(1)
        self._requests: dict[int, CompactionRequest] = {}

    def enqueue(self, table: str, partition: tuple | None,
                compaction_type: CompactionType) -> CompactionRequest:
        with self._lock:
            # coalesce: at most one in-flight request per (table, partition)
            for req in self._requests.values():
                if (req.table == table and req.partition == partition
                        and req.state in (CompactionState.INITIATED,
                                          CompactionState.WORKING)):
                    if (compaction_type is CompactionType.MAJOR
                            and req.compaction_type is CompactionType.MINOR
                            and req.state is CompactionState.INITIATED):
                        req.compaction_type = CompactionType.MAJOR
                    return req
            request = CompactionRequest(next(self._counter), table,
                                        partition, compaction_type)
            self._requests[request.request_id] = request
            return request

    def next_pending(self) -> CompactionRequest | None:
        with self._lock:
            for req in sorted(self._requests.values(),
                              key=lambda r: r.request_id):
                if req.state is CompactionState.INITIATED:
                    req.state = CompactionState.WORKING
                    return req
            return None

    def mark_ready_for_cleaning(self, request_id: int,
                                obsolete_paths: list[str],
                                barrier_txn: int | None) -> None:
        with self._lock:
            req = self._requests[request_id]
            req.state = CompactionState.READY_FOR_CLEANING
            req.obsolete_paths = list(obsolete_paths)
            req.cleaner_barrier_txn = barrier_txn

    def ready_for_cleaning(self) -> list[CompactionRequest]:
        with self._lock:
            return [r for r in self._requests.values()
                    if r.state is CompactionState.READY_FOR_CLEANING]

    def mark_done(self, request_id: int, success: bool = True) -> None:
        with self._lock:
            self._requests[request_id].state = (
                CompactionState.SUCCEEDED if success
                else CompactionState.FAILED)

    def history(self) -> list[CompactionRequest]:
        with self._lock:
            return sorted(self._requests.values(),
                          key=lambda r: r.request_id)
