"""concheck — static interprocedural lock-order / deadlock analysis.

reprolint's RL001 checks lock discipline one statement at a time: a
mutation of ``self.<attr>`` must sit inside ``with self._lock:``.  It
cannot see that method A of one class, holding its lock, calls into a
second class that takes *its* lock — while another path takes the same
two locks in the opposite order.  That shape (ABBA) is exactly the
deadlock class the HS2/LLAP concurrency story must exclude, and it
only exists *across* the call graph.  This module reasons at that
level:

1. **Model** — parse every file, collect classes, the lock attributes
   they declare (``self._lock = threading.Lock()`` /
   ``sync.new_lock(...)`` / condition fields on dataclasses), and per
   method the ordered events: lock acquisitions (``with self._lock:``,
   ``with gate.cond:``), calls made, and reads/writes of ``self``
   attributes — each tagged with the set of lock *tokens* held at that
   point.  A token is ``ClassName.attr`` — one node per lock site, the
   same identity the runtime sanitizer uses.
2. **Call graph** — calls are resolved by name: ``self.m()`` to the
   own class, ``obj.m()`` to every class defining ``m`` (container
   method names like ``append``/``get`` are never followed; highly
   ambiguous names are dropped).  A fixpoint computes, per method, the
   set of tokens it may transitively acquire.
3. **Lock-order graph** — an edge ``A -> B`` with a witness site for
   every acquisition of B (direct or via a call chain) while A is
   held.
4. **Findings** —

   ========  ==========================================================
   CC001     a cycle in the lock-order graph: two call paths acquire
             the same locks in opposite orders (potential deadlock)
   CC002     cross-call-graph unguarded *read*: an attribute whose
             every write is lock-guarded (RL001's invariant) is read
             without the lock in some method — a torn/stale read RL001
             cannot see because it only checks writes
   CC003     a non-reentrant ``threading.Lock`` token re-acquired on a
             path that already holds it (guaranteed self-deadlock)
   ========  ==========================================================

Helper methods whose *every* call site already holds the class lock
("caller holds self._lock" helpers) are recognized by a fixpoint over
the call graph and treated as executing under the lock — both for
guardedness of writes and for read checks — so the convention the
codebase documents in comments is finally machine-checked.

Suppression mirrors reprolint: ``# concheck: disable=CC002`` on the
line (with a justification comment), or ``# concheck:
disable-file=CC001`` in the first five lines.  The ``tools/concheck``
CLI renders text or deterministic JSON (byte-identical across runs on
an unchanged tree) and exits non-zero while findings remain.

Known blind spots (see DESIGN.md): locks passed as arguments or held
through callbacks invoked via variables (``fn()``), inheritance, and
dynamic dispatch beyond name matching.  The runtime sanitizer
(:mod:`repro.lint.sanitizer`) covers those at execution time.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .reprolint import Finding

RULES = {
    "CC001": "lock-order cycle across the call graph (potential "
             "ABBA deadlock)",
    "CC002": "unguarded read of a write-guarded attribute "
             "(cross-call-graph torn/stale read)",
    "CC003": "non-reentrant lock re-acquired on a path that already "
             "holds it (self-deadlock)",
}

#: attribute names treated as locks even without a visible declaration
LOCK_NAME_HINTS = frozenset({"_lock", "_cond", "_glock", "lock", "cond"})

#: method names never followed through the call graph: they are
#: overwhelmingly built-in container operations, and following them
#: to same-named repo methods would wire the graph to dict.get/etc.
CONTAINER_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse", "get", "keys", "values", "items", "copy",
    "count", "index", "join", "split", "strip", "startswith",
    "endswith", "format", "encode", "decode", "lower", "upper",
    "set", "inc", "observe", "wait", "notify", "notify_all",
    "acquire_lock", "put", "read", "write", "close", "flush",
})

#: a name resolving to more candidate methods than this is dropped
#: (deterministically) rather than spraying edges across the graph
MAX_CALL_CANDIDATES = 8

#: constructors: acquisition/mutation there is pre-publication
CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})

#: files whose raw-threading use is the sanitizer/seam machinery itself
EXCLUDED_FILES = ("repro/lint/sanitizer.py", "repro/common/sync.py")

_SUPPRESS_RE = re.compile(r"#\s*concheck:\s*disable=([A-Za-z0-9, ]+)")
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*concheck:\s*disable-file=([A-Za-z0-9, ]+)")


# --------------------------------------------------------------------------- #
# model

@dataclass
class MethodModel:
    """Everything concheck knows about one function body."""

    qualname: str                      # "Class.method" or "module fn"
    cls: Optional[str]
    name: str
    path: str
    lineno: int
    #: (token, held tokens, line, col) — direct lock acquisitions
    acquires: list = field(default_factory=list)
    #: (callee name, is_self_call, held tokens, line, col)
    calls: list = field(default_factory=list)
    #: (attr, own_lock_held, line, col) — Loads of self.<attr>
    reads: list = field(default_factory=list)
    #: (attr, own_lock_held, line, col) — mutations of self.<attr>
    writes: list = field(default_factory=list)


@dataclass
class ClassModel:
    name: str
    path: str
    #: lock attribute -> kind ("lock" | "rlock" | "cond")
    lock_attrs: dict = field(default_factory=dict)
    methods: dict = field(default_factory=dict)   # name -> MethodModel

    def own_tokens(self) -> set[str]:
        return {f"{self.name}.{attr}" for attr in self.lock_attrs}


@dataclass
class ConcurrencyReport:
    """Analysis result: findings + the lock-order graph."""

    findings: list[Finding]
    #: (held, acquired) -> witness "path:line (method)"
    edges: dict
    #: token -> lock kind
    tokens: dict
    files: int = 0

    def edge_pairs(self) -> list[tuple[str, str]]:
        return sorted(self.edges)

    def to_json(self, indent: int = 2) -> str:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        payload = {
            "tool": "concheck", "version": 1,
            "rules": RULES,
            "files": self.files,
            "counts": counts,
            "total": len(self.findings),
            "findings": [vars(f) for f in self.findings],
            "lock_tokens": {t: self.tokens[t]
                            for t in sorted(self.tokens)},
            "lock_order_edges": [
                {"held": a, "acquired": b, "witness": self.edges[(a, b)]}
                for a, b in sorted(self.edges)],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


# --------------------------------------------------------------------------- #
# lock-construction recognition

def _lock_kind_of_call(node: ast.expr) -> Optional[str]:
    """Kind if ``node`` constructs a lock, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    kinds = {"Lock": "lock", "new_lock": "lock",
             "RLock": "rlock", "new_rlock": "rlock",
             "Condition": "cond", "new_condition": "cond"}
    kind = kinds.get(name or "")
    if kind is not None:
        return kind
    if name == "field":
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                value = keyword.value
                if isinstance(value, ast.Lambda):
                    return _lock_kind_of_call(value.body)
                if isinstance(value, (ast.Attribute, ast.Name)):
                    attr = (value.attr if isinstance(value, ast.Attribute)
                            else value.id)
                    return kinds.get(attr)
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


# --------------------------------------------------------------------------- #
# pass 1: classes and their lock attributes

def _collect_classes(tree: ast.AST, path: str,
                     classes: dict) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = classes.get(node.name)
        if model is None:
            model = classes[node.name] = ClassModel(node.name, path)
        for child in ast.walk(node):
            # self.X = threading.Lock() / sync.new_lock(...)
            if isinstance(child, ast.Assign):
                kind = _lock_kind_of_call(child.value)
                if kind is None:
                    continue
                for target in child.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        model.lock_attrs[attr] = kind
            # dataclass field: cond: threading.Condition = field(...)
            elif isinstance(child, ast.AnnAssign) and child.value:
                kind = _lock_kind_of_call(child.value)
                if kind is not None and isinstance(child.target, ast.Name):
                    model.lock_attrs[child.target.id] = kind


# --------------------------------------------------------------------------- #
# pass 2: per-method event extraction

class _MethodWalker:
    """Walks one method body tracking the held-token set."""

    def __init__(self, model: MethodModel, cls: Optional[ClassModel],
                 attr_owners: dict):
        self.model = model
        self.cls = cls
        self.attr_owners = attr_owners   # lock attr name -> [classes]

    # token resolution ---------------------------------------------------- #
    def _token(self, expr: ast.expr) -> Optional[str]:
        """Lock token for a with-context / acquire receiver."""
        if isinstance(expr, ast.Call):        # e.g. lock.acquire_timeout()
            expr = expr.func
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        root = expr.value
        if isinstance(root, ast.Name) and root.id == "self":
            if self.cls is not None and attr in self.cls.lock_attrs:
                return f"{self.cls.name}.{attr}"
            if attr in LOCK_NAME_HINTS:
                name = self.cls.name if self.cls else "?"
                return f"{name}.{attr}"
            return None
        # gate.cond / session.lock: resolve by unique owning class
        owners = self.attr_owners.get(attr, [])
        if len(owners) == 1:
            return f"{owners[0]}.{attr}"
        if owners:
            # `self.journal._lock` with several classes owning `_lock`:
            # the receiver attribute name itself usually names the class
            # (journal -> Journal, session_manager -> SessionManager)
            receiver = self._receiver_name(root)
            if receiver is not None:
                folded = receiver.replace("_", "").lower()
                named = [c for c in owners if c.lower() == folded]
                if len(named) == 1:
                    return f"{named[0]}.{attr}"
            return f"?.{attr}"          # ambiguous but deterministic
        if attr in LOCK_NAME_HINTS:
            return f"?.{attr}"
        return None

    @staticmethod
    def _receiver_name(root: ast.expr) -> Optional[str]:
        """`self.journal` -> "journal", bare `gate` -> "gate"."""
        if isinstance(root, ast.Attribute) \
                and isinstance(root.value, ast.Name) \
                and root.value.id == "self":
            return root.attr
        if isinstance(root, ast.Name):
            return root.id
        return None

    # the walk ------------------------------------------------------------- #
    def walk(self, body: list, held: tuple) -> None:
        for statement in body:
            self._visit(statement, held)

    def _visit(self, node: ast.AST, held: tuple) -> None:
        if isinstance(node, ast.With):
            inner = held
            for item in node.items:
                token = self._token(item.context_expr)
                if token is not None:
                    self.model.acquires.append(
                        (token, held, node.lineno, node.col_offset))
                    if token not in inner:
                        inner = inner + (token,)
                self._visit(item.context_expr, held)
            self.walk(node.body, inner)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, held)
            for child in ast.iter_child_nodes(node):
                self._visit(child, held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # nested bodies inherit the held set: the dominant case is
            # a wait_for predicate evaluated under the condition
            body = (node.body if isinstance(node.body, list)
                    else [node.body])
            self.walk(body, held)
            return
        self._record_attr_access(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _record_call(self, node: ast.Call, held: tuple) -> None:
        func = node.func
        # explicit lock method calls: x._lock.acquire() counts as an
        # acquisition at this site (RL010 polices the pairing)
        if isinstance(func, ast.Attribute) and func.attr in (
                "acquire", "wait", "wait_for"):
            token = self._token(func.value)
            if token is not None:
                self.model.acquires.append(
                    (token, held, node.lineno, node.col_offset))
                return
        if isinstance(func, ast.Attribute):
            if func.attr in CONTAINER_METHODS:
                return
            is_self = (isinstance(func.value, ast.Name)
                       and func.value.id == "self")
            self.model.calls.append(
                (func.attr, is_self, held, node.lineno,
                 node.col_offset))
        elif isinstance(func, ast.Name):
            self.model.calls.append(
                (func.id, False, held, node.lineno, node.col_offset))

    def _record_attr_access(self, node: ast.AST, held: tuple) -> None:
        cls = self.cls
        if cls is None:
            return
        own = cls.own_tokens()
        locked = bool(own & set(held))
        mutated = _mutated_attr(node)
        if mutated is not None and mutated not in cls.lock_attrs:
            self.model.writes.append(
                (mutated, locked, node.lineno, node.col_offset))
            return
        if isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr is not None and attr not in cls.lock_attrs:
                self.model.reads.append(
                    (attr, locked, node.lineno, node.col_offset))


def _mutated_attr(node: ast.AST) -> Optional[str]:
    """Attribute name if this statement mutates ``self.<attr>``."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    attr = _attr_root(element)
                    if attr is not None:
                        return attr
            attr = _attr_root(target)
            if attr is not None:
                return attr
    if isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _attr_root(target)
            if attr is not None:
                return attr
    if (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr in (
                "append", "appendleft", "extend", "insert", "remove",
                "pop", "popleft", "clear", "add", "discard", "update",
                "setdefault", "sort", "reverse")):
        return _attr_root(node.value.func.value)
    return None


def _attr_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        node = node.value
    return None


# --------------------------------------------------------------------------- #
# the analysis

class ConcurrencyAnalyzer:
    def __init__(self):
        self.classes: dict[str, ClassModel] = {}
        self.methods: dict[str, MethodModel] = {}
        self.method_index: dict[str, list[str]] = {}  # name -> quals
        self.sources: dict[str, list[str]] = {}       # path -> lines
        self.files = 0

    # -- building ---------------------------------------------------------- #
    def add_file(self, source: str, path: str) -> Optional[Finding]:
        norm = path.replace(os.sep, "/")
        if any(norm.endswith(p) for p in EXCLUDED_FILES):
            return None
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return Finding("CC000", path, error.lineno or 0, 0,
                           f"syntax error: {error.msg}")
        self.files += 1
        self.sources[path] = source.splitlines()
        _collect_classes(tree, path, self.classes)
        self._trees = getattr(self, "_trees", [])
        self._trees.append((tree, path))
        return None

    def run(self, rules: Optional[Iterable[str]] = None
            ) -> ConcurrencyReport:
        enabled = set(rules) if rules is not None else set(RULES)
        attr_owners: dict[str, list[str]] = {}
        for cls in self.classes.values():
            for attr in cls.lock_attrs:
                attr_owners.setdefault(attr, []).append(cls.name)
        for owners in attr_owners.values():
            owners.sort()
        for tree, path in getattr(self, "_trees", []):
            self._extract_methods(tree, path, attr_owners)
        may_acquire = self._fixpoint_may_acquire()
        eff_locked = self._fixpoint_effectively_locked()
        edges, cc003 = self._build_edges(may_acquire, eff_locked)
        findings: list[Finding] = []
        if "CC003" in enabled:
            findings.extend(cc003)
        if "CC001" in enabled:
            findings.extend(self._find_cycles(edges))
        if "CC002" in enabled:
            findings.extend(self._find_unguarded_reads(eff_locked))
        findings = self._attach_snippets(findings)
        findings = self._apply_suppressions(findings)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        tokens = {f"{c.name}.{a}": k for c in self.classes.values()
                  for a, k in c.lock_attrs.items()}
        return ConcurrencyReport(findings, edges, tokens,
                                 files=self.files)

    def _extract_methods(self, tree, path, attr_owners) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                cls = self.classes.get(node.name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._add_method(item, cls, path, attr_owners)
        for item in ast.iter_child_nodes(tree):
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_method(item, None, path, attr_owners)

    def _add_method(self, node, cls, path, attr_owners) -> None:
        qual = (f"{cls.name}.{node.name}" if cls is not None
                else node.name)
        model = MethodModel(qual, cls.name if cls else None,
                            node.name, path, node.lineno)
        _MethodWalker(model, cls, attr_owners).walk(node.body, ())
        self.methods[qual] = model
        self.method_index.setdefault(node.name, []).append(qual)
        if cls is not None:
            cls.methods[node.name] = model

    # -- call resolution ---------------------------------------------------- #
    def _resolve(self, callee: str, is_self: bool,
                 caller: MethodModel) -> list[str]:
        if callee in CONTAINER_METHODS:
            return []
        if is_self and caller.cls is not None:
            own = f"{caller.cls}.{callee}"
            if own in self.methods:
                return [own]
        candidates = sorted(self.method_index.get(callee, []))
        # drop the caller itself on non-self calls to the same name
        if len(candidates) > MAX_CALL_CANDIDATES:
            return []
        return candidates

    # -- fixpoints ---------------------------------------------------------- #
    def _fixpoint_may_acquire(self) -> dict[str, set[str]]:
        may: dict[str, set[str]] = {
            qual: {tok for tok, _h, _l, _c in m.acquires}
            for qual, m in self.methods.items()}
        call_targets: dict[str, set[str]] = {}
        for qual, m in self.methods.items():
            targets = set()
            for callee, is_self, _held, _l, _c in m.calls:
                targets.update(self._resolve(callee, is_self, m))
            call_targets[qual] = targets
        changed = True
        while changed:
            changed = False
            for qual, targets in call_targets.items():
                bucket = may[qual]
                before = len(bucket)
                for target in targets:
                    bucket |= may.get(target, set())
                if len(bucket) != before:
                    changed = True
        return may

    def _fixpoint_effectively_locked(self) -> set[str]:
        """Private methods whose every call site holds the class lock."""
        # candidate: private method of a lock-owning class that has at
        # least one call site in the model
        sites: dict[str, list[tuple[str, tuple]]] = {}
        for qual, m in self.methods.items():
            for callee, is_self, held, _l, _c in m.calls:
                for target in self._resolve(callee, is_self, m):
                    sites.setdefault(target, []).append((qual, held))
        eff: set[str] = set()
        changed = True
        while changed:
            changed = False
            for qual, m in self.methods.items():
                if qual in eff or m.cls is None:
                    continue
                if not m.name.startswith("_") or m.name.startswith("__"):
                    continue
                cls = self.classes.get(m.cls)
                if cls is None or not cls.lock_attrs:
                    continue
                own = cls.own_tokens()
                call_sites = sites.get(qual, [])
                if not call_sites:
                    continue
                def covered(caller_qual, held):
                    if own & set(held):
                        return True
                    caller = self.methods.get(caller_qual)
                    return (caller_qual in eff and caller is not None
                            and caller.cls == m.cls)
                if all(covered(c, h) for c, h in call_sites):
                    eff.add(qual)
                    changed = True
        return eff

    # -- lock-order graph --------------------------------------------------- #
    def _token_kind(self, token: str) -> str:
        cls_name, _, attr = token.partition(".")
        cls = self.classes.get(cls_name)
        if cls is not None:
            return cls.lock_attrs.get(attr, "lock")
        return "lock"

    def _build_edges(self, may_acquire, eff_locked):
        edges: dict[tuple[str, str], str] = {}
        cc003: list[Finding] = []

        def witness(m: MethodModel, line: int) -> str:
            return f"{m.path}:{line} ({m.qualname})"

        def effective_held(m: MethodModel, held: tuple) -> tuple:
            if m.qualname in eff_locked and m.cls is not None:
                own = sorted(self.classes[m.cls].own_tokens())
                extra = tuple(t for t in own if t not in held)
                return held + extra
            return held

        for qual in sorted(self.methods):
            m = self.methods[qual]
            if m.name in CONSTRUCTORS:
                continue
            for token, held, line, col in m.acquires:
                held = effective_held(m, held)
                for h in held:
                    if h == token:
                        if self._token_kind(token) == "lock":
                            cc003.append(Finding(
                                "CC003", m.path, line, col,
                                f"{m.qualname} re-acquires non-"
                                f"reentrant {token} already held on "
                                "this path"))
                    else:
                        edges.setdefault((h, token), witness(m, line))
            for callee, is_self, held, line, col in m.calls:
                held = effective_held(m, held)
                if not held:
                    continue
                for target in self._resolve(callee, is_self, m):
                    for token in sorted(may_acquire.get(target, ())):
                        for h in held:
                            if h == token:
                                if (self._token_kind(token) == "lock"
                                        and target.startswith(
                                            f"{m.cls}.")):
                                    cc003.append(Finding(
                                        "CC003", m.path, line, col,
                                        f"{m.qualname} holds {token} "
                                        f"and calls {target} which "
                                        "re-acquires it "
                                        "(self-deadlock)"))
                            else:
                                edges.setdefault(
                                    (h, token),
                                    witness(m, line) + f" via {target}")
        return edges, cc003

    def _find_cycles(self, edges) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        sccs = _tarjan(graph)
        findings = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            nodes = sorted(scc)
            cycle_edges = sorted(
                (a, b) for a, b in edges
                if a in scc and b in scc)
            detail = "; ".join(
                f"{a}->{b} at {edges[(a, b)]}" for a, b in cycle_edges)
            # anchor the finding at the first witness site
            first = edges[cycle_edges[0]]
            path, line = _split_witness(first)
            findings.append(Finding(
                "CC001", path, line, 0,
                f"lock-order cycle between {{{', '.join(nodes)}}}: "
                f"{detail}"))
        return findings

    # -- unguarded reads ---------------------------------------------------- #
    def _find_unguarded_reads(self, eff_locked) -> list[Finding]:
        findings = []
        for cls_name in sorted(self.classes):
            cls = self.classes[cls_name]
            if not cls.lock_attrs:
                continue
            guarded = self._guarded_attrs(cls, eff_locked)
            if not guarded:
                continue
            for name in sorted(cls.methods):
                m = cls.methods[name]
                if name in CONSTRUCTORS:
                    continue
                under_lock = m.qualname in eff_locked
                for attr, locked, line, col in m.reads:
                    if attr not in guarded or locked or under_lock:
                        continue
                    findings.append(Finding(
                        "CC002", m.path, line, col,
                        f"{m.qualname} reads 'self.{attr}' without "
                        f"the lock, but every write to it is "
                        "lock-guarded (torn/stale read)"))
        return findings

    def _guarded_attrs(self, cls: ClassModel, eff_locked) -> set[str]:
        """Attrs with >= 1 non-constructor write, all of them locked."""
        locked_writes: set[str] = set()
        unlocked_writes: set[str] = set()
        for name, m in cls.methods.items():
            in_ctor = name in CONSTRUCTORS
            under_lock = m.qualname in eff_locked
            for attr, locked, _line, _col in m.writes:
                if in_ctor:
                    continue
                if locked or under_lock:
                    locked_writes.add(attr)
                else:
                    unlocked_writes.add(attr)
        return locked_writes - unlocked_writes

    # -- output ------------------------------------------------------------- #
    def _attach_snippets(self, findings) -> list[Finding]:
        for finding in findings:
            lines = self.sources.get(finding.path, [])
            if 0 < finding.line <= len(lines):
                finding.snippet = lines[finding.line - 1].strip()
        return findings

    def _apply_suppressions(self, findings) -> list[Finding]:
        out = []
        for finding in findings:
            lines = self.sources.get(finding.path, [])
            if finding.rule in _file_suppressions(lines):
                continue
            if _line_suppressed(lines, finding.line, finding.rule):
                continue
            out.append(finding)
        return out


def _split_witness(witness: str) -> tuple[str, int]:
    head = witness.split(" ")[0]
    path, _, line = head.rpartition(":")
    try:
        return path, int(line)
    except ValueError:
        return head, 0


def _tarjan(graph: dict[str, set[str]]) -> list[set[str]]:
    """Iterative Tarjan SCC (deterministic over sorted nodes)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    # self-loops count as cycles only via explicit self-edges, which
    # CC003 reports separately; filter singletons without self-edge
    return [s for s in sccs
            if len(s) > 1]


# --------------------------------------------------------------------------- #
# suppressions (concheck flavor of the reprolint convention)

def _file_suppressions(lines: list[str]) -> set[str]:
    suppressed: set[str] = set()
    for line in lines[:5]:
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            suppressed |= {r.strip().upper()
                           for r in match.group(1).split(",")}
    if "ALL" in suppressed:
        return set(RULES)
    return suppressed


def _line_suppressed(lines: list[str], lineno: int, rule: str) -> bool:
    if not 0 < lineno <= len(lines):
        return False
    match = _SUPPRESS_RE.search(lines[lineno - 1])
    if not match:
        return False
    ids = {r.strip().upper() for r in match.group(1).split(",")}
    return rule in ids or "ALL" in ids


# --------------------------------------------------------------------------- #
# public API

def analyze_paths(paths: Iterable[str],
                  rules: Optional[Iterable[str]] = None
                  ) -> ConcurrencyReport:
    """Analyze every ``.py`` file under the given files/directories."""
    analyzer = ConcurrencyAnalyzer()
    parse_errors: list[Finding] = []
    for filename in sorted(_python_files(paths)):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        error = analyzer.add_file(source, filename)
        if error is not None:
            parse_errors.append(error)
    report = analyzer.run(rules)
    report.findings = parse_errors + report.findings
    return report


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Iterable[str]] = None
                   ) -> ConcurrencyReport:
    """Analyze one in-memory module (fixtures and tests)."""
    analyzer = ConcurrencyAnalyzer()
    error = analyzer.add_file(source, path)
    report = analyzer.run(rules)
    if error is not None:
        report.findings.insert(0, error)
    return report


def analyze_package() -> ConcurrencyReport:
    """Analyze the installed ``repro`` package (sanitizer merge)."""
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))
    return analyze_paths([package_root])


def _python_files(paths: Iterable[str]) -> list[str]:
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                out.extend(os.path.join(root, f) for f in files
                           if f.endswith(".py"))
        else:
            out.append(path)
    return out


def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="concheck",
        description="static interprocedural lock-order / deadlock "
                    "analysis (CC001-CC003)")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--rules",
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--graph", action="store_true",
                        help="also print the lock-order graph edges")
    args = parser.parse_args(argv)
    rules = (None if not args.rules
             else [r.strip().upper() for r in args.rules.split(",")])
    report = analyze_paths(args.paths, rules)
    if args.format == "json":
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        if args.graph:
            for (a, b) in sorted(report.edges):
                print(f"edge: {a} -> {b}  [{report.edges[(a, b)]}]")
        print(f"concheck: {len(report.findings)} finding(s), "
              f"{len(report.edges)} lock-order edge(s), "
              f"{report.files} file(s)")
    return 1 if report.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
