"""Runtime lock sanitizer (``HIVE_SANITIZE=1``).

The static pass (:mod:`repro.lint.concurrency`) reasons about lock
order from the AST; this module observes the *real* interleavings.
When installed through the :mod:`repro.common.sync` seam, every lock
the warehouse creates becomes a drop-in instrumented wrapper that
records, per thread, the stack of locks currently held, and checks
each acquisition against the global observed lock-order graph:

* **order** — thread acquires site B while holding site A after some
  thread (any thread, any time) acquired A while holding B: a cycle in
  the observed order graph, i.e. a latent ABBA deadlock.  Static-graph
  edges can be merged in (``HIVE_SANITIZE_STATIC=1``) so an inversion
  against an order only *derivable* from the source is caught too.
* **blocking** — a condition wait while still holding another
  sanitized lock: the classic lost-wakeup / convoy shape.  Locks whose
  *job* is to be held across blocking work (the per-session statement
  serialization lock) are allowlisted in :data:`WAIT_ALLOWED_HOLDING`.
* **longhold** — a lock held longer than ``longhold_s`` wall seconds
  (knob ``hive.lint.sanitize.longhold.s``); an outlier that starves
  every other thread parked on the same site.

Locks are aggregated by **site name** (``"SimFileSystem._lock"``) —
the same tokens the static analyzer emits — so per-object locks (one
per service session, one per admission gate) share a node in the
graph.  Findings are deduplicated by (kind, locks, site) with a count,
surface in ``sys.lint_findings`` and as ``lint.*`` metrics, and are
meant to be *zero* on a healthy tree: CI runs the full suite under
``HIVE_SANITIZE=1`` and fails on any order inversion.

Overhead when not installed: none (the sync factories return raw
stdlib primitives).  When installed: a thread-local list push/pop and
two ``perf_counter`` reads per acquisition; stacks are only captured
when a *new* order edge or a finding is recorded.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field

from ..common import sync

#: lock sites that are *designed* to be held across blocking calls —
#: the HS2 per-session serialization lock is held for the whole
#: statement, including metastore lock waits, by construction
WAIT_ALLOWED_HOLDING = frozenset({"ServiceSession.lock"})

#: finding kinds, in severity order
KINDS = ("order", "blocking", "longhold")

_TRUE = ("1", "true", "yes", "on")


@dataclass
class SanFinding:
    """One deduplicated sanitizer finding."""

    finding_id: int
    kind: str                 # order | blocking | longhold
    locks: tuple[str, ...]    # sites involved, acquisition order
    thread: str
    site: str                 # "file:line" of the triggering frame
    detail: str
    wall_s: float             # wall timestamp of first occurrence
    count: int = 1

    def as_row(self) -> tuple:
        return (self.finding_id, "sanitizer", self.kind,
                "->".join(self.locks), self.thread, self.site,
                self.detail, self.wall_s, self.count)


@dataclass
class SiteStats:
    """Per-site counters (plain attributes: diagnostic, GIL-tolerant)."""

    name: str
    instances: int = 0
    acquisitions: int = 0
    contended: int = 0
    hold_s_sum: float = 0.0
    hold_s_max: float = 0.0


class _Held:
    """A per-thread record of one held lock."""

    __slots__ = ("wrapper", "name", "t0")

    def __init__(self, wrapper, name, t0):
        self.wrapper = wrapper
        self.name = name
        self.t0 = t0


def _caller_site() -> str:
    """``file:line`` of the first frame outside this module."""
    for frame in reversed(traceback.extract_stack(limit=12)):
        if not frame.filename.endswith(("sanitizer.py", "sync.py",
                                        "threading.py")):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class LockSanitizer:
    """Order/blocking/longhold detection over sanitized locks."""

    def __init__(self, longhold_s: float = 5.0,
                 max_findings: int = 1000):
        self.longhold_s = float(longhold_s)
        self.max_findings = max_findings
        # raw primitives on purpose: the sanitizer must not sanitize
        # its own internals (and this lock is a leaf by construction)
        self._glock = threading.Lock()
        self._tls = threading.local()
        #: observed order edges: (held_site, acquired_site) -> witness
        self._edges: dict[tuple[str, str], str] = {}
        #: extra edges from the static graph (never produce witnesses)
        self._static_edges: set[tuple[str, str]] = set()
        self._findings: dict[tuple, SanFinding] = {}
        self._sites: dict[str, SiteStats] = {}
        self._ids = 0

    # -- factory interface (repro.common.sync) --------------------------- #
    def lock(self, name: str) -> "_SanLock":
        return _SanLock(self, name, threading.Lock())

    def rlock(self, name: str) -> "_SanRLock":
        return _SanRLock(self, name, threading.RLock())

    def condition(self, name: str, lock=None) -> "_SanCondition":
        if lock is None:
            lock = self.rlock(name)
        return _SanCondition(self, name, lock)

    def merge_static_edges(self, edges) -> int:
        """Merge ``(held, acquired)`` pairs from the static analysis so
        runtime inversions against source-derivable order are caught."""
        with self._glock:
            self._static_edges.update(tuple(e) for e in edges)
            return len(self._static_edges)

    # -- per-thread stack ------------------------------------------------- #
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _site_stats(self, name: str) -> SiteStats:
        stats = self._sites.get(name)
        if stats is None:
            with self._glock:
                stats = self._sites.setdefault(name, SiteStats(name))
        return stats

    # -- wrapper callbacks ------------------------------------------------ #
    def note_instance(self, name: str) -> None:
        self._site_stats(name).instances += 1

    def note_acquired(self, wrapper, contended: bool) -> None:
        stats = self._site_stats(wrapper.san_name)
        stats.acquisitions += 1
        if contended:
            stats.contended += 1
        stack = self._stack()
        for held in stack:
            if held.name != wrapper.san_name:
                self._note_edge(held.name, wrapper.san_name)
        stack.append(_Held(wrapper, wrapper.san_name,
                           time.perf_counter()))

    def note_released(self, wrapper) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].wrapper is wrapper:
                held = stack.pop(i)
                break
        else:
            return
        dt = time.perf_counter() - held.t0
        stats = self._site_stats(held.name)
        stats.hold_s_sum += dt
        if dt > stats.hold_s_max:
            stats.hold_s_max = dt
        if dt > self.longhold_s:
            self._record("longhold", (held.name,),
                         f"held {dt:.3f}s (threshold "
                         f"{self.longhold_s:g}s)")

    def note_wait(self, cond_lock, cond_name: str) -> None:
        """Condition wait entered; flag other sanitized locks held."""
        others = [held.name for held in self._stack()
                  if held.wrapper is not cond_lock
                  and held.name not in WAIT_ALLOWED_HOLDING]
        if others:
            self._record("blocking", (*others, cond_name),
                         f"wait on {cond_name} while holding "
                         f"{', '.join(others)}")

    # -- graph + findings -------------------------------------------------- #
    def _note_edge(self, held: str, acquired: str) -> None:
        key = (held, acquired)
        if key in self._edges:          # fast path: known edge
            return
        site = _caller_site()
        with self._glock:
            if key in self._edges:
                return
            self._edges[key] = site
            reverse = (acquired, held)
            witness = self._edges.get(reverse)
            if witness is None and reverse in self._static_edges:
                witness = "static graph"
        if witness is not None:
            self._record(
                "order", (held, acquired),
                f"acquired {acquired} while holding {held}, but the "
                f"opposite order was observed at {witness}")

    def _record(self, kind: str, locks: tuple, detail: str) -> None:
        site = _caller_site()
        thread = threading.current_thread().name
        key = (kind, locks, site)
        with self._glock:
            existing = self._findings.get(key)
            if existing is not None:
                existing.count += 1
                return
            if len(self._findings) >= self.max_findings:
                return
            self._ids += 1
            self._findings[key] = SanFinding(
                self._ids, kind, locks, thread, site, detail,
                wall_s=time.time())

    # -- reads -------------------------------------------------------------- #
    def findings(self, kind: str | None = None) -> list[SanFinding]:
        with self._glock:
            out = sorted(self._findings.values(),
                         key=lambda f: f.finding_id)
        if kind is not None:
            out = [f for f in out if f.kind == kind]
        return out

    def finding_count(self, kind: str) -> int:
        with self._glock:
            return sum(1 for f in self._findings.values()
                       if f.kind == kind)

    def edges(self) -> dict[tuple[str, str], str]:
        with self._glock:
            return dict(self._edges)

    def site_rows(self) -> list[SiteStats]:
        with self._glock:
            return [self._sites[name] for name in sorted(self._sites)]

    def totals(self) -> dict:
        acquisitions = contended = 0
        longest = 0.0
        with self._glock:
            sites = list(self._sites.values())
        for stats in sites:
            acquisitions += stats.acquisitions
            contended += stats.contended
            longest = max(longest, stats.hold_s_max)
        return {"sites": len(sites), "acquisitions": acquisitions,
                "contended": contended, "longest_hold_s": longest}

    def reset(self) -> None:
        with self._glock:
            self._edges.clear()
            self._findings.clear()
            self._sites.clear()
            self._ids = 0

    def report_json(self, indent: int = 2) -> str:
        """Deterministically ordered JSON report (the CI artifact)."""
        findings = self.findings()
        payload = {
            "tool": "sanitizer", "version": 1,
            "longhold_s": self.longhold_s,
            "totals": self.totals(),
            "counts": {kind: self.finding_count(kind)
                       for kind in KINDS},
            "findings": [{
                "finding_id": f.finding_id, "kind": f.kind,
                "locks": list(f.locks), "thread": f.thread,
                "site": f.site, "detail": f.detail,
                "count": f.count} for f in findings],
            "order_edges": [
                {"held": a, "acquired": b, "witness": w}
                for (a, b), w in sorted(self.edges().items())],
            "sites": [{
                "name": s.name, "instances": s.instances,
                "acquisitions": s.acquisitions,
                "contended": s.contended,
                "hold_s_max": s.hold_s_max}
                for s in self.site_rows()],
        }
        import json
        return json.dumps(payload, indent=indent, sort_keys=True)

    def write_report(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.report_json())
            handle.write("\n")


class _SanLock:
    """Drop-in for ``threading.Lock`` with sanitizer bookkeeping."""

    def __init__(self, san: LockSanitizer, name: str, inner):
        self._san = san
        self.san_name = name
        self._inner = inner
        san.note_instance(name)

    def acquire(self, blocking: bool = True, timeout: float = -1):
        contended = False
        if blocking and timeout == -1:
            # try-then-block so contention is observable
            ok = self._inner.acquire(False)
            if not ok:
                contended = True
                ok = self._inner.acquire()
        else:
            ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._san.note_acquired(self, contended)
        return ok

    def release(self):
        self._san.note_released(self)
        self._inner.release()

    def locked(self):
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return f"<SanLock {self.san_name} {self._inner!r}>"


class _SanRLock:
    """Drop-in for ``threading.RLock``; records only the outermost
    acquisition so re-entrancy never fakes an order edge."""

    def __init__(self, san: LockSanitizer, name: str, inner):
        self._san = san
        self.san_name = name
        self._inner = inner
        self._local = threading.local()
        san.note_instance(name)

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def acquire(self, blocking: bool = True, timeout: float = -1):
        contended = False
        if blocking and timeout == -1:
            ok = self._inner.acquire(False)
            if not ok:
                contended = True
                ok = self._inner.acquire()
        else:
            ok = self._inner.acquire(blocking, timeout)
        if ok:
            depth = self._depth() + 1
            self._local.depth = depth
            if depth == 1:
                self._san.note_acquired(self, contended)
        return ok

    def release(self):
        depth = self._depth() - 1
        self._local.depth = depth
        if depth == 0:
            self._san.note_released(self)
        self._inner.release()

    # Condition-variable integration: a wait must fully release the
    # re-entrant lock and restore it afterwards, with bookkeeping.
    def _release_save(self):
        depth = self._depth()
        self._local.depth = 0
        if depth > 0:
            self._san.note_released(self)
        return (self._inner._release_save(), depth)

    def _acquire_restore(self, state):
        inner_state, depth = state
        self._inner._acquire_restore(inner_state)
        self._local.depth = depth
        if depth > 0:
            self._san.note_acquired(self, False)

    def _is_owned(self):
        return self._inner._is_owned()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return f"<SanRLock {self.san_name} {self._inner!r}>"


class _SanCondition(threading.Condition):
    """``threading.Condition`` over a sanitized lock; flags waits that
    still hold *other* sanitized locks."""

    def __init__(self, san: LockSanitizer, name: str, lock):
        super().__init__(lock)
        self._san = san
        self.san_name = name

    def wait(self, timeout=None):
        self._san.note_wait(self._lock, self.san_name)
        return super().wait(timeout)


# --------------------------------------------------------------------------- #
# process-global install seam

_sanitizer: LockSanitizer | None = None


def current() -> LockSanitizer | None:
    """The installed sanitizer, or None."""
    return _sanitizer


def install_sanitizer(longhold_s: float | None = None) -> LockSanitizer:
    """Install (idempotently) and return the process sanitizer."""
    global _sanitizer
    if _sanitizer is None:
        if longhold_s is None:
            longhold_s = float(
                os.environ.get("HIVE_SANITIZE_LONGHOLD_S", "5.0"))
        _sanitizer = LockSanitizer(longhold_s=longhold_s)
        sync.install(_sanitizer)
    elif longhold_s is not None:
        _sanitizer.longhold_s = float(longhold_s)
    return _sanitizer


def install_instance(sanitizer: LockSanitizer) -> LockSanitizer:
    """Install a specific instance (tests save/restore the env one)."""
    global _sanitizer
    _sanitizer = sanitizer
    sync.install(sanitizer)
    return sanitizer


def uninstall_sanitizer() -> None:
    global _sanitizer
    _sanitizer = None
    sync.uninstall()


def install_from_env() -> LockSanitizer | None:
    """Honor ``HIVE_SANITIZE=1`` (called once at package import).

    ``HIVE_SANITIZE_STATIC=1`` additionally runs the static analysis
    over the installed package and merges its lock-order edges, so a
    runtime acquisition that inverts a *source-derivable* order is
    reported even if the other order never executes in this run.
    """
    if os.environ.get("HIVE_SANITIZE", "").lower() not in _TRUE:
        return None
    sanitizer = install_sanitizer()
    if os.environ.get("HIVE_SANITIZE_STATIC", "").lower() in _TRUE:
        from .concurrency import analyze_package
        report = analyze_package()
        sanitizer.merge_static_edges(report.edge_pairs())
    report_path = os.environ.get("HIVE_SANITIZE_REPORT")
    if report_path:
        # the CI artifact: dump findings at interpreter exit, bound to
        # THIS instance — tests may swap sanitizers mid-run, but the
        # env-installed one keeps observing every lock created under it
        import atexit
        atexit.register(sanitizer.write_report, report_path)
    return sanitizer
