"""Plan-invariant validator for the optimizer pipeline (Layer 1).

Mirrors Calcite's ``RelValidityChecker``/litmus assertions around Hive's
multi-stage optimizer (Section 4.1): every rewrite stage must hand the
next stage a *structurally valid* RelNode tree.  A buggy rule then fails
fast with a diagnostic naming the stage, instead of silently producing
wrong results three stages later.

Invariants checked on every node:

* the tree is a tree — no node object shared between two parents, no
  cycles,
* the output schema is derivable (Project/Aggregate/... schema
  properties neither raise nor produce duplicate-column row types),
* every Rex input ref lands inside the child row type with a matching
  declared type; boolean operators are typed BOOLEAN
  (:func:`repro.plan.rexnodes.type_errors`),
* predicates (Filter conditions, Join conditions) are boolean-typed,
* ordinal annotations (Aggregate group keys and agg args, Sort keys,
  Window partition/order/arg keys, grouping-set members) are in range,
* Union/SetOp branches agree on arity and column types,
* TableScan residue is sane: sarg conjuncts are boolean predicates over
  the scan's own schema, pruned-partition specs are uniform-width value
  tuples, ``fetch``/``count`` limits are non-negative,
* the digest is deterministic — two computations agree and contain no
  ``repr`` memory addresses (which would break shared-work detection and
  the results cache).

:func:`check_plan` raises :class:`repro.errors.PlanInvariantError`;
:func:`plan_violations` returns the raw findings for tooling.
"""

from __future__ import annotations

import difflib
from typing import Optional

from ..common.types import BOOLEAN
from ..errors import HiveError, PlanInvariantError
from ..plan import relnodes as rel
from ..plan import rexnodes as rex

#: join kinds the executor understands
JOIN_KINDS = frozenset({"inner", "left", "right", "full", "semi", "anti"})

#: set-op kinds
SETOP_KINDS = frozenset({"intersect", "except"})


def check_plan(root: rel.RelNode, stage: str = "?",
               before: Optional[rel.RelNode] = None) -> None:
    """Validate ``root``; raise :class:`PlanInvariantError` on violation.

    ``stage`` names the optimizer stage (or rule) that produced the
    tree; ``before`` is the pre-rewrite tree used to render a plan diff.
    """
    violations = plan_violations(root)
    if not violations:
        return
    diff = render_plan_diff(before, root) if before is not None else ""
    bullet = "\n".join(f"  - {v}" for v in violations)
    message = (f"plan invariant violated after stage {stage!r}:\n{bullet}")
    if diff:
        message += f"\nplan diff (before -> after {stage}):\n{diff}"
    raise PlanInvariantError(message, stage=stage, violations=violations,
                             diff=diff)


def plan_violations(root: rel.RelNode) -> list[str]:
    """Every violated invariant in the tree, as human-readable strings."""
    violations: list[str] = []
    seen: set[int] = set()
    on_stack: set[int] = set()
    cyclic = False

    # pass 1: tree-ness.  Runs before any per-node check because schema
    # and digest derivation recurse through inputs — on a cyclic "tree"
    # they would overflow the stack instead of reporting the violation.
    def scan(node: rel.RelNode, path: str) -> None:
        nonlocal cyclic
        label = f"{path}{type(node).__name__}"
        if id(node) in on_stack:
            cyclic = True
            violations.append(
                f"{label}: node object appears twice in the tree "
                "(cycle: the node is its own ancestor)")
            return
        if id(node) in seen:
            violations.append(
                f"{label}: node object appears twice in the tree "
                "(plans must be trees; rebuild instead of aliasing)")
            return
        seen.add(id(node))
        on_stack.add(id(node))
        for i, child in enumerate(node.inputs):
            scan(child, f"{label}.{i}/")
        on_stack.discard(id(node))

    scan(root, "")
    if cyclic:
        return violations

    # pass 2: per-node invariants (safe now that the graph is acyclic)
    checked: set[int] = set()

    def visit(node: rel.RelNode, path: str) -> None:
        label = f"{path}{type(node).__name__}"
        if id(node) in checked:
            return
        checked.add(id(node))
        _check_node(node, label, violations)
        for i, child in enumerate(node.inputs):
            visit(child, f"{label}.{i}/")

    visit(root, "")
    return violations


# --------------------------------------------------------------------------- #
# per-node checks

def _check_node(node: rel.RelNode, label: str,
                violations: list[str]) -> None:
    schema = _derived_schema(node, label, violations)
    if schema is None:
        return
    _check_digest(node, label, violations)
    if isinstance(node, rel.TableScan):
        _check_scan(node, label, violations)
    elif isinstance(node, rel.Values):
        width = len(schema)
        for i, row in enumerate(node.rows):
            if len(row) != width:
                violations.append(
                    f"{label}: row {i} has {len(row)} values for a "
                    f"{width}-column schema")
    elif isinstance(node, rel.Filter):
        _check_predicate(node.condition, node.input.schema.columns,
                         label, violations)
    elif isinstance(node, rel.Project):
        if len(node.exprs) != len(node.names):
            violations.append(
                f"{label}: {len(node.exprs)} exprs vs "
                f"{len(node.names)} names")
        for i, expr in enumerate(node.exprs):
            for problem in rex.type_errors(expr,
                                           node.input.schema.columns):
                violations.append(f"{label}: expr #{i}: {problem}")
    elif isinstance(node, rel.Aggregate):
        _check_aggregate(node, label, violations)
    elif isinstance(node, rel.Sort):
        width = len(node.input.schema)
        for key in node.keys:
            if not 0 <= key.index < width:
                violations.append(
                    f"{label}: sort key ${key.index} out of range "
                    f"(input width {width})")
        if node.fetch is not None and node.fetch < 0:
            violations.append(f"{label}: negative fetch {node.fetch}")
    elif isinstance(node, rel.Limit):
        if node.count < 0:
            violations.append(f"{label}: negative limit {node.count}")
    elif isinstance(node, rel.Window):
        _check_window(node, label, violations)
    elif isinstance(node, rel.Join):
        _check_join(node, label, violations)
    elif isinstance(node, rel.Union):
        _check_branches(node.rels, schema, label, violations)
    elif isinstance(node, rel.SetOp):
        if node.kind not in SETOP_KINDS:
            violations.append(f"{label}: unknown set-op kind "
                              f"{node.kind!r}")
        _check_branches((node.left, node.right), schema, label,
                        violations)


def _derived_schema(node, label, violations):
    """The node's output schema, or None if deriving it already fails.

    Catches any Exception, not just HiveError: a malformed tree fails
    schema derivation with whatever the property happens to raise
    (IndexError on a bad ordinal, KeyError on a bad name) and the
    validator's whole purpose is reporting that instead of crashing.
    """
    try:
        schema = node.schema
    except Exception as error:
        violations.append(
            f"{label}: schema derivation failed: "
            f"{type(error).__name__}: {error}")
        return None
    if len(schema) == 0 and not isinstance(node, rel.Values):
        violations.append(f"{label}: empty output schema")
    return schema


def _check_digest(node, label, violations):
    try:
        first, second = node.digest, node.digest
    except Exception as error:
        violations.append(
            f"{label}: digest computation failed: "
            f"{type(error).__name__}: {error}")
        return
    if not isinstance(first, str):
        violations.append(f"{label}: digest is {type(first).__name__}, "
                          "not str")
        return
    if first != second:
        violations.append(f"{label}: digest is not deterministic")
    if " at 0x" in first:
        violations.append(
            f"{label}: digest embeds an object address (default repr) — "
            "digests must be stable across processes")


def _check_predicate(condition, columns, label, violations):
    for problem in rex.type_errors(condition, columns):
        violations.append(f"{label}: condition: {problem}")
    if condition.dtype != BOOLEAN:
        violations.append(
            f"{label}: condition typed {condition.dtype}, expected "
            "BOOLEAN")


def _check_scan(node: rel.TableScan, label, violations):
    for i, sarg in enumerate(node.sarg_conjuncts):
        for problem in rex.type_errors(sarg, node.schema.columns):
            violations.append(f"{label}: sarg #{i}: {problem}")
        if sarg.dtype != BOOLEAN:
            violations.append(
                f"{label}: sarg #{i} typed {sarg.dtype}, expected "
                "BOOLEAN")
    if node.pruned_partitions is not None:
        widths = {len(spec) for spec in node.pruned_partitions}
        if len(widths) > 1:
            violations.append(
                f"{label}: pruned partition specs have mixed widths "
                f"{sorted(widths)}")


def _check_aggregate(node: rel.Aggregate, label, violations):
    width = len(node.input.schema)
    for key in node.group_keys:
        if not 0 <= key < width:
            violations.append(
                f"{label}: group key ${key} out of range "
                f"(input width {width})")
    if node.group_names and len(node.group_names) != len(node.group_keys):
        violations.append(
            f"{label}: {len(node.group_names)} group names for "
            f"{len(node.group_keys)} group keys")
    for call in node.agg_calls:
        if call.arg is not None and not 0 <= call.arg < width:
            violations.append(
                f"{label}: aggregate {call.func} arg ${call.arg} out of "
                f"range (input width {width})")
    if node.grouping_sets is not None:
        positions = range(len(node.group_keys))
        for gset in node.grouping_sets:
            for member in gset:
                if member not in positions:
                    violations.append(
                        f"{label}: grouping set member {member} is not a "
                        f"group-key position (have "
                        f"{len(node.group_keys)} keys)")


def _check_window(node: rel.Window, label, violations):
    width = len(node.input.schema)
    for call in node.calls:
        ordinals = list(call.partition_keys)
        ordinals.extend(k.index for k in call.order_keys)
        if call.arg is not None:
            ordinals.append(call.arg)
        for ordinal in ordinals:
            if not 0 <= ordinal < width:
                violations.append(
                    f"{label}: window {call.func} ordinal ${ordinal} "
                    f"out of range (input width {width})")


def _check_join(node: rel.Join, label, violations):
    if node.kind not in JOIN_KINDS:
        violations.append(f"{label}: unknown join kind {node.kind!r}")
    if node.condition is not None:
        _check_predicate(node.condition, node.condition_columns(),
                         label, violations)


def _check_branches(branches, schema, label, violations):
    types = [c.dtype for c in schema]
    for i, branch in enumerate(branches):
        branch_types = [c.dtype for c in branch.schema]
        if len(branch_types) != len(types):
            violations.append(
                f"{label}: branch {i} has {len(branch_types)} columns, "
                f"expected {len(types)}")
        elif branch_types != types:
            violations.append(
                f"{label}: branch {i} column types {branch_types} differ "
                f"from {types}")


# --------------------------------------------------------------------------- #
# diagnostics rendering

def render_plan_diff(before: rel.RelNode, after: rel.RelNode) -> str:
    """Unified diff of the two plans' EXPLAIN renderings."""
    try:
        old = before.explain().splitlines()
    except HiveError:
        old = ["<before-plan rendering failed>"]
    try:
        new = after.explain().splitlines()
    except HiveError:
        new = ["<after-plan rendering failed>"]
    lines = difflib.unified_diff(old, new, fromfile="before",
                                 tofile="after", lineterm="", n=2)
    return "\n".join(lines)
