"""repro.lint — static analysis for the warehouse (two layers).

* **Plan validator** (:mod:`repro.lint.plan_check`): structural
  invariant checks on RelNode trees, run by the optimizer after every
  rewrite stage when ``hive.check.plan`` is on (per-rule in paranoid
  mode), and from SQL via ``EXPLAIN VALIDATE <query>``.
* **Repo linter** (:mod:`repro.lint.reprolint`): an AST lint pass with
  repo-specific rules (lock discipline, wall-clock bans in virtual-cost
  modules, frozen plan-node mutation, bare except, mutable defaults),
  runnable via ``tools/reprolint`` and wired into CI.
* **Concurrency analyzer** (:mod:`repro.lint.concurrency` +
  :mod:`repro.lint.sanitizer`): static interprocedural lock-order /
  deadlock analysis (``tools/concheck``, rules CC001-CC003) paired
  with a runtime lock sanitizer installed via ``HIVE_SANITIZE=1``
  that validates real interleavings against the static graph.
"""

from .concurrency import (RULES as CONCHECK_RULES, ConcurrencyReport,
                          analyze_package, analyze_paths,
                          analyze_source)
from .plan_check import (check_plan, plan_violations,
                         render_plan_diff)
from .reprolint import RULES, Finding, lint_paths, lint_source
from .sanitizer import (LockSanitizer, current as current_sanitizer,
                        install_from_env, install_sanitizer,
                        uninstall_sanitizer)

__all__ = [
    "check_plan", "plan_violations", "render_plan_diff",
    "RULES", "Finding", "lint_paths", "lint_source",
    "CONCHECK_RULES", "ConcurrencyReport", "analyze_package",
    "analyze_paths", "analyze_source",
    "LockSanitizer", "current_sanitizer", "install_from_env",
    "install_sanitizer", "uninstall_sanitizer",
]
