"""reprolint — AST-based repo linter with Hive-repro-specific rules.

The rules encode conventions the codebase relies on for correctness
under concurrent traffic and virtual-time benchmarking, which generic
linters cannot know:

========  ============================================================
RL001     shared-attribute mutation outside ``with self._lock:`` in a
          class that declares ``_lock`` (metastore, obs, caches) —
          the lock discipline must be machine-checked, not convention
RL002     wall-clock calls (``time.time``/``perf_counter``/...) inside
          cost-model and optimizer modules, where only *virtual* cost
          is allowed (wall time there corrupts the calibrated model)
RL003     post-construction attribute mutation of frozen plan nodes:
          any ``object.__setattr__(...)``, plus non-``self`` attribute
          assignment inside ``repro/plan/`` — plan trees are rebuilt,
          never mutated
RL004     bare ``except:`` (swallows KeyboardInterrupt/SystemExit)
RL005     mutable default argument (list/dict/set literal or call)
RL006     direct access to metric internals (``_value``/``_counts``/
          ``_series``...) outside ``repro/obs/`` — instrumented code
          must read through the registry's snapshot API
          (``value()``/``total()``/``percentile()``/``snapshot()``),
          so locking and kind checks cannot be bypassed
RL007     ``except Exception: pass`` (or ``BaseException``) — a
          swallowed failure in a recovery path (abort, release, retry)
          silently leaks transactions and locks; handle or narrow it
RL008     ``time.time()``/``time.monotonic()`` and the ``datetime``
          factories (``now``/``utcnow``/``today``) inside
          ``repro/obs/``, ``repro/llap/`` or ``repro/exec/`` outside
          the scrape-clock shim (``repro/obs/clock.py``) — monitoring
          samples must stamp wall time through one seam so
          replay/freeze stays possible, and expression evaluation must
          take statement time from ``EvalContext`` (a direct
          ``datetime.now()`` once leaked the host clock into
          CURRENT_DATE results)
RL009     ``ThreadingHTTPServer`` construction outside the two wire
          endpoints (``repro/obs/exposition.py``,
          ``repro/service/endpoint.py``) — every HTTP surface must
          live where shutdown, daemon-threading and error mapping
          are handled; ad-hoc servers leak threads in tests
RL010     manual ``lock.acquire()``/``lock.release()`` outside a
          ``with`` block or ``try/finally`` pairing — an exception
          between the two leaks the lock and hangs every later
          acquirer; use ``with`` (or release in a ``finally``)
RL011     ``threading.Thread(...)`` constructed outside the sanctioned
          modules (``repro/service/``, ``repro/obs/exposition.py``) or
          without ``daemon=`` — a stray non-daemon thread keeps the
          interpreter alive and hangs CI on failure
RL012     a dotted metric-name literal passed to a registry accessor
          (``counter``/``gauge``/``histogram``/``register_callback``)
          that is neither in the ``METRIC_HELP`` catalog nor
          accompanied by ``help=`` — the server registry rejects such
          registrations at runtime; the lint catches them statically
RL013     an execution-hook registration (``<something hook>.register``)
          outside ``repro/obs/hooks.py`` or a ``register_hook``
          wrapper — hooks installed from arbitrary call sites bypass
          the server's sanctioned path (``HiveServer2.register_hook``),
          so quarantine state and RL-auditing of hook providers
          cannot be reasoned about
========  ============================================================

Suppression: append ``# reprolint: disable=RL001`` (comma-separated
IDs, or ``all``) to the offending line, or put
``# reprolint: disable-file=RL001`` in the first five lines of a file.
Findings render as text or a machine-readable JSON report; the
``tools/reprolint`` CLI exits non-zero when findings remain.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Iterable, Optional

#: rule id -> one-line description (the rule catalog)
RULES = {
    "RL001": "shared-attribute mutation outside 'with self._lock:' in a "
             "lock-owning class",
    "RL002": "wall-clock call in a virtual-cost module (optimizer/"
             "runtime/config)",
    "RL003": "frozen plan-node mutation (object.__setattr__ or non-self "
             "attribute assignment in repro/plan)",
    "RL004": "bare 'except:' clause",
    "RL005": "mutable default argument",
    "RL006": "metric internals read outside repro/obs (use the "
             "registry snapshot API)",
    "RL007": "'except Exception: pass' silently swallows recovery-path "
             "failures",
    "RL008": "wall-clock call (time.time/time.monotonic/datetime.now/"
             "date.today) in repro/obs, repro/llap or repro/exec "
             "outside the scrape-clock shim",
    "RL009": "ThreadingHTTPServer constructed outside the sanctioned "
             "wire endpoints (obs/exposition.py, service/endpoint.py)",
    "RL010": "manual lock acquire()/release() outside 'with' or "
             "try/finally (leaks the lock on exception)",
    "RL011": "threading.Thread constructed outside sanctioned modules "
             "or without daemon= (stray threads hang CI)",
    "RL012": "metric name literal outside the METRIC_HELP catalog with "
             "no help= (undocumented series)",
    "RL013": "execution-hook registration outside repro/obs/hooks.py "
             "or a register_hook wrapper (use "
             "HiveServer2.register_hook)",
}

#: private metric-state attributes RL006 protects (Counter._value,
#: Histogram._counts, MetricsRegistry._series/_kinds/_callbacks)
OBS_INTERNAL_ATTRS = frozenset({"_value", "_values", "_counts",
                                "_series", "_kinds", "_callbacks"})

#: module path fragments where RL002 applies (virtual cost only)
WALL_CLOCK_SCOPES = ("repro/optimizer/", "repro/runtime/",
                     "repro/config.py")

#: calls RL002 flags: (module alias root, attribute) and bare names
WALL_CLOCK_CALLS = {("time", "time"), ("time", "perf_counter"),
                    ("time", "monotonic"), ("time", "process_time"),
                    ("datetime", "now"), ("datetime", "utcnow"),
                    ("datetime", "today")}

#: module path fragments where RL008 applies (scrape clock only);
#: repro/exec joined after CURRENT_DATE leaked the host clock into
#: query results — expression evaluation must use EvalContext.now_s
SCRAPE_CLOCK_SCOPES = ("repro/obs/", "repro/llap/", "repro/exec/")

#: the one file in those scopes allowed to touch the wall clock
SCRAPE_CLOCK_SHIM = "repro/obs/clock.py"

#: calls RL008 flags — narrower than RL002: tracing spans legitimately
#: use time.perf_counter, so only the absolute clocks are banned here
SCRAPE_CLOCK_CALLS = {("time", "time"), ("time", "monotonic")}

#: datetime factory methods RL008 also bans in its scopes, matched on
#: any dotted chain ending in ``datetime``/``date`` + one of these
#: (covers datetime.now, datetime.datetime.now, datetime.date.today,
#: date.today, datetime.utcnow — all read the host clock)
SCRAPE_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: receiver names the datetime check recognises as the stdlib types
SCRAPE_DATETIME_RECEIVERS = frozenset({"datetime", "date"})

#: the only files allowed to construct an HTTP server (RL009)
HTTP_SERVER_ALLOWED = ("repro/obs/exposition.py",
                       "repro/service/endpoint.py")

#: receiver attribute/variable names RL010 treats as locks
LOCK_RECEIVER_NAMES = frozenset({"_lock", "lock", "_cond", "cond",
                                 "_glock", "_rlock", "rlock", "mutex"})

#: modules allowed to construct threads (RL011): the serving layer
#: owns worker/housekeeper threads, the monitor endpoint its listener
THREAD_ALLOWED_SCOPES = ("repro/service/", "repro/obs/exposition.py")

#: method names that mutate built-in containers in place (RL001)
MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse",
})

#: methods construction-time mutation is allowed in (RL001)
CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})

#: registry accessor methods RL012 inspects for metric-name literals
METRIC_ACCESSORS = frozenset({"counter", "gauge", "histogram",
                              "register_callback"})

#: the one module whose hook registrations are the built-ins (RL013)
HOOK_REGISTRATION_ALLOWED = "repro/obs/hooks.py"

#: enclosing function names sanctioned to wrap a registration (RL013):
#: HiveServer2.register_hook is the public path user hooks go through
HOOK_REGISTRATION_WRAPPERS = frozenset({"register_hook"})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9, ]+)")
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*reprolint:\s*disable-file=([A-Za-z0-9, ]+)")


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.message}")


# --------------------------------------------------------------------------- #
# public API

def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[str]] = None) -> list[Finding]:
    """Lint one file's source text; returns unsuppressed findings."""
    enabled = set(rules) if rules is not None else set(RULES)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding("RL000", path, error.lineno or 0, 0,
                        f"syntax error: {error.msg}")]
    lines = source.splitlines()
    findings: list[Finding] = []
    norm = path.replace(os.sep, "/")
    if "RL001" in enabled:
        _check_lock_discipline(tree, path, findings)
    if "RL002" in enabled and any(s in norm for s in WALL_CLOCK_SCOPES):
        _check_wall_clock(tree, path, findings)
    if "RL003" in enabled:
        _check_frozen_mutation(tree, path, norm, findings)
    if "RL004" in enabled:
        _check_bare_except(tree, path, findings)
    if "RL005" in enabled:
        _check_mutable_defaults(tree, path, findings)
    if "RL006" in enabled and "repro/obs/" not in norm:
        _check_obs_internals(tree, path, findings)
    if "RL007" in enabled:
        _check_swallowed_except(tree, path, findings)
    if ("RL008" in enabled
            and any(s in norm for s in SCRAPE_CLOCK_SCOPES)
            and not norm.endswith(SCRAPE_CLOCK_SHIM)):
        _check_scrape_clock(tree, path, findings)
    if ("RL009" in enabled
            and not any(norm.endswith(p)
                        for p in HTTP_SERVER_ALLOWED)):
        _check_http_server(tree, path, findings)
    if "RL010" in enabled:
        _check_manual_lock_calls(tree, path, findings)
    if "RL011" in enabled:
        _check_thread_construction(tree, path, norm, findings)
    if "RL012" in enabled:
        _check_metric_help(tree, path, findings)
    if ("RL013" in enabled
            and not norm.endswith(HOOK_REGISTRATION_ALLOWED)):
        _check_hook_registration(tree, path, findings)
    for finding in findings:
        if 0 < finding.line <= len(lines):
            finding.snippet = lines[finding.line - 1].strip()
    file_suppressed = _file_suppressions(lines)
    return [f for f in findings
            if f.rule not in file_suppressed
            and not _line_suppressed(lines, f.line, f.rule)]


def lint_paths(paths: Iterable[str],
               rules: Optional[Iterable[str]] = None) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for filename in sorted(_python_files(paths)):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, filename, rules))
    return findings


def report_json(findings: list[Finding]) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {"tool": "reprolint", "version": 1,
               "rules": RULES,
               "counts": counts,
               "total": len(findings),
               "findings": [asdict(f) for f in findings]}
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST linter with repro-specific rules (RL001-RL013)")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--rules",
                        help="comma-separated rule ids (default: all)")
    args = parser.parse_args(argv)
    rules = (None if not args.rules
             else [r.strip().upper() for r in args.rules.split(",")])
    findings = lint_paths(args.paths, rules)
    if args.format == "json":
        print(report_json(findings))
    else:
        for finding in findings:
            print(finding.render())
        print(f"reprolint: {len(findings)} finding(s)")
    return 1 if findings else 0


# --------------------------------------------------------------------------- #
# helpers

def _python_files(paths: Iterable[str]) -> list[str]:
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                out.extend(os.path.join(root, f) for f in files
                           if f.endswith(".py"))
        else:
            out.append(path)
    return out


def _file_suppressions(lines: list[str]) -> set[str]:
    suppressed: set[str] = set()
    for line in lines[:5]:
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            suppressed |= {r.strip().upper()
                           for r in match.group(1).split(",")}
    if "ALL" in suppressed:
        return set(RULES)
    return suppressed


def _line_suppressed(lines: list[str], lineno: int, rule: str) -> bool:
    if not 0 < lineno <= len(lines):
        return False
    match = _SUPPRESS_RE.search(lines[lineno - 1])
    if not match:
        return False
    ids = {r.strip().upper() for r in match.group(1).split(",")}
    return rule in ids or "ALL" in ids


def _self_attr_root(node: ast.expr) -> Optional[str]:
    """If ``node`` is an attribute/subscript chain rooted at ``self``,
    return the first attribute name (``self.<root>...``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        node = node.value
    return None


def _is_lock_context(item: ast.expr) -> bool:
    """True for ``with self._lock:`` (and lock-attribute variants)."""
    if isinstance(item, ast.Call):
        item = item.func            # e.g. self._lock.acquire_timeout()
    root = _self_attr_root(item)
    return root == "_lock"


# --------------------------------------------------------------------------- #
# RL001 — lock discipline

def _check_lock_discipline(tree, path, findings):
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        if not _declares_lock(cls):
            continue
        for method in cls.body:
            if not isinstance(method,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in CONSTRUCTORS:
                continue
            _scan_method(method, cls.name, path, findings)


def _declares_lock(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "_lock"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return True
    return False


def _scan_method(method, class_name, path, findings):
    def walk(node, locked: bool) -> None:
        if isinstance(node, ast.With):
            inner = locked or any(_is_lock_context(i.context_expr)
                                  for i in node.items)
            for child in node.body:
                walk(child, inner)
            return
        if not locked:
            attr = _mutated_self_attr(node)
            if attr is not None and attr != "_lock":
                findings.append(Finding(
                    "RL001", path, node.lineno, node.col_offset,
                    f"{class_name}.{method.name} mutates shared "
                    f"'self.{attr}' outside 'with self._lock:'"))
        for child in ast.iter_child_nodes(node):
            walk(child, locked)

    for statement in method.body:
        walk(statement, False)


def _mutated_self_attr(node) -> Optional[str]:
    """Attribute name if this statement mutates ``self.<attr>``."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    attr = _self_attr_root(element)
                    if attr is not None:
                        return attr
            attr = _self_attr_root(target)
            if attr is not None:
                return attr
    if isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _self_attr_root(target)
            if attr is not None:
                return attr
    if (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr in MUTATORS):
        return _self_attr_root(node.value.func.value)
    return None


# --------------------------------------------------------------------------- #
# RL002 — wall clock in virtual-cost modules

def _check_wall_clock(tree, path, findings):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            if (func.value.id, func.attr) in WALL_CLOCK_CALLS:
                name = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name):
            if any(func.id == attr for _, attr in WALL_CLOCK_CALLS
                   if attr != "today"):
                name = func.id
        if name:
            findings.append(Finding(
                "RL002", path, node.lineno, node.col_offset,
                f"wall-clock call {name}() in a virtual-cost module — "
                "only the calibrated cost model may produce time here"))


# --------------------------------------------------------------------------- #
# RL008 — wall clock in monitoring/LLAP modules

def _datetime_factory(func: ast.expr) -> Optional[str]:
    """Dotted name when ``func`` is a host-clock datetime factory.

    Matches any attribute chain whose last receiver segment is
    ``datetime`` or ``date`` and whose call attribute is one of
    ``now``/``utcnow``/``today`` — so ``datetime.now``,
    ``datetime.datetime.now`` and ``datetime.date.today`` all hit,
    while ``self.clock.now`` does not.
    """
    if not isinstance(func, ast.Attribute) \
            or func.attr not in SCRAPE_DATETIME_ATTRS:
        return None
    recv = func.value
    if isinstance(recv, ast.Attribute):
        recv_name = recv.attr
    elif isinstance(recv, ast.Name):
        recv_name = recv.id
    else:
        return None
    if recv_name not in SCRAPE_DATETIME_RECEIVERS:
        return None
    return f"{ast.unparse(recv)}.{func.attr}"


def _check_scrape_clock(tree, path, findings):
    """RL008 — absolute wall-clock reads must go through the shim.

    Samplers in ``repro/obs`` and ``repro/llap`` stamp each sample
    with both virtual and wall time; routing the wall reads through
    ``repro.obs.clock`` keeps a single seam to freeze in tests and
    replay tooling.  ``repro/exec`` is in scope for a different
    reason: CURRENT_DATE/CURRENT_TIMESTAMP once read the host clock
    directly, making query results non-reproducible — expression code
    must take statement time from ``EvalContext``.  The datetime
    factories (``datetime.now``/``utcnow``/``date.today``) are banned
    alongside ``time.time``/``time.monotonic``.  ``time.perf_counter``
    stays allowed — tracing measures *durations*, which replay does
    not need to pin.
    """
    banned = {attr for _, attr in SCRAPE_CLOCK_CALLS}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        hint = "use repro.obs.clock.wall_now_s()/monotonic_s()"
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and (func.value.id, func.attr) in SCRAPE_CLOCK_CALLS:
            name = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in banned:
            name = func.id
        else:
            name = _datetime_factory(func)
            if name is not None:
                hint = ("take statement time from EvalContext "
                        "(statement_date()/statement_timestamp())")
        if name:
            findings.append(Finding(
                "RL008", path, node.lineno, node.col_offset,
                f"wall-clock call {name}() outside the scrape-clock "
                f"shim — {hint}"))


# --------------------------------------------------------------------------- #
# RL009 — HTTP servers only at the sanctioned wire endpoints

def _check_http_server(tree, path, findings):
    """RL009 — ``ThreadingHTTPServer(...)`` outside the endpoints.

    The monitor (``repro/obs/exposition.py``) and the serving layer
    (``repro/service/endpoint.py``) own HTTP: ephemeral-port binding,
    daemon threading, clean ``shutdown()``/``server_close()`` and JSON
    error mapping all live there.  A server constructed anywhere else
    bypasses that lifecycle and leaks listener threads in tests.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) \
                and func.id == "ThreadingHTTPServer":
            name = func.id
        elif isinstance(func, ast.Attribute) \
                and func.attr == "ThreadingHTTPServer":
            name = func.attr
        if name:
            findings.append(Finding(
                "RL009", path, node.lineno, node.col_offset,
                "ThreadingHTTPServer constructed outside the wire "
                "endpoints — use MonitorHttpServer (obs) or "
                "ServiceHttpServer (service)"))


# --------------------------------------------------------------------------- #
# RL010 — manual lock acquire/release pairing

def _lock_call_receiver(node: ast.Call) -> Optional[tuple[str, str]]:
    """``(receiver_source, "acquire"|"release")`` when ``node`` is a
    manual lock call on a lock-named receiver, else None."""
    func = node.func
    if not isinstance(func, ast.Attribute) \
            or func.attr not in ("acquire", "release"):
        return None
    recv = func.value
    if isinstance(recv, ast.Attribute):
        name = recv.attr
    elif isinstance(recv, ast.Name):
        name = recv.id
    else:
        return None
    if name not in LOCK_RECEIVER_NAMES:
        return None
    return ast.unparse(recv), func.attr


def _check_manual_lock_calls(tree, path, findings):
    """RL010 — ``lock.acquire()`` must be paired with a ``finally:
    lock.release()``.

    The sanctioned shapes::

        lock.acquire()              try:
        try:                            lock.acquire()
            ...                         ...
        finally:                    finally:
            lock.release()              lock.release()

    Anything else — acquire with the release later in the same
    straight-line block, release outside any ``finally`` — leaks the
    lock when an exception lands between the two.  Conditional probes
    (``if lock.acquire(False):``) are out of scope: they appear in
    expressions, not statements, and release on both arms by
    construction or they'd be caught here anyway.
    """

    def releases_in_finally(try_node: ast.Try, receiver: str) -> bool:
        for stmt in try_node.finalbody:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    info = _lock_call_receiver(node)
                    if info == (receiver, "release"):
                        return True
        return False

    def scan_block(stmts, covered: frozenset, in_finally: bool):
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Call):
                info = _lock_call_receiver(stmt.value)
                if info is not None:
                    receiver, what = info
                    if what == "acquire":
                        following = stmts[index + 1:index + 2]
                        paired = receiver in covered or any(
                            isinstance(n, ast.Try)
                            and releases_in_finally(n, receiver)
                            for n in following)
                        if not paired:
                            findings.append(Finding(
                                "RL010", path, stmt.lineno,
                                stmt.col_offset,
                                f"'{receiver}.acquire()' without a "
                                "try/finally release — an exception "
                                "here leaks the lock; use 'with'"))
                    elif not in_finally and receiver not in covered:
                        findings.append(Finding(
                            "RL010", path, stmt.lineno,
                            stmt.col_offset,
                            f"'{receiver}.release()' outside a "
                            "'finally:' block — pair it with the "
                            "acquire via try/finally or 'with'"))
            for block, inner_covered, inner_finally in _sub_blocks(
                    stmt, covered, in_finally):
                scan_block(block, inner_covered, inner_finally)

    def _sub_blocks(stmt, covered, in_finally):
        if isinstance(stmt, ast.Try):
            body_covered = covered | {
                receiver for receiver in _released_receivers(stmt)}
            yield stmt.body, body_covered, False
            for handler in stmt.handlers:
                yield handler.body, body_covered, False
            yield stmt.orelse, body_covered, False
            yield stmt.finalbody, covered, True
            return
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field_name, None)
            if block:
                yield block, covered, in_finally

    def _released_receivers(try_node: ast.Try) -> set[str]:
        out = set()
        for stmt in try_node.finalbody:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    info = _lock_call_receiver(node)
                    if info is not None and info[1] == "release":
                        out.add(info[0])
        return out

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_block(node.body, frozenset(), False)


# --------------------------------------------------------------------------- #
# RL011 — thread construction discipline

def _check_thread_construction(tree, path, norm, findings):
    """RL011 — ``threading.Thread`` only in sanctioned modules, and
    always with explicit ``daemon=``.

    The serving layer (``repro/service/``) owns worker and housekeeper
    threads; the monitor endpoint owns its listener.  A thread created
    elsewhere has no owner to join it, and a thread created anywhere
    without ``daemon=`` keeps the interpreter alive when a test dies
    mid-run — the classic hung-CI shape.
    """
    sanctioned = any(s in norm for s in THREAD_ALLOWED_SCOPES)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_thread = (
            (isinstance(func, ast.Attribute) and func.attr == "Thread"
             and isinstance(func.value, ast.Name)
             and func.value.id == "threading")
            or (isinstance(func, ast.Name) and func.id == "Thread"))
        if not is_thread:
            continue
        if not sanctioned:
            findings.append(Finding(
                "RL011", path, node.lineno, node.col_offset,
                "threading.Thread constructed outside the sanctioned "
                "modules (repro/service/, obs/exposition.py) — no "
                "owner will join this thread"))
        elif not any(k.arg == "daemon" for k in node.keywords):
            findings.append(Finding(
                "RL011", path, node.lineno, node.col_offset,
                "threading.Thread without explicit daemon= — a "
                "non-daemon thread hangs the interpreter if its "
                "owner dies before joining it"))


# --------------------------------------------------------------------------- #
# RL003 — frozen plan-node mutation

def _check_frozen_mutation(tree, path, norm, findings):
    in_plan_pkg = "repro/plan/" in norm
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"):
            findings.append(Finding(
                "RL003", path, node.lineno, node.col_offset,
                "object.__setattr__ bypasses frozen plan nodes — "
                "rebuild the node instead of mutating it"))
        elif in_plan_pkg and isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and not (isinstance(target.value, ast.Name)
                                 and target.value.id == "self")):
                    findings.append(Finding(
                        "RL003", path, node.lineno, node.col_offset,
                        f"attribute assignment '{ast.unparse(target)}' "
                        "in repro/plan — plan trees are immutable"))


# --------------------------------------------------------------------------- #
# RL004 / RL005

def _check_bare_except(tree, path, findings):
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                "RL004", path, node.lineno, node.col_offset,
                "bare 'except:' also catches KeyboardInterrupt/"
                "SystemExit — name the exception class"))


def _check_swallowed_except(tree, path, findings):
    """RL007 — a blanket handler whose whole body is ``pass``/``...``.

    ``except Exception: pass`` around an abort/release/cleanup turns a
    real failure (lock leak, half-aborted transaction) into silence;
    narrow the exception type or actually handle it.  Specific types
    (``except KeyError: pass``) are allowed — they document intent.
    """
    broad = ("Exception", "BaseException")

    def is_broad(expr: Optional[ast.expr]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in broad
        if isinstance(expr, ast.Tuple):
            return any(is_broad(e) for e in expr.elts)
        return False

    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not is_broad(node.type):
            continue
        only_noise = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in node.body)
        if only_noise:
            findings.append(Finding(
                "RL007", path, node.lineno, node.col_offset,
                "'except Exception: pass' swallows recovery-path "
                "failures — narrow the type or handle the error"))


def _check_obs_internals(tree, path, findings):
    """RL006 — metric internals must not be read outside repro/obs.

    ``Counter._value``, ``Histogram._counts`` and the registry's
    ``_series``/``_kinds``/``_callbacks`` maps are guarded by locks
    inside the obs package; any other module touching them races those
    locks and skips the kind checks.  ``self.<attr>`` is exempt so
    unrelated classes may keep private fields with these names.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in OBS_INTERNAL_ATTRS:
            continue
        if isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls"):
            continue
        findings.append(Finding(
            "RL006", path, node.lineno, node.col_offset,
            f"direct metric-internals access "
            f"'{ast.unparse(node)}' outside repro/obs — read through "
            "registry.value()/total()/percentile()/snapshot()"))


# --------------------------------------------------------------------------- #
# RL012 — metric names must be documented

def _check_metric_help(tree, path, findings):
    """RL012 — undocumented metric-name literals.

    The server's registry runs with ``require_help=True``, so a
    ``registry.counter("my.metric")`` with neither a ``help=`` kwarg
    nor a ``METRIC_HELP`` catalog entry raises at first use — usually
    deep inside a query, long after the typo shipped.  This check
    surfaces the problem statically.  Only dotted string *literals*
    are inspected; names built with f-strings or variables are a
    documented blind spot (such sites pass ``help=`` inline anyway,
    which also satisfies this rule).
    """
    try:
        from ..obs.registry import METRIC_HELP
    except ImportError:   # linting outside the package tree
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in METRIC_ACCESSORS:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            continue
        name = first.value
        if "." not in name or name in METRIC_HELP:
            continue
        if any(k.arg == "help" for k in node.keywords):
            continue
        findings.append(Finding(
            "RL012", path, node.lineno, node.col_offset,
            f"metric {name!r} is not in the METRIC_HELP catalog and "
            "passes no help= — the require_help registry rejects it "
            "at runtime; document the series"))


def _check_hook_registration(tree, path, findings):
    """RL013 — hook registrations outside the sanctioned paths.

    A call ``<receiver>.register(...)`` whose receiver chain names a
    hook registry (any dotted part containing ``hook``) must live in
    ``repro/obs/hooks.py`` (the built-ins) or inside a function named
    ``register_hook`` (the server's public wrapper).  Everything else
    installs side effects on the statement pipeline from a place no
    reader expects; route it through ``HiveServer2.register_hook``.
    """
    def receiver_parts(node) -> list[str]:
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return parts

    def visit(node, func_stack):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func_stack = func_stack + [node.name]
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "register"
                    and any("hook" in part.lower()
                            for part in receiver_parts(func.value))
                    and not any(name in HOOK_REGISTRATION_WRAPPERS
                                for name in func_stack)):
                findings.append(Finding(
                    "RL013", path, node.lineno, node.col_offset,
                    "execution hook registered outside "
                    "repro/obs/hooks.py or a register_hook wrapper — "
                    "use HiveServer2.register_hook"))
        for child in ast.iter_child_nodes(node):
            visit(child, func_stack)

    visit(tree, [])


def _check_mutable_defaults(tree, path, findings):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default,
                                 (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray")):
                mutable = True
            if mutable:
                name = getattr(node, "name", "<lambda>")
                findings.append(Finding(
                    "RL005", path, default.lineno, default.col_offset,
                    f"mutable default argument in {name}() is shared "
                    "across calls — default to None and build inside"))


if __name__ == "__main__":
    raise SystemExit(main())
