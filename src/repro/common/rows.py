"""Schemas and columns.

A :class:`Schema` is an ordered list of :class:`Column` descriptors and is
attached to tables, file readers, and every node of a query plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import AnalysisError
from .types import DataType


@dataclass(frozen=True)
class Column:
    """A named, typed column; ``nullable`` participates in constraint-based

    optimizer transformations (Section 4.4 uses NOT NULL metadata).
    """

    name: str
    dtype: DataType
    nullable: bool = True
    comment: str = ""

    def renamed(self, name: str) -> "Column":
        return Column(name, self.dtype, self.nullable, self.comment)

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype}{null}"


class Schema:
    """Ordered collection of columns with case-insensitive name lookup."""

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        self._index: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._index:
                raise AnalysisError(f"duplicate column name: {col.name}")
            self._index[key] = i

    # -- lookup ---------------------------------------------------------- #
    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise AnalysisError(f"unknown column: {name}") from None

    def field(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __getitem__(self, i: int) -> Column:
        return self.columns[i]

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    # -- derivation ------------------------------------------------------ #
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def types(self) -> list[DataType]:
        return [c.dtype for c in self.columns]

    def select(self, names: Sequence[str]) -> "Schema":
        return Schema(self.field(n) for n in names)

    def concat(self, other: "Schema", dedupe: bool = False) -> "Schema":
        """Join schemas; with ``dedupe`` clashing names get a suffix."""
        merged = list(self.columns)
        seen = {c.name.lower() for c in merged}
        for col in other.columns:
            name = col.name
            if name.lower() in seen:
                if not dedupe:
                    raise AnalysisError(f"ambiguous column in join: {name}")
                suffix = 1
                while f"{name}_{suffix}".lower() in seen:
                    suffix += 1
                name = f"{name}_{suffix}"
            merged.append(col.renamed(name))
            seen.add(name.lower())
        return Schema(merged)

    def prefixed(self, prefix: str) -> "Schema":
        return Schema(c.renamed(f"{prefix}.{c.name}") for c in self.columns)

    def row_width_bytes(self) -> int:
        return sum(c.dtype.width_bytes for c in self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self.columns)
        return f"Schema({inner})"
