"""Synchronization-primitive seam: one construction point for locks.

Every lock, re-entrant lock and condition variable the warehouse
creates goes through these factories instead of calling
``threading.Lock()`` directly.  In normal runs the factories return
the stdlib primitives unchanged — zero overhead, zero indirection on
the acquire/release hot path.  When the runtime lock sanitizer is
installed (``HIVE_SANITIZE=1``, :mod:`repro.lint.sanitizer`), the
factories hand back instrumented drop-in wrappers that record
per-thread acquisition stacks, hold times and the observed lock-order
graph.

The ``name`` passed at construction is the lock's *site identity*
(``"SimFileSystem._lock"``).  The sanitizer aggregates instances by
site — per-object locks (one per service session, one per admission
gate) share one node in the lock-order graph, which is also the token
the static analyzer (:mod:`repro.lint.concurrency`) uses, so the two
passes talk about the same graph.
"""

from __future__ import annotations

import threading
from typing import Optional

#: the installed sanitizer (a ``repro.lint.sanitizer.LockSanitizer``)
#: or None; module-global because locks outlive any one server
_factory = None


def install(factory) -> None:
    """Route subsequent lock construction through ``factory``."""
    global _factory
    _factory = factory


def uninstall() -> None:
    global _factory
    _factory = None


def active():
    """The installed sanitizer, or None when locks are raw."""
    return _factory


def new_lock(name: str = "lock"):
    """A mutex (``threading.Lock`` unless the sanitizer is installed)."""
    if _factory is not None:
        return _factory.lock(name)
    return threading.Lock()


def new_rlock(name: str = "rlock"):
    """A re-entrant mutex (``threading.RLock`` or sanitized wrapper)."""
    if _factory is not None:
        return _factory.rlock(name)
    return threading.RLock()


def new_condition(name: str = "cond", lock: Optional[object] = None):
    """A condition variable; ``lock`` defaults to a fresh re-entrant
    lock carrying the same site name."""
    if _factory is not None:
        return _factory.condition(name, lock)
    return threading.Condition(lock)
