"""Shared primitives: type system, schemas, vectorized batches, sketches."""

from .types import (
    DataType, BOOLEAN, INT, BIGINT, DOUBLE, STRING, DATE, TIMESTAMP,
    DecimalType, VarcharType, type_from_name,
)
from .rows import Column, Schema
from .vector import ColumnVector, VectorBatch

__all__ = [
    "DataType", "BOOLEAN", "INT", "BIGINT", "DOUBLE", "STRING", "DATE",
    "TIMESTAMP", "DecimalType", "VarcharType", "type_from_name",
    "Column", "Schema", "ColumnVector", "VectorBatch",
]
