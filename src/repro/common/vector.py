"""Vectorized column batches.

The runtime processes data in batches of columns rather than row-by-row,
mirroring Hive's vectorized execution model: a :class:`VectorBatch` holds
one :class:`ColumnVector` (numpy array + null mask) per schema column.
LLAP's I/O elevator produces these batches directly from the columnar file
format so that IO, cache and execution share one representation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ExecutionError
from .rows import Schema
from .types import DataType

#: default number of rows per batch (Hive uses 1024).
DEFAULT_BATCH_SIZE = 1024


class ColumnVector:
    """One column worth of values plus a null mask.

    ``data`` is a numpy array in the type's storage representation and
    ``nulls`` is a boolean array where True marks NULL.  Values under a
    null position are unspecified.
    """

    __slots__ = ("dtype", "data", "nulls")

    def __init__(self, dtype: DataType, data: np.ndarray,
                 nulls: np.ndarray | None = None):
        self.dtype = dtype
        self.data = data
        if nulls is None:
            nulls = np.zeros(len(data), dtype=bool)
        self.nulls = nulls

    # -- construction ----------------------------------------------------- #
    @classmethod
    def from_values(cls, dtype: DataType, values: Sequence) -> "ColumnVector":
        """Build from Python values (``None`` becomes NULL)."""
        n = len(values)
        nulls = np.fromiter((v is None for v in values), dtype=bool, count=n)
        storage = [dtype.to_storage(v) for v in values]
        np_dtype = dtype.numpy_dtype
        if np_dtype == np.dtype(object):
            data = np.empty(n, dtype=object)
            for i, v in enumerate(storage):
                data[i] = "" if v is None else v
        else:
            fill = 0
            data = np.fromiter(
                (fill if v is None else v for v in storage),
                dtype=np_dtype, count=n)
        return cls(dtype, data, nulls)

    @classmethod
    def empty(cls, dtype: DataType) -> "ColumnVector":
        return cls(dtype, np.empty(0, dtype=dtype.numpy_dtype),
                   np.empty(0, dtype=bool))

    # -- basic ops --------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.data)

    def take(self, indices: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.dtype, self.data[indices],
                            self.nulls[indices])

    def filter(self, mask: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.dtype, self.data[mask], self.nulls[mask])

    def slice(self, start: int, stop: int) -> "ColumnVector":
        return ColumnVector(self.dtype, self.data[start:stop],
                            self.nulls[start:stop])

    def value(self, i: int):
        """Python value at row ``i`` (``None`` if NULL)."""
        if self.nulls[i]:
            return None
        return self.dtype.from_storage(self.data[i])

    def to_values(self) -> list:
        convert = self.dtype.from_storage
        return [None if self.nulls[i] else convert(self.data[i])
                for i in range(len(self.data))]

    @staticmethod
    def concat(vectors: Sequence["ColumnVector"]) -> "ColumnVector":
        if not vectors:
            raise ExecutionError("cannot concat zero vectors")
        dtype = vectors[0].dtype
        data = np.concatenate([v.data for v in vectors])
        nulls = np.concatenate([v.nulls for v in vectors])
        return ColumnVector(dtype, data, nulls)

    def nbytes(self) -> int:
        """Approximate memory footprint, used by the LLAP cache."""
        if self.data.dtype == np.dtype(object):
            payload = sum(len(str(v)) for v in self.data)
        else:
            payload = self.data.nbytes
        return int(payload) + self.nulls.nbytes


class VectorBatch:
    """A horizontal slice of rows stored column-wise."""

    __slots__ = ("schema", "vectors")

    def __init__(self, schema: Schema, vectors: Sequence[ColumnVector]):
        if len(schema) != len(vectors):
            raise ExecutionError(
                f"schema has {len(schema)} columns, got {len(vectors)} vectors")
        lengths = {len(v) for v in vectors}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged vectors in batch: {lengths}")
        self.schema = schema
        self.vectors = list(vectors)

    # -- construction ----------------------------------------------------- #
    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "VectorBatch":
        rows = list(rows)
        columns = []
        for i, col in enumerate(schema):
            columns.append(
                ColumnVector.from_values(col.dtype, [r[i] for r in rows]))
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "VectorBatch":
        return cls(schema, [ColumnVector.empty(c.dtype) for c in schema])

    # -- shape ------------------------------------------------------------- #
    @property
    def num_rows(self) -> int:
        return len(self.vectors[0]) if self.vectors else 0

    def __len__(self) -> int:
        return self.num_rows

    def nbytes(self) -> int:
        return sum(v.nbytes() for v in self.vectors)

    # -- transforms -------------------------------------------------------- #
    def column(self, name: str) -> ColumnVector:
        return self.vectors[self.schema.index_of(name)]

    def filter(self, mask: np.ndarray) -> "VectorBatch":
        return VectorBatch(self.schema, [v.filter(mask) for v in self.vectors])

    def take(self, indices: np.ndarray) -> "VectorBatch":
        return VectorBatch(self.schema, [v.take(indices) for v in self.vectors])

    def slice(self, start: int, stop: int) -> "VectorBatch":
        return VectorBatch(self.schema,
                           [v.slice(start, stop) for v in self.vectors])

    def project(self, indices: Sequence[int], schema: Schema) -> "VectorBatch":
        return VectorBatch(schema, [self.vectors[i] for i in indices])

    def with_schema(self, schema: Schema) -> "VectorBatch":
        return VectorBatch(schema, self.vectors)

    def to_rows(self) -> list[tuple]:
        columns = [v.to_values() for v in self.vectors]
        return [tuple(col[i] for col in columns) for i in range(self.num_rows)]

    @staticmethod
    def concat(schema: Schema, batches: Sequence["VectorBatch"]) -> "VectorBatch":
        batches = [b for b in batches if b.num_rows > 0]
        if not batches:
            return VectorBatch.empty(schema)
        vectors = [ColumnVector.concat([b.vectors[i] for b in batches])
                   for i in range(len(schema))]
        return VectorBatch(schema, vectors)


def batches_to_rows(batches: Iterable[VectorBatch]) -> list[tuple]:
    rows: list[tuple] = []
    for batch in batches:
        rows.extend(batch.to_rows())
    return rows


def rows_to_batches(schema: Schema, rows: Sequence[Sequence],
                    batch_size: int = DEFAULT_BATCH_SIZE):
    """Yield :class:`VectorBatch` chunks of at most ``batch_size`` rows."""
    for start in range(0, len(rows), batch_size):
        yield VectorBatch.from_rows(schema, rows[start:start + batch_size])
    if not rows:
        yield VectorBatch.empty(schema)
