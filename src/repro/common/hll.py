"""HyperLogLog++ cardinality sketch.

HMS stores the number-of-distinct-values statistic as a HyperLogLog++
sketch so that statistics remain *additive*: inserts and per-partition
statistics merge without loss of accuracy (Section 4.1, citing Heule et
al., EDBT 2013).

This implementation follows the standard dense HLL layout with the HLL++
empty-register linear-counting correction for small cardinalities.
"""

from __future__ import annotations

import hashlib
import math
import struct

import numpy as np

from ..errors import HiveError


class HyperLogLog:
    """Dense HyperLogLog++ sketch with 2**p registers."""

    def __init__(self, p: int = 14):
        if not 4 <= p <= 18:
            raise HiveError("HLL precision must be in [4, 18]")
        self.p = p
        self.m = 1 << p
        self.registers = np.zeros(self.m, dtype=np.uint8)
        self._alpha = _alpha(self.m)

    # -- updates ----------------------------------------------------------- #
    def add(self, value) -> None:
        h = _hash64(value)
        idx = h >> (64 - self.p)
        remainder = (h << self.p) & 0xFFFFFFFFFFFFFFFF
        rank = _leading_zeros64(remainder) + 1
        if rank > self.registers[idx]:
            self.registers[idx] = rank

    def add_all(self, values) -> None:
        for value in values:
            self.add(value)

    # -- estimation ---------------------------------------------------------- #
    def cardinality(self) -> int:
        registers = self.registers.astype(np.float64)
        estimate = self._alpha * self.m * self.m / np.sum(
            np.power(2.0, -registers))
        zeros = int(np.count_nonzero(self.registers == 0))
        if estimate <= 2.5 * self.m and zeros > 0:
            # linear counting for the small range (HLL++ correction)
            estimate = self.m * math.log(self.m / zeros)
        return int(round(estimate))

    # -- merging ----------------------------------------------------------- #
    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Lossless union: register-wise max.  Precision must match."""
        if self.p != other.p:
            raise HiveError(
                f"cannot merge HLL sketches of precision {self.p} and {other.p}")
        merged = HyperLogLog(self.p)
        np.maximum(self.registers, other.registers, out=merged.registers)
        return merged

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.p)
        clone.registers = self.registers.copy()
        return clone

    # -- serialization --------------------------------------------------------- #
    def to_bytes(self) -> bytes:
        return struct.pack("<B", self.p) + self.registers.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "HyperLogLog":
        p = struct.unpack_from("<B", data, 0)[0]
        sketch = cls(p)
        sketch.registers = np.frombuffer(
            data[1:], dtype=np.uint8).copy()
        if len(sketch.registers) != sketch.m:
            raise HiveError("corrupt HLL payload")
        return sketch


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


def _hash64(value) -> int:
    payload = repr(value).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _leading_zeros64(x: int) -> int:
    if x == 0:
        return 64
    return 64 - x.bit_length()
