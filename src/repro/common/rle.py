"""Run-length encoding codec.

LLAP's internal format is a run-length encoded columnar layout shared by
I/O, cache, and execution (Section 5.1).  This module provides the RLE
codec used by the ORC-like file format and by the LLAP chunk cache.

The encoding alternates two kinds of runs over a numpy array:

* *repeat run*: ``(count, value)`` for ``count >= MIN_REPEAT`` equal values,
* *literal run*: a verbatim stretch of values.

Null masks are encoded the same way (booleans compress extremely well).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

MIN_REPEAT = 3


@dataclass
class RepeatRun:
    count: int
    value: object


@dataclass
class LiteralRun:
    values: np.ndarray


Run = Union[RepeatRun, LiteralRun]


def encode(values: np.ndarray) -> list[Run]:
    """Encode a 1-D numpy array into a list of runs."""
    n = len(values)
    runs: list[Run] = []
    literal_start = 0
    i = 0
    while i < n:
        j = i + 1
        # object arrays can hold None; use equality carefully
        while j < n and _eq(values[j], values[i]):
            j += 1
        run_len = j - i
        if run_len >= MIN_REPEAT:
            if literal_start < i:
                runs.append(LiteralRun(values[literal_start:i].copy()))
            runs.append(RepeatRun(run_len, values[i]))
            literal_start = j
        i = j
    if literal_start < n:
        runs.append(LiteralRun(values[literal_start:n].copy()))
    return runs


def decode(runs: list[Run], dtype: np.dtype) -> np.ndarray:
    """Reassemble runs into a numpy array of ``dtype``."""
    total = encoded_length(runs)
    out = np.empty(total, dtype=dtype)
    pos = 0
    for run in runs:
        if isinstance(run, RepeatRun):
            out[pos:pos + run.count] = run.value
            pos += run.count
        else:
            out[pos:pos + len(run.values)] = run.values
            pos += len(run.values)
    return out


def encoded_length(runs: list[Run]) -> int:
    return sum(r.count if isinstance(r, RepeatRun) else len(r.values)
               for r in runs)


def encoded_size_bytes(runs: list[Run], value_width: int) -> int:
    """Approximate encoded byte size (repeat runs cost one value + count)."""
    size = 0
    for run in runs:
        if isinstance(run, RepeatRun):
            size += value_width + 4
        else:
            size += len(run.values) * value_width + 4
    return size


def _eq(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    # NaN never equals itself but belongs in the same run for compression
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    return bool(a == b)
