"""SQL type system.

Hive uses a nested data model with the usual atomic SQL types; this module
implements the atomic types that the reproduction's SQL dialect exposes
(BOOLEAN, INT, BIGINT, DOUBLE, DECIMAL(p, s), STRING/VARCHAR, DATE,
TIMESTAMP) together with the coercion lattice used by the analyzer.

Each type knows its numpy storage dtype (used by the vectorized runtime)
and an estimate of its on-disk width (used by the optimizer's cost model).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError

_EPOCH_DATE = datetime.date(1970, 1, 1)


@dataclass(frozen=True)
class DataType:
    """An atomic SQL data type.

    Parameterized types (DECIMAL, VARCHAR) subclass this and add their
    parameters; the ``name`` field is the canonical SQL spelling.
    """

    name: str

    # -- classification ------------------------------------------------ #
    @property
    def is_numeric(self) -> bool:
        return self.name in ("INT", "BIGINT", "DOUBLE") or isinstance(
            self, DecimalType)

    @property
    def is_integral(self) -> bool:
        return self.name in ("INT", "BIGINT")

    @property
    def is_string(self) -> bool:
        return self.name == "STRING" or isinstance(self, VarcharType)

    @property
    def is_temporal(self) -> bool:
        return self.name in ("DATE", "TIMESTAMP")

    # -- physical layout ------------------------------------------------ #
    @property
    def numpy_dtype(self) -> np.dtype:
        """Storage dtype for vectorized execution.

        Strings use object arrays; DATE is stored as int32 days since
        epoch; TIMESTAMP as int64 milliseconds since epoch; DECIMAL is
        approximated with float64 (documented substitution: exact decimal
        arithmetic is not needed for any reproduced experiment).
        """
        return _NUMPY_DTYPES[self._family()]

    @property
    def width_bytes(self) -> int:
        """Estimated encoded width, used by the optimizer cost model."""
        return _WIDTHS[self._family()]

    def _family(self) -> str:
        if isinstance(self, DecimalType):
            return "DECIMAL"
        if isinstance(self, VarcharType):
            return "STRING"
        return self.name

    # -- value conversion ------------------------------------------------ #
    def to_storage(self, value):
        """Convert a Python value to its storage representation."""
        if value is None:
            return None
        family = self._family()
        if family in ("INT", "BIGINT"):
            return int(value)
        if family in ("DOUBLE", "DECIMAL"):
            return float(value)
        if family == "BOOLEAN":
            return bool(value)
        if family == "STRING":
            return str(value)
        if family == "DATE":
            if isinstance(value, datetime.date):
                return (value - _EPOCH_DATE).days
            if isinstance(value, str):
                parsed = datetime.date.fromisoformat(value)
                return (parsed - _EPOCH_DATE).days
            return int(value)
        if family == "TIMESTAMP":
            if isinstance(value, datetime.datetime):
                return int(value.timestamp() * 1000)
            if isinstance(value, str):
                parsed = datetime.datetime.fromisoformat(value)
                return int(parsed.timestamp() * 1000)
            return int(value)
        raise AnalysisError(f"cannot store value of type {family}")

    def from_storage(self, value):
        """Convert a storage value back to the user-facing Python value."""
        if value is None:
            return None
        family = self._family()
        if family == "DATE":
            return _EPOCH_DATE + datetime.timedelta(days=int(value))
        if family == "TIMESTAMP":
            return datetime.datetime.fromtimestamp(value / 1000.0)
        if family == "BOOLEAN":
            return bool(value)
        if family in ("INT", "BIGINT"):
            return int(value)
        if family in ("DOUBLE", "DECIMAL"):
            return float(value)
        return value

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DecimalType(DataType):
    """DECIMAL(precision, scale); stored as float64 (see module docs)."""

    precision: int = 10
    scale: int = 0

    def __str__(self) -> str:
        return f"DECIMAL({self.precision},{self.scale})"


@dataclass(frozen=True)
class VarcharType(DataType):
    """VARCHAR(length); behaves as STRING at runtime."""

    length: int = 255

    def __str__(self) -> str:
        return f"VARCHAR({self.length})"


BOOLEAN = DataType("BOOLEAN")
INT = DataType("INT")
BIGINT = DataType("BIGINT")
DOUBLE = DataType("DOUBLE")
STRING = DataType("STRING")
DATE = DataType("DATE")
TIMESTAMP = DataType("TIMESTAMP")


def decimal(precision: int = 10, scale: int = 0) -> DecimalType:
    return DecimalType("DECIMAL", precision, scale)


def varchar(length: int = 255) -> VarcharType:
    return VarcharType("VARCHAR", length)


_NUMPY_DTYPES = {
    "BOOLEAN": np.dtype(np.bool_),
    "INT": np.dtype(np.int64),
    "BIGINT": np.dtype(np.int64),
    "DOUBLE": np.dtype(np.float64),
    "DECIMAL": np.dtype(np.float64),
    "STRING": np.dtype(object),
    "DATE": np.dtype(np.int32),
    "TIMESTAMP": np.dtype(np.int64),
}

_WIDTHS = {
    "BOOLEAN": 1,
    "INT": 4,
    "BIGINT": 8,
    "DOUBLE": 8,
    "DECIMAL": 8,
    "STRING": 24,
    "DATE": 4,
    "TIMESTAMP": 8,
}

# coercion lattice: smaller rank coerces to larger within a family
_NUMERIC_RANK = {"INT": 1, "BIGINT": 2, "DECIMAL": 3, "DOUBLE": 4}


def common_type(left: DataType, right: DataType) -> DataType:
    """Least common supertype for binary expressions.

    Numeric types widen along INT < BIGINT < DECIMAL < DOUBLE.  Temporal
    and string types only unify with themselves (plus STRING absorbing
    VARCHAR).  Raises :class:`AnalysisError` for incompatible pairs.
    """
    if left == right:
        return left
    lf, rf = left._family(), right._family()
    if lf == rf:
        # e.g. two different VARCHAR lengths or DECIMAL params
        return STRING if lf == "STRING" else DOUBLE if lf == "DECIMAL" else left
    if lf in _NUMERIC_RANK and rf in _NUMERIC_RANK:
        winner = lf if _NUMERIC_RANK[lf] >= _NUMERIC_RANK[rf] else rf
        return {"INT": INT, "BIGINT": BIGINT, "DOUBLE": DOUBLE,
                "DECIMAL": DOUBLE}[winner]
    if {lf, rf} == {"STRING", "DATE"} or {lf, rf} == {"STRING", "TIMESTAMP"}:
        # allow date literals written as strings
        return left if lf != "STRING" else right
    raise AnalysisError(f"incompatible types: {left} and {right}")


def type_from_name(name: str, *params: int) -> DataType:
    """Resolve a SQL type name (as parsed) to a :class:`DataType`."""
    upper = name.upper()
    aliases = {
        "INTEGER": INT, "INT": INT, "SMALLINT": INT, "TINYINT": INT,
        "BIGINT": BIGINT, "LONG": BIGINT,
        "DOUBLE": DOUBLE, "FLOAT": DOUBLE, "REAL": DOUBLE,
        "BOOLEAN": BOOLEAN, "BOOL": BOOLEAN,
        "STRING": STRING, "TEXT": STRING, "CHAR": STRING,
        "DATE": DATE, "TIMESTAMP": TIMESTAMP, "DATETIME": TIMESTAMP,
    }
    if upper in aliases:
        return aliases[upper]
    if upper == "DECIMAL" or upper == "NUMERIC":
        precision = params[0] if params else 10
        scale = params[1] if len(params) > 1 else 0
        return decimal(precision, scale)
    if upper == "VARCHAR":
        return varchar(params[0] if params else 255)
    raise AnalysisError(f"unknown type name: {name}")


def infer_literal_type(value) -> DataType:
    """Type of a Python literal produced by the parser."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return BIGINT if abs(value) > 2**31 - 1 else INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, datetime.datetime):
        return TIMESTAMP
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, str):
        return STRING
    if value is None:
        return STRING
    raise AnalysisError(f"cannot infer type of literal {value!r}")
