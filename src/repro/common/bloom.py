"""Bloom filter.

Used in two places, mirroring the paper:

* ORC-like files store per-row-group Bloom filters so sargable predicates
  can skip row groups (Section 5.1, I/O elevator pushdown).
* Dynamic semijoin reduction builds a Bloom filter from the filtered
  dimension-side values and pushes it into fact-table scans (Section 4.6).
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from ..errors import HiveError


class BloomFilter:
    """Classic Bloom filter with double hashing (Kirsch-Mitzenmacher)."""

    def __init__(self, expected_items: int, fpp: float = 0.05):
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < fpp < 1.0:
            raise HiveError("fpp must be in (0, 1)")
        self.expected_items = expected_items
        self.fpp = fpp
        self.num_bits = max(
            8, int(-expected_items * math.log(fpp) / (math.log(2) ** 2)))
        self.num_hashes = max(
            1, int(round(self.num_bits / expected_items * math.log(2))))
        self.bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)
        self.count = 0

    # -- updates ----------------------------------------------------------- #
    def add(self, value) -> None:
        h1, h2 = _double_hash(value)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            self.bits[bit >> 3] |= 1 << (bit & 7)
        self.count += 1

    def add_all(self, values) -> None:
        for value in values:
            self.add(value)

    # -- membership ---------------------------------------------------------- #
    def might_contain(self, value) -> bool:
        h1, h2 = _double_hash(value)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            if not self.bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def might_contain_many(self, values: np.ndarray) -> np.ndarray:
        """Vector form; returns a boolean mask."""
        return np.fromiter((self.might_contain(v) for v in values),
                           dtype=bool, count=len(values))

    # -- merging ----------------------------------------------------------- #
    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """Union of two filters built with identical parameters."""
        if (self.num_bits, self.num_hashes) != (other.num_bits,
                                                other.num_hashes):
            raise HiveError("cannot merge Bloom filters with different shapes")
        merged = BloomFilter(self.expected_items, self.fpp)
        merged.num_bits, merged.num_hashes = self.num_bits, self.num_hashes
        merged.bits = np.bitwise_or(self.bits, other.bits)
        merged.count = self.count + other.count
        return merged

    def nbytes(self) -> int:
        return int(self.bits.nbytes)


def _double_hash(value) -> tuple[int, int]:
    payload = repr(value).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1
    return h1, h2
