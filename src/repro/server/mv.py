"""Materialized view lifecycle: creation, rebuild, freshness (Section 4.4).

* CREATE MATERIALIZED VIEW executes the definition, stores the result —
  natively (an ORC table in the warehouse) or in an external system via a
  storage handler (``STORED BY``), which is how Figure 8 places the SSB
  denormalized view in Druid — and records the snapshot WriteIds of every
  source table.
* ALTER MATERIALIZED VIEW ... REBUILD refreshes the contents.  When the
  only changes since the last snapshot are INSERTs, the rebuild is
  **incremental**: only rows with WriteIds above the snapshot are read
  from the changed sources, their contribution is computed with the same
  plan, and it is merged into the view (a MERGE for SPJA views, an INSERT
  for SPJ views).  UPDATE/DELETE on any source forces a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import CatalogError, ExecutionError
from ..metastore.catalog import (MaterializedViewInfo, TableDescriptor,
                                 TableKind)
from ..metastore.hms import HiveMetastore
from ..plan import relnodes as rel


@dataclass
class RebuildReport:
    view: str
    mode: str                 # "full" | "incremental" | "noop"
    rows: int
    delta_rows: int = 0


def source_tables_of(plan: rel.RelNode) -> tuple[str, ...]:
    return tuple(sorted({s.table_name for s in rel.find_scans(plan)}))


def snapshot_write_ids(hms: HiveMetastore,
                       tables: tuple[str, ...]) -> dict[str, int]:
    return {t: hms.txn_manager.current_write_id(t) for t in tables}


def classify_changes(hms: HiveMetastore, info: MaterializedViewInfo,
                     since_event: int = 0) -> Optional[str]:
    """What happened to the sources since the view snapshot?

    Returns None (no changes), "inserts-only", or "mutations".
    """
    changed = False
    mutated = False
    for table in info.source_tables:
        current = hms.txn_manager.current_write_id(table)
        if current > info.snapshot_write_ids.get(table, 0):
            changed = True
    if not changed:
        return None
    for event in hms.events_since(since_event):
        if event.table not in info.source_tables:
            continue
        if event.event_type in ("UPDATE", "DELETE", "MERGE",
                                "DROP_PARTITION"):
            mutated = True
    return "mutations" if mutated else "inserts-only"


def changed_sources(hms: HiveMetastore,
                    info: MaterializedViewInfo) -> list[str]:
    return [t for t in info.source_tables
            if hms.txn_manager.current_write_id(t)
            > info.snapshot_write_ids.get(t, 0)]
