"""HiveServer2 and the query driver (Figure 2).

``HiveServer2`` owns cluster-lifetime state: the simulated file system,
HMS, the LLAP cache + I/O elevator, storage handlers, the query results
cache and the workload manager.  ``Session`` executes SQL through the
full pipeline: parse → analyze → optimize (Calcite-style stages) →
physical DAG → vectorized execution — with result caching (Section 4.3)
and failure-driven re-execution (Section 4.2) wrapped around it.
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.rows import Column, Schema
from ..common.types import type_from_name
from ..config import HiveConf
from ..errors import (AnalysisError, CatalogError, ExecutionError,
                      HiveError, PlanInvariantError, QueryKilledError,
                      TransactionError, VertexFailureError)
from ..exec.expr_eval import EvalContext
from ..exec.operators import ExecutionContext, execute
from ..faults import FaultRegistry
from ..fs import SimFileSystem
from ..llap.cache import LlapCache
from ..llap.elevator import DirectReaderFactory, LlapReaderFactory
from ..llap.workload import (Pool, ResourcePlan, Trigger, TriggerAction,
                             WorkloadManager)
from ..metastore.catalog import (Constraints, ForeignKey,
                                 MaterializedViewInfo, TableDescriptor,
                                 TableKind)
from ..metastore.hms import HiveMetastore
from ..metastore.stats import TableStatistics
from ..metastore.txn import (AcidHouseKeeper, DeltaWriteIdList,
                             ValidWriteIdList)
from ..obs import Observability
from ..obs import fingerprint as fingerprints
from ..obs.hooks import (HookContext, ON_FAILURE, PHASES, POST_EXEC,
                         PRE_EXEC, register_builtin_hooks)
from ..obs.profile import ExecutionProfile
from ..obs.query_log import QueryLogEntry
from ..optimizer import OptimizedPlan, Optimizer
from ..optimizer.mv_rewrite import (ViewDefinition, build_view_definition,
                                    extract_spja)
from ..optimizer.rules_basic import fold_constants, push_down_predicates
from ..plan import relnodes as rel
from ..runtime.scan import ScanExecutor
from ..runtime.tez import QueryMetrics, TezRunner
from ..sql import ast_nodes as ast
from ..sql.analyzer import Analyzer, Scope, ScopeEntry, _ExprConverter
from ..sql.functions import NON_CACHEABLE_FUNCTIONS
from ..sql.parser import parse_statement
from .dml import DmlResult, TableWriter
from .mv import (RebuildReport, changed_sources, classify_changes,
                 snapshot_write_ids, source_tables_of)
from .results_cache import QueryResultsCache
# plan_cache is a leaf module (stdlib only) — no cycle back into the
# driver; the rest of repro.service imports this module lazily
from ..service.plan_cache import CompiledPlanCache, plan_conf_digest

#: virtual time of a query answered straight from the results cache: a
#: single task fetching from the cached location (Section 4.3)
CACHED_FETCH_S = 0.05


@dataclass
class QueryResult:
    """What a statement returned."""

    rows: list = field(default_factory=list)
    column_names: list = field(default_factory=list)
    rows_affected: int = 0
    operation: str = "select"
    metrics: Optional[QueryMetrics] = None
    from_cache: bool = False
    plan_cached: bool = False    # compiled via the plan cache
    reexecuted: bool = False
    views_used: list = field(default_factory=list)
    optimized: Optional[OptimizedPlan] = None
    message: str = ""
    query_id: int = 0
    #: per-operator execution profile (repro.obs.ExecutionProfile)
    profile: Optional[ExecutionProfile] = None
    #: span tree for this statement (repro.obs.QueryTrace)
    trace: Optional[object] = None

    @property
    def virtual_time_s(self) -> float:
        return self.metrics.total_s if self.metrics else 0.0


class HiveServer2:
    """One warehouse deployment (cluster-lifetime state)."""

    def __init__(self, conf: Optional[HiveConf] = None):
        self.conf = conf or HiveConf.v3_profile()
        self.conf.validate()
        self.obs = Observability(
            log_capacity=self.conf.obs_query_log_capacity,
            timeseries_capacity=self.conf.monitor_timeseries_capacity,
            audit_capacity=self.conf.audit_capacity,
            lineage_capacity=self.conf.lineage_capacity,
            lineage_enabled=self.conf.lineage_enabled,
            hook_timeout_s=self.conf.hook_timeout_s)
        self.faults = FaultRegistry.from_conf(
            self.conf, metrics=self.obs.registry)
        self.fs = SimFileSystem()
        self.fs.fault_registry = self.faults
        self.hms = HiveMetastore(self.fs)
        self.housekeeper = AcidHouseKeeper(
            self.hms.txn_manager, self.hms.lock_manager,
            timeout_s=self.conf.txn_timeout_s, faults=self.faults)
        self.llap_cache = LlapCache(self.conf.llap_cache_capacity_bytes)
        self.llap_factory = LlapReaderFactory(self.fs, self.llap_cache)
        self.storage_handlers: dict[str, object] = {}
        self.results_cache = QueryResultsCache(
            self.conf.results_cache_max_entries,
            self.conf.results_cache_wait_pending,
            pending_timeout_s=self.conf.results_cache_pending_timeout_s)
        self.obs.query_store.configure(self.conf)
        self.workload_manager = WorkloadManager(
            registry=self.obs.registry,
            event_log=self.obs.wm_events,
            timeseries=self.obs.timeseries,
            query_store=self.obs.query_store)
        self.plan_cache = CompiledPlanCache(
            self.conf.plan_cache_max_entries,
            on_lookup=self.obs.query_store.note_plan_cache)
        #: serving-layer hooks (fn(now_s)) run on every session's
        #: housekeeper tick — HiveService reaps expired sessions here
        self.housekeeping_hooks: list = []
        self._view_plans: dict[tuple[str, str], rel.RelNode] = {}
        self._mv_scan_ids = itertools.count(100_000)
        # absorb the pre-existing stats fragments into the registry
        self.obs.bind_server(self.hms, self.workload_manager)
        self.obs.bind_faults(self.faults)
        # Atlas/Ranger-style built-ins are ordinary hook registrations
        register_builtin_hooks(self.obs.hooks, self.obs, self.hms)
        self.obs.bind_cache(
            "llap", self.llap_cache.stats,
            extra={"used_bytes": lambda: self.llap_cache.used_bytes,
                   "entries": lambda: len(self.llap_cache)})
        self.obs.bind_cache(
            "results", self.results_cache.stats,
            extra={"entries": lambda: len(self.results_cache)})
        self.obs.bind_cache(
            "plan", self.plan_cache.stats,
            extra={"entries": lambda: len(self.plan_cache),
                   "hit_rate": lambda: self.plan_cache.stats.hit_rate})
        self.obs.bind_plan_cache(self.plan_cache)
        self.obs.bind_cluster(
            self.llap_cache, self.hms, self.workload_manager,
            num_nodes=self.conf.num_nodes,
            executors_per_node=self.conf.llap_executors_per_daemon,
            cache_capacity_bytes=self.conf.llap_cache_capacity_bytes,
            interval_s=self.conf.monitor_sample_interval_s)
        if self.conf.monitor_http_port > 0:
            self.obs.start_http(port=self.conf.monitor_http_port)

    # -- public API -------------------------------------------------------------- #
    def connect(self, database: str = "default",
                application: Optional[str] = None) -> "Session":
        return Session(self, database, application)

    def register_hook(self, name: str, fn, phases=PHASES):
        """Install a user execution hook (Section 6 ecosystem point).

        ``fn`` is called as ``fn(phase, ctx)`` with a
        :class:`repro.obs.hooks.HookContext`; errors and over-budget
        runtimes are isolated by the registry and can never change a
        statement's result.  This is the sanctioned registration path
        (reprolint RL013 flags registrations made anywhere else).
        """
        return self.obs.hooks.register(name, fn, phases=phases)

    def register_storage_handler(self, name: str, handler) -> None:
        """Plug in an external engine (Section 6.1)."""
        handler.obs_registry = self.obs.registry
        self.storage_handlers[name.lower()] = handler

    def run_compaction(self) -> int:
        """Drain the compaction queue and clean (returns jobs run)."""
        from ..acid.compactor import CompactionCleaner, CompactionWorker
        worker = CompactionWorker(self.hms, registry=self.obs.registry)
        count = 0
        while worker.run_one() is not None:
            count += 1
        CompactionCleaner(self.hms).run()
        return count

    # -- internals shared by sessions ------------------------------------------------ #
    def view_definitions(self, now_s: float) -> list[ViewDefinition]:
        views = []
        for view in self.hms.views_enabled_for_rewrite():
            if not self.hms.is_view_fresh(view, now_s):
                continue
            plan = self._view_plan(view)
            if plan is None:
                continue
            definition = build_view_definition(view, plan)
            if definition is not None:
                views.append(definition)
        return views

    def _view_plan(self, view: TableDescriptor) -> Optional[rel.RelNode]:
        info = view.mv_info
        if info is None:
            return None
        key = (view.qualified_name, info.definition_sql)
        plan = self._view_plans.get(key)
        if plan is None:
            try:
                statement = parse_statement(info.definition_sql, self.conf)
                analyzer = Analyzer(self.hms, self.conf, view.database)
                plan = analyzer.analyze_query(statement.query)
                plan = push_down_predicates(fold_constants(plan))
            except HiveError:
                return None
            self._view_plans[key] = plan
        return plan

    def federation_rule(self):
        if not self.storage_handlers:
            return None
        from ..federation.pushdown import make_pushdown_rule
        return make_pushdown_rule(self.hms, self.storage_handlers)


class Session:
    """One client connection; carries its own mutable configuration."""

    def __init__(self, server: HiveServer2, database: str,
                 application: Optional[str]):
        self.server = server
        self.database = database
        self.application = application
        # *snapshot* semantics, like a HS2 connection: the session conf
        # is copied at open time, so a later server-wide SET does not
        # retro-apply to open sessions; a session changes its own
        # behaviour with its own SET.  Anything keyed by session conf
        # (e.g. the plan-cache digest) must read THIS copy.
        self.conf = server.conf.copy()
        self.now_s = 0.0           # virtual clock across this session
        self._trace = None         # QueryTrace of the statement in flight
        # audit attribution — the serving layer stamps these at open
        # time; a bare connect() runs as the anonymous tenant
        self.tenant = "anonymous"
        self.session_name = ""
        #: admission wait attributed to the NEXT statement (set by the
        #: serving layer after the queued phase, consumed by execute)
        self.pending_admission_wait_s = 0.0
        self._hook_ctx: Optional[HookContext] = None
        # multi-statement transaction state (§9 roadmap)
        self._active_txn: Optional[int] = None
        self._txn_snapshot = None
        self._txn_pending_stats: list = []
        self._txn_tables: set[str] = set()

    # ------------------------------------------------------------------ #
    def execute(self, sql: str,
                query_id: Optional[int] = None) -> QueryResult:
        """Execute one SQL statement and return its result.

        ``query_id`` lets the serving layer reuse the id it allocated
        at submit time (the operation handle), so the queued phase,
        kill flags and the final log entry all share one id.
        """
        obs = self.server.obs
        if "sys." in sql.lower():
            obs.ensure_sys_tables(self.hms)
        trace = obs.start_trace(sql, query_id=query_id)
        self._trace = trace
        started_s = self.now_s
        operation = ""
        fingerprint = ""
        trace.root.attrs["tenant"] = self.tenant
        ctx = HookContext(
            query_id=trace.query_id, sql=sql, tenant=self.tenant,
            session=self.session_name, database=self.database,
            application=self.application, started_s=started_s,
            admission_wait_s=self.pending_admission_wait_s)
        self.pending_admission_wait_s = 0.0
        self._hook_ctx = ctx
        obs.live_queries.register(
            trace.query_id, sql, database=self.database,
            application=self.application, started_s=started_s)
        try:
            self._tick_txn_clock()
            # byte-identical repeat of a cached select: skip even parse
            cached_plan = self._cached_plan_for(sql)
            if cached_plan is not None:
                operation = "selectstatement"
                # fingerprint from the unparsed canonical — the same
                # identity space the parse path below uses
                fingerprint = obs.query_store.fingerprint_of(
                    cached_plan.canonical)
                obs.query_store.register_live(trace.query_id,
                                              fingerprint)
                ctx.operation = operation
                ctx.fingerprint = fingerprint
                obs.hooks.fire(PRE_EXEC, ctx)
                result = self._run_cached_plan(cached_plan)
            else:
                with trace.span("parse"):
                    statement = parse_statement(sql, self.conf)
                operation = type(statement).__name__.lower()
                # visible to WM regression(...) triggers while running
                fingerprint = obs.query_store.fingerprint_of(
                    statement.unparse())
                obs.query_store.register_live(trace.query_id,
                                              fingerprint)
                ctx.operation = operation
                ctx.fingerprint = fingerprint
                obs.hooks.fire(PRE_EXEC, ctx)
                result = self._dispatch(statement)
        except Exception as error:
            status = ("killed" if isinstance(error, QueryKilledError)
                      else "error")
            obs.live_queries.finish(trace.query_id, status=status)
            trace.finish(error=str(error))
            if not fingerprint:
                # died before (or in) parse: raw-text identity
                fingerprint = obs.query_store.fingerprint_of(sql)
            obs.record_query(QueryLogEntry(
                query_id=trace.query_id, statement=sql,
                database=self.database, application=self.application,
                operation=operation, status=status, error=str(error),
                started_s=started_s,
                wall_ms=trace.root.wall_s * 1000.0,
                fingerprint=fingerprint))
            trace.root.attrs["fingerprint"] = fingerprint
            ctx.status = status
            ctx.error = str(error)
            ctx.operation = operation
            ctx.fingerprint = fingerprint
            ctx.wall_ms = trace.root.wall_s * 1000.0
            obs.hooks.fire(ON_FAILURE, ctx)
            raise
        finally:
            self._trace = None
            self._hook_ctx = None
            obs.query_store.forget_live(trace.query_id)
        if result.metrics is not None:
            self.now_s += result.metrics.total_s
        obs.live_queries.finish(trace.query_id, status="ok")
        trace.finish()
        result.query_id = trace.query_id
        result.trace = trace
        entry = self._log_entry(trace, sql, result, started_s)
        entry.fingerprint = fingerprint
        plan_explain = fingerprints.plan_text(result.optimized)
        obs.record_query(
            entry, plan_hash=fingerprints.hash_plan_text(plan_explain),
            plan_explain=plan_explain)
        trace.root.attrs["fingerprint"] = fingerprint
        ctx.status = "ok"
        ctx.operation = result.operation
        ctx.fingerprint = fingerprint
        ctx.rows_produced = len(result.rows)
        ctx.rows_affected = result.rows_affected
        ctx.total_s = result.metrics.total_s if result.metrics else 0.0
        ctx.wall_ms = trace.root.wall_s * 1000.0
        if ctx.optimized is None and result.optimized is not None:
            self._note_plan_inputs(result.optimized, ctx=ctx)
        obs.hooks.fire(POST_EXEC, ctx)
        return result

    def _tick_txn_clock(self) -> None:
        """Per-statement liveness: advance the warehouse virtual clock,

        heartbeat this session's open transaction, and let the
        housekeeper reap transactions whose owners went silent.  A
        fault-stalled transaction skips its heartbeat — that is exactly
        the dead-client scenario the reaper exists for."""
        manager = self.hms.txn_manager
        clock = manager.advance_clock(self.now_s)
        # interval timeseries sampling rides the same per-statement tick
        self.server.obs.monitor_tick(clock)
        txn = self._active_txn
        if txn is not None and not self.server.faults.is_stalled(txn):
            try:
                manager.heartbeat(txn, self.now_s)
            except TransactionError:
                # reaped under us: drop session state so the statement
                # fails cleanly instead of writing into a dead txn
                self._clear_transaction()
                raise
        reaped = self.server.housekeeper.run(self.now_s)
        # serving-layer housekeeping (session TTL reaping) rides the
        # same per-statement tick as the transaction reaper
        for hook in list(self.server.housekeeping_hooks):
            hook(clock)
        if txn is not None and txn in reaped:
            self._clear_transaction()
            raise TransactionError(
                f"txn {txn} heartbeat expired and was aborted by the "
                "housekeeper")

    def _log_entry(self, trace, sql: str, result: QueryResult,
                   started_s: float) -> QueryLogEntry:
        entry = QueryLogEntry(
            query_id=trace.query_id, statement=sql,
            database=self.database, application=self.application,
            operation=result.operation, status="ok",
            from_cache=result.from_cache, reexecuted=result.reexecuted,
            rows_produced=len(result.rows),
            rows_affected=result.rows_affected,
            started_s=started_s,
            wall_ms=trace.root.wall_s * 1000.0)
        m = result.metrics
        if m is not None:
            entry.pool = m.pool
            entry.total_s = m.total_s
            entry.queue_s = m.queue_s
            entry.compile_s = m.compile_s
            entry.startup_s = m.startup_s
            entry.io_s = m.io_s
            entry.cpu_s = m.cpu_s
            entry.shuffle_s = m.shuffle_s
            entry.external_s = m.external_s
            entry.disk_bytes = m.disk_bytes
            entry.cache_bytes = m.cache_bytes
            entry.cache_hit_fraction = m.cache_hit_fraction
            entry.vertices = [vm.as_row(trace.query_id)
                              for vm in m.vertices]
            entry.operators = [op.as_row(trace.query_id, vm.name)
                               for vm in m.vertices
                               for op in vm.operators]
        return entry

    def _span(self, name: str, **attrs):
        """A trace span if a trace is open, else a no-op context."""
        if self._trace is not None:
            return self._trace.span(name, **attrs)
        return contextlib.nullcontext()

    def _publish_phase(self, phase: str) -> None:
        """Mirror the pipeline stage into ``sys.live_queries``."""
        if self._trace is not None:
            self.server.obs.live_queries.update(
                self._trace.query_id, phase=phase)

    def _note_plan_inputs(self, optimized: OptimizedPlan,
                          ctx: Optional[HookContext] = None) -> None:
        """Resolve the statement's inputs from its optimized plan.

        Every scan surviving optimization contributes its table and the
        post-pruning column set; EXPLAIN ANALYZE, the audit log and the
        lineage hook all read this one resolution so they cannot drift.
        """
        ctx = ctx or self._hook_ctx
        if ctx is None or optimized is None:
            return
        ctx.optimized = optimized
        for scan in rel.find_scans(optimized.root):
            ctx.add_input(scan.table_name, scan.schema.names())

    def _note_output(self, table_name: str) -> None:
        """Record a table this statement writes (CTAS/INSERT/MV/...)."""
        if self._hook_ctx is not None:
            self._hook_ctx.add_output(table_name)

    def _dispatch(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(statement.query)
        if isinstance(statement, ast.Explain):
            if statement.analyze:
                return self._explain_analyze(statement.statement)
            if statement.validate:
                return self._explain_validate(statement.statement)
            if statement.history:
                return self._explain_history(statement.statement)
            if statement.lineage:
                return self._explain_lineage(statement.statement)
            return self._explain(statement.statement)
        if isinstance(statement, ast.CreateDatabase):
            self.hms.create_database(statement.name,
                                     statement.if_not_exists)
            return QueryResult(operation="create_database")
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateMaterializedView):
            return self._create_materialized_view(statement)
        if isinstance(statement, ast.AlterMaterializedViewRebuild):
            return self._rebuild_materialized_view(statement)
        if isinstance(statement, ast.AlterTableRename):
            return self._alter_table_rename(statement)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        if isinstance(statement, ast.MultiInsert):
            return self._multi_insert(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.Merge):
            return self._merge(statement)
        if isinstance(statement, ast.AnalyzeTable):
            return self._analyze_table(statement)
        if isinstance(statement, ast.SetConfig):
            return self._set_config(statement)
        if isinstance(statement, ast.ShowTables):
            rows = [(t,) for t in self.hms.list_tables(self.database)]
            return QueryResult(rows=rows, column_names=["tab_name"])
        if isinstance(statement, ast.ShowDatabases):
            rows = [(d,) for d in self.hms.list_databases()]
            return QueryResult(rows=rows, column_names=["database_name"])
        if isinstance(statement, ast.ShowMaterializedViews):
            rows = []
            for view in self.hms.list_materialized_views():
                info = view.mv_info
                rows.append((view.qualified_name,
                             "yes" if info and info.enabled_for_rewrite
                             else "no",
                             "fresh" if self.hms.is_view_fresh(
                                 view, self.now_s) else "stale"))
            return QueryResult(rows=rows,
                               column_names=["mv_name",
                                             "rewrite_enabled",
                                             "freshness"])
        if isinstance(statement, ast.ShowPartitions):
            table = self.hms.get_table(statement.table, self.database)
            rows = [(descriptor.spec_string(table.partition_columns),)
                    for descriptor in table.list_partitions()]
            return QueryResult(rows=rows, column_names=["partition"])
        if isinstance(statement, ast.DescribeTable):
            table = self.hms.get_table(statement.table, self.database)
            rows = [(c.name, str(c.dtype).lower(), c.comment)
                    for c in table.full_schema()]
            return QueryResult(rows=rows,
                               column_names=["col_name", "data_type",
                                             "comment"])
        if isinstance(statement, ast.StartTransaction):
            return self._begin_transaction()
        if isinstance(statement, ast.Commit):
            return self._commit_transaction()
        if isinstance(statement, ast.Rollback):
            return self._rollback_transaction()
        if isinstance(statement, ast.KillQuery):
            return self._kill_query(statement)
        if isinstance(statement, (ast.CreateResourcePlan, ast.CreatePool,
                                  ast.CreateTriggerRule,
                                  ast.AddRuleToPool,
                                  ast.CreateApplicationMapping,
                                  ast.AlterPlan)):
            return self._workload_ddl(statement)
        raise AnalysisError(
            f"unsupported statement {type(statement).__name__}")

    # -- shortcuts --------------------------------------------------------------- #
    @property
    def hms(self) -> HiveMetastore:
        return self.server.hms

    @property
    def fs(self) -> SimFileSystem:
        return self.server.fs

    def _analyzer(self) -> Analyzer:
        return Analyzer(self.hms, self.conf, self.database)

    def _writer(self) -> TableWriter:
        return TableWriter(self.hms, self.conf,
                           eval_ctx=self._eval_context())

    def _eval_context(self) -> EvalContext:
        """Per-statement expression context: the session's virtual clock
        anchors CURRENT_DATE/CURRENT_TIMESTAMP, the query id salts
        unseeded RAND() (deterministic per statement, distinct across
        statements)."""
        return EvalContext(
            now_s=self.now_s,
            query_id=self._trace.query_id if self._trace else 0)

    def _reader_factory(self):
        if self.conf.llap_enabled and self.conf.llap_cache_enabled:
            return self.server.llap_factory
        return DirectReaderFactory(self.fs)

    # ------------------------------------------------------------------ #
    # SELECT path
    def _plan_cache_usable(self, use_cache: bool) -> bool:
        """May this statement use the compiled plan cache at all?

        Transactions pin snapshots the cache key does not capture, and
        runtime-stats feedback makes compilation workload-dependent —
        both disable lookup *and* store.
        """
        return (use_cache and self.conf.plan_cache_enabled
                and self._active_txn is None
                and not self.conf.runtime_stats_feedback)

    def _plan_conf_digest(self) -> str:
        # the SESSION's effective conf, never the server's: two
        # sessions differing on a plan-relevant knob must not share
        # plans.  Registered storage handlers ride along because
        # federation pushdown plans differ when a handler appears.
        return plan_conf_digest(
            self.conf,
            extra=",".join(sorted(self.server.storage_handlers)))

    def _cached_plan_for(self, sql: str):
        """Raw-text plan-cache fast path (skips the parser)."""
        if not self._plan_cache_usable(True):
            return None
        return self.server.plan_cache.lookup_raw(
            self.database, sql, self._plan_conf_digest(),
            self.hms.plan_versions)

    def _run_select(self, query: ast.Query,
                    use_cache: bool = True) -> QueryResult:
        plan_key = None
        if self._plan_cache_usable(use_cache):
            digest = self._plan_conf_digest()
            canonical = query.unparse()
            plan_key = (canonical, digest)
            cached = self.server.plan_cache.lookup(
                self.database, canonical, digest,
                self.hms.plan_versions)
            if cached is not None:
                # a differently-spelled repeat: teach the raw fast
                # path this spelling too
                if self._trace is not None:
                    self.server.plan_cache.link_raw(
                        cached, self.database, self._trace.sql, digest)
                return self._run_cached_plan(cached)
        analyzer = self._analyzer()
        self._publish_phase("analyze")
        with self._span("analyze"):
            plan = analyzer.analyze_query(query)
        tables = sorted({s.table_name for s in rel.find_scans(plan)})
        # captured BEFORE optimization: a concurrent DDL *during*
        # compilation leaves the stored versions behind the table's,
        # invalidating the entry on its next lookup (never stale)
        plan_versions = self.hms.plan_versions(tables)
        current_wids = {t: self.hms.txn_manager.current_write_id(t)
                        for t in tables}

        # sys.* contents are generated from live server state; caching
        # them by write-id would pin permanently stale snapshots
        reads_sys = any(t.split(".", 1)[0] == "sys" for t in tables)
        deterministic = _is_cacheable(query)
        cacheable = (use_cache and self.conf.results_cache_enabled
                     and self._active_txn is None and not reads_sys
                     and deterministic)
        entry = None
        if cacheable:
            key = f"{self.database}::{query.unparse()}"
            entry, must_compute = self.server.results_cache.lookup(
                key, current_wids)
            if not must_compute:
                metrics = QueryMetrics(total_s=CACHED_FETCH_S,
                                       compile_s=CACHED_FETCH_S)
                return QueryResult(rows=list(entry.rows),
                                   column_names=list(entry.column_names),
                                   metrics=metrics, from_cache=True)
        try:
            result = self._compile_and_run(plan)
        except Exception:
            if entry is not None:
                self.server.results_cache.abandon(entry)
            raise
        if entry is not None:
            self.server.results_cache.publish(
                entry, result.rows, result.column_names, current_wids)
        if (plan_key is not None and not reads_sys
                and not result.reexecuted
                and result.optimized is not None
                and not result.optimized.views_used
                and not self._mv_rewrite_candidate(tables)):
            # MV-rewritten plans are excluded — and so are plans a
            # rewrite COULD apply to: the decision depends on view
            # freshness, which is time-dependent
            self.server.plan_cache.store(
                self.database, plan_key[0], plan_key[1],
                analyzed=plan, optimized=result.optimized,
                tables=tables, versions=plan_versions,
                cacheable=deterministic,
                raw_sql=(self._trace.sql if self._trace is not None
                         else None))
        return result

    def _mv_rewrite_candidate(self, tables: list) -> bool:
        """Could an enabled materialized view rewrite this query?

        Whether a rewrite *applies* depends on view freshness at the
        session clock — not capturable in a version key — so plans
        over any rewrite-enabled view's source tables are never
        cached.
        """
        if not self.conf.mv_rewriting:
            return False
        reads = {t.lower() for t in tables}
        for view in self.hms.views_enabled_for_rewrite():
            info = view.mv_info
            if info is not None and reads.intersection(
                    s.lower() for s in info.source_tables):
                return True
        return False

    def _run_cached_plan(self, cached) -> QueryResult:
        """Execute a plan-cache hit.

        Compilation is charged at the reduced
        ``cost.plan_cache_hit_compile_s``; the results cache still
        applies on top (a hit there skips execution as well).
        """
        self._publish_phase("plan cache hit")
        current_wids = {t: self.hms.txn_manager.current_write_id(t)
                        for t in cached.tables}
        cacheable = (self.conf.results_cache_enabled
                     and self._active_txn is None and cached.cacheable)
        entry = None
        if cacheable:
            key = f"{self.database}::{cached.canonical}"
            entry, must_compute = self.server.results_cache.lookup(
                key, current_wids)
            if not must_compute:
                metrics = QueryMetrics(total_s=CACHED_FETCH_S,
                                       compile_s=CACHED_FETCH_S)
                return QueryResult(rows=list(entry.rows),
                                   column_names=list(entry.column_names),
                                   metrics=metrics, from_cache=True,
                                   plan_cached=True)
        try:
            result = self._compile_and_run(cached.analyzed,
                                           cached=cached)
        except Exception:
            if entry is not None:
                self.server.results_cache.abandon(entry)
            raise
        result.plan_cached = True
        if entry is not None:
            self.server.results_cache.publish(
                entry, result.rows, result.column_names, current_wids)
        return result

    def _compile_and_run(self, plan: rel.RelNode,
                         conf: Optional[HiveConf] = None,
                         stats_overrides: Optional[dict] = None,
                         cached=None) -> QueryResult:
        conf = conf or self.conf
        if conf.runtime_stats_feedback:
            merged = self.hms.runtime_stats()
            merged.update(stats_overrides or {})
            stats_overrides = merged
        compile_cost = None
        if cached is not None:
            # plan-cache hit: reuse the compiled plan and charge the
            # reduced compile cost; a reoptimize below compiles anew
            optimized = cached.optimized
            compile_cost = conf.cost.plan_cache_hit_compile_s
        else:
            optimizer = Optimizer(
                self.hms, conf, stats_overrides=stats_overrides,
                view_provider=lambda: self.server.view_definitions(
                    self.now_s),
                federation_rule=self.server.federation_rule(),
                trace=self._trace)
            self._publish_phase("optimize")
            with self._span("optimize"):
                optimized = optimizer.optimize(plan)
        attempts = 0
        reexecuted = False
        while True:
            profile = ExecutionProfile()
            try:
                with self._span("execute") as span:
                    batch, metrics, ctx = self._run_optimized(
                        optimized, conf, profile,
                        compile_overhead_s=compile_cost,
                        kernels=(cached.kernels if cached is not None
                                 else None))
                    if span is not None:
                        span.virtual_s = metrics.total_s
                break
            except VertexFailureError as failure:
                attempts += 1
                if (conf.reexecution_strategy == "off"
                        or attempts > conf.max_reexecutions
                        or not failure.retriable):
                    raise
                reexecuted = True
                if conf.reexecution_strategy == "overlay":
                    conf = conf.copy(**conf.reexecution_overlay)
                else:  # reoptimize using captured runtime statistics
                    # a real recompilation: full compile cost again
                    compile_cost = None
                    runtime_stats = getattr(failure, "runtime_stats", {})
                    optimizer = Optimizer(
                        self.hms, conf, stats_overrides=runtime_stats,
                        view_provider=lambda: self.server.view_definitions(
                            self.now_s),
                        federation_rule=self.server.federation_rule(),
                        trace=self._trace)
                    with self._span("reoptimize"):
                        optimized = optimizer.optimize(plan)
        if conf.runtime_stats_feedback:
            self.hms.record_runtime_stats(ctx.runtime_stats)
        # resolve hook-context inputs from the plan that actually ran
        # (after any reoptimization), post column pruning
        self._note_plan_inputs(optimized)
        result = QueryResult(
            rows=batch.to_rows(),
            column_names=[c.name for c in batch.schema],
            metrics=metrics, reexecuted=reexecuted,
            views_used=list(optimized.views_used), optimized=optimized,
            profile=profile)
        return result

    def _run_optimized(self, optimized: OptimizedPlan, conf: HiveConf,
                       profile: Optional[ExecutionProfile] = None,
                       compile_overhead_s: Optional[float] = None,
                       kernels=None):
        in_txn = self._active_txn is not None
        snapshot = (self._txn_snapshot if in_txn
                    else self.hms.txn_manager.get_snapshot())
        valid: dict[str, ValidWriteIdList] = {}
        for scan in rel.find_scans(optimized.root):
            try:
                table = self.hms.get_table(scan.table_name)
            except CatalogError:
                continue
            if table.is_acid:
                if in_txn:
                    valid[table.qualified_name] = self._txn_valid_list(
                        table.qualified_name)
                else:
                    valid[table.qualified_name] = \
                        self.hms.txn_manager.valid_write_ids(
                            snapshot, table.qualified_name)
        # the sys virtual catalog rides along as a storage handler, but
        # only at scan time — it never participates in pushdown planning
        handlers = dict(self.server.storage_handlers)
        handlers["sys"] = self.server.obs.sys_handler
        scan_executor = ScanExecutor(
            self.hms, self.fs, self._reader_factory(), valid, {},
            handlers, conf.semijoin_bloom_fpp,
            registry=self.server.obs.registry, trace=self._trace)
        runner = TezRunner(conf, self.server.workload_manager,
                           registry=self.server.obs.registry,
                           faults=self.server.faults,
                           live=self.server.obs.live_queries)
        return runner.run(
            optimized, scan_executor, self.application,
            arrival_s=self.now_s,
            hash_join_memory_rows=conf.hash_join_memory_rows,
            profile=profile, trace=self._trace,
            query_id=self._trace.query_id if self._trace else 0,
            compile_overhead_s=compile_overhead_s,
            eval_ctx=self._eval_context(), kernels=kernels)

    # ------------------------------------------------------------------ #
    # EXPLAIN
    def _explain(self, statement: ast.Statement) -> QueryResult:
        if not isinstance(statement, ast.SelectStatement):
            raise AnalysisError("EXPLAIN supports queries only")
        plan = self._analyzer().analyze_query(statement.query)
        optimizer = Optimizer(
            self.hms, self.conf,
            view_provider=lambda: self.server.view_definitions(self.now_s),
            federation_rule=self.server.federation_rule(),
            trace=self._trace)
        optimized = optimizer.optimize(plan)
        lines = optimized.root.explain().splitlines()
        lines.append(f"-- stages: {', '.join(optimized.stages_applied)}")
        # the Tez DAG the task compiler would submit (Figure 2)
        from ..runtime.tez import build_dag, merge_shared_vertices
        dag = build_dag(optimized.root)
        if self.conf.shared_work_optimization:
            dag = merge_shared_vertices(dag, optimized.shared_digests)
        lines.append("-- DAG:")
        by_id = {v.vertex_id: v for v in dag.vertices}
        for vertex in dag.topological():
            inputs = ", ".join(by_id[i].name for i in vertex.inputs)
            arrow = f" <- {inputs}" if inputs else ""
            top = vertex.root._explain_label()
            lines.append(f"--   {vertex.name}{arrow}: {top}")
        if optimized.views_used:
            lines.append(
                f"-- materialized views: "
                f"{', '.join(optimized.views_used)}")
        for reducer in optimized.semijoin_reducers:
            lines.append(
                f"-- semijoin reducer {reducer.reducer_id} -> "
                f"{reducer.target_table}.{reducer.target_column}")
        return QueryResult(rows=[(line,) for line in lines],
                           column_names=["plan"], operation="explain",
                           optimized=optimized)

    def _explain_history(self, statement: ast.Statement) -> QueryResult:
        """EXPLAIN HISTORY: the query store's aggregate view of this
        statement — per-plan-hash stats, the last plan diff and any
        regression findings for its fingerprint.  The driver
        fingerprints executed statements by their ``unparse()`` text,
        so unparsing here looks up the same identity."""
        lines = self.server.obs.query_store.history_lines(
            statement.unparse())
        return QueryResult(rows=[(line,) for line in lines],
                           column_names=["history"],
                           operation="explain")

    def _explain_validate(self, statement: ast.Statement) -> QueryResult:
        """EXPLAIN VALIDATE: compile with the plan-invariant checker

        forced on (at least "on"; the session's paranoid setting is
        honoured) and report a per-stage verdict instead of the plan.
        Nothing executes."""
        if not isinstance(statement, ast.SelectStatement):
            raise AnalysisError("EXPLAIN VALIDATE supports queries only")
        plan = self._analyzer().analyze_query(statement.query)
        conf = self.conf
        if conf.plan_check_mode == "off":
            conf = conf.copy(check_plan="on")
        optimizer = Optimizer(
            self.hms, conf,
            view_provider=lambda: self.server.view_definitions(self.now_s),
            federation_rule=self.server.federation_rule(),
            trace=self._trace)
        lines: list[str] = []
        error: Optional[PlanInvariantError] = None
        try:
            optimizer.optimize(plan)
        except PlanInvariantError as exc:
            error = exc
        for stage in optimizer._checked:
            lines.append(f"check: OK   stage={stage}")
        if error is None:
            lines.append(
                f"result: OK ({len(optimizer._checked)} stages validated, "
                f"mode={conf.plan_check_mode})")
        else:
            lines.append(f"check: FAIL stage={error.stage}")
            for violation in error.violations:
                lines.append(f"  - {violation}")
            if error.diff:
                lines.extend(f"  {line}"
                             for line in error.diff.splitlines())
            lines.append(f"result: FAIL (stage={error.stage})")
        return QueryResult(rows=[(line,) for line in lines],
                           column_names=["check"],
                           operation="explain_validate")

    def _explain_analyze(self, statement: ast.Statement) -> QueryResult:
        """EXPLAIN ANALYZE: run the query, annotate the plan with the

        per-operator profile (the results cache is bypassed so the plan
        actually executes)."""
        if not isinstance(statement, ast.SelectStatement):
            raise AnalysisError("EXPLAIN ANALYZE supports queries only")
        result = self._run_select(statement.query, use_cache=False)
        from ..obs.explain_analyze import render_explain_analyze
        # the inputs/outputs footer reads the hook context, the SAME
        # resolution the audit log gets — the two surfaces cannot drift
        ctx = self._hook_ctx
        lines = render_explain_analyze(
            result.optimized, result.profile,
            reexecuted=result.reexecuted, views_used=result.views_used,
            inputs=ctx.inputs() if ctx is not None else None,
            outputs=ctx.outputs() if ctx is not None else None)
        return QueryResult(rows=[(line,) for line in lines],
                           column_names=["plan"],
                           operation="explain_analyze",
                           metrics=result.metrics,
                           optimized=result.optimized,
                           profile=result.profile)

    def _explain_lineage(self, statement: ast.Statement) -> QueryResult:
        """EXPLAIN LINEAGE: per-output-column dependency edges.

        Compiles (never executes) the query and walks the optimized
        plan with the same extractor the lineage hook uses, so the
        rendered tree matches what ``sys.lineage_edges`` would record.
        """
        if not isinstance(statement, ast.SelectStatement):
            raise AnalysisError("EXPLAIN LINEAGE supports queries only")
        plan = self._analyzer().analyze_query(statement.query)
        optimizer = Optimizer(
            self.hms, self.conf,
            view_provider=lambda: self.server.view_definitions(self.now_s),
            federation_rule=self.server.federation_rule(),
            trace=self._trace)
        optimized = optimizer.optimize(plan)
        from ..obs.lineage import render_lineage
        lines = render_lineage(optimized.root)
        return QueryResult(rows=[(line,) for line in lines],
                           column_names=["lineage"],
                           operation="explain_lineage",
                           optimized=optimized)

    # ------------------------------------------------------------------ #
    # DDL
    def _create_table(self, statement: ast.CreateTable) -> QueryResult:
        if statement.if_not_exists and self.hms.table_exists(
                statement.name, self.database):
            return QueryResult(operation="create_table",
                               message="table exists, skipped")
        if statement.as_query is not None and not statement.columns:
            # CTAS: derive schema from the query
            select = self._run_select(statement.as_query, use_cache=False)
            analyzer = self._analyzer()
            plan = analyzer.analyze_query(statement.as_query)
            schema = plan.schema
            table = self._register_table(statement, schema)
            self._writer().insert_rows(table, select.rows)
            return QueryResult(operation="create_table",
                               rows_affected=len(select.rows),
                               metrics=select.metrics)
        schema = Schema([_column_from_def(c) for c in statement.columns])
        table = self._register_table(statement, schema)
        if statement.as_query is not None:
            select = self._run_select(statement.as_query, use_cache=False)
            self._writer().insert_rows(table, select.rows)
            return QueryResult(operation="create_table",
                               rows_affected=len(select.rows),
                               metrics=select.metrics)
        return QueryResult(operation="create_table")

    def _register_table(self, statement: ast.CreateTable,
                        schema: Schema) -> TableDescriptor:
        properties = dict(statement.properties)
        handler_name = _normalize_handler(statement.storage_handler)
        transactional = properties.get("transactional", "").lower()
        if transactional == "true":
            is_acid = True
        elif transactional == "false":
            is_acid = False
        else:
            is_acid = (self.conf.acid_enabled and not statement.external
                       and handler_name is None
                       and statement.file_format == "orc")
        if is_acid and statement.file_format != "orc":
            raise AnalysisError(
                "transactional tables require the ORC format "
                "(Section 3.2's delta layout lives in ORC files)")
        constraints = Constraints(
            primary_key=tuple(c.lower() for c in statement.primary_key),
            foreign_keys=[ForeignKey(tuple(c.lower() for c in fk.columns),
                                     fk.ref_table.lower(),
                                     tuple(c.lower()
                                           for c in fk.ref_columns))
                          for fk in statement.foreign_keys],
            unique_keys=[tuple(c.lower() for c in uk)
                         for uk in statement.unique_keys],
            not_null=frozenset(c.name.lower() for c in statement.columns
                               if c.not_null))
        bloom_columns = tuple(
            c.strip() for c in properties.get(
                "orc.bloom.filter.columns", "").split(",") if c.strip())
        database, name = _split_table_name(statement.name, self.database)
        table = self.hms.create_table(
            database, name, schema,
            partition_columns=[_column_from_def(c)
                               for c in statement.partition_columns],
            kind=(TableKind.EXTERNAL if statement.external
                  else TableKind.MANAGED),
            file_format=statement.file_format,
            is_acid=is_acid, storage_handler=handler_name,
            properties=properties, constraints=constraints,
            bloom_filter_columns=bloom_columns)
        if handler_name is not None:
            handler = self.server.storage_handlers.get(handler_name)
            if handler is None:
                raise CatalogError(
                    f"storage handler {handler_name!r} is not registered")
            handler.on_create_table(table)
            # external sources may define their own schema
            inferred = handler.infer_schema(table)
            if inferred is not None and not len(schema):
                table.schema = inferred
        self._note_output(table.qualified_name)
        return table

    def _drop_table(self, statement: ast.DropTable) -> QueryResult:
        try:
            table = self.hms.get_table(statement.name, self.database)
        except CatalogError:
            if statement.if_exists:
                return QueryResult(operation="drop_table",
                                   message="no such table, skipped")
            raise
        if statement.is_materialized_view and not \
                table.is_materialized_view:
            raise CatalogError(f"{statement.name} is not a "
                               "materialized view")
        if table.storage_handler is not None:
            handler = self.server.storage_handlers.get(
                table.storage_handler)
            if handler is not None:
                handler.on_drop_table(table)
        # DROP takes an exclusive lock (Section 3.2)
        txn = self.hms.txn_manager.open_transaction()
        try:
            from ..metastore.locks import LockType
            self.hms.lock_manager.acquire(
                txn, table.qualified_name, None, LockType.EXCLUSIVE,
                self.conf.txn_lock_timeout_s)
            self.hms.drop_table(statement.name, self.database)
            self.hms.txn_manager.commit(txn)
        finally:
            self.hms.lock_manager.release_all(txn)
        return QueryResult(operation="drop_table")

    def _alter_table_rename(
            self, statement: ast.AlterTableRename) -> QueryResult:
        """ALTER TABLE t RENAME TO u — provenance follows the rename.

        The metastore rewrites its table→table lineage records and
        bumps plan versions on both names, so cached plans over the old
        name invalidate instead of reading a ghost.
        """
        table = self.hms.rename_table(statement.name, statement.new_name,
                                      self.database)
        self._note_output(table.qualified_name)
        return QueryResult(
            operation="alter_table_rename",
            message=f"renamed to {table.qualified_name}")

    # ------------------------------------------------------------------ #
    # materialized views
    def _create_materialized_view(
            self, statement: ast.CreateMaterializedView) -> QueryResult:
        select = self._run_select(statement.query, use_cache=False)
        analyzer = self._analyzer()
        plan = analyzer.analyze_query(statement.query)
        sources = source_tables_of(plan)
        properties = dict(statement.properties)
        staleness = float(properties.get("rewriting.time.window", "0"))
        info = MaterializedViewInfo(
            definition_sql=statement.query.unparse(),
            source_tables=sources,
            snapshot_write_ids=snapshot_write_ids(self.hms, sources),
            rebuild_time=self.now_s,
            allowed_staleness_s=staleness,
            enabled_for_rewrite=not statement.disable_rewrite)
        handler_name = _normalize_handler(statement.stored_by)
        schema = Schema([Column(name, dtype) for name, dtype in zip(
            select.column_names, plan.schema.types())])
        database, name = _split_table_name(statement.name,
                                          self.database)
        view = self.hms.create_table(
            database, name, schema,
            kind=TableKind.MATERIALIZED_VIEW,
            is_acid=False, storage_handler=handler_name,
            properties=properties, mv_info=info)
        self._note_output(view.qualified_name)
        self._store_view_contents(view, select.rows)
        return QueryResult(operation="create_materialized_view",
                           rows_affected=len(select.rows),
                           metrics=select.metrics)

    def _store_view_contents(self, view: TableDescriptor,
                             rows: list) -> None:
        if view.storage_handler is not None:
            handler = self.server.storage_handlers.get(
                view.storage_handler)
            if handler is None:
                raise CatalogError(
                    f"storage handler {view.storage_handler!r} is not "
                    "registered")
            handler.on_create_table(view)
            handler.insert_rows(view, rows)
        else:
            location = view.location
            if self.fs.exists(location):
                self.fs.delete(location, recursive=True)
            self.fs.mkdirs(location)
            self._writer().insert_rows(view, rows)
        stats = TableStatistics.from_rows(view.schema, rows)
        self.hms.set_statistics(view, stats)

    def _rebuild_materialized_view(
            self, statement: ast.AlterMaterializedViewRebuild
            ) -> QueryResult:
        view = self.hms.get_table(statement.name, self.database)
        if not view.is_materialized_view or view.mv_info is None:
            raise CatalogError(f"{statement.name} is not a materialized "
                               "view")
        info = view.mv_info
        self._note_output(view.qualified_name)
        if self._hook_ctx is not None:
            # the incremental path executes outside _compile_and_run,
            # so resolve rebuild inputs from the view's source list
            for source in info.source_tables:
                self._hook_ctx.add_input(source)
        change = classify_changes(self.hms, info)
        if change is None:
            return QueryResult(operation="rebuild",
                               message="view is fresh, nothing to do")
        changed = changed_sources(self.hms, info)
        definition = parse_statement(info.definition_sql, self.conf)
        report = None
        if change == "inserts-only" and len(changed) == 1:
            report = self._incremental_rebuild(view, definition.query,
                                               changed[0])
        if report is None:
            select = self._run_select(definition.query, use_cache=False)
            self._store_view_contents(view, select.rows)
            report = RebuildReport(view.qualified_name, "full",
                                   len(select.rows))
        info.snapshot_write_ids = snapshot_write_ids(
            self.hms, info.source_tables)
        info.rebuild_time = self.now_s
        return QueryResult(operation="rebuild",
                           rows_affected=report.rows,
                           message=f"{report.mode} rebuild "
                                   f"({report.delta_rows} delta rows)")

    def _incremental_rebuild(self, view: TableDescriptor,
                             query: ast.Query,
                             changed_table: str
                             ) -> Optional[RebuildReport]:
        """Insert-only incremental maintenance via the rewrite machinery.

        Computes the definition over the *delta* of the changed source
        (rows above the snapshot WriteId) and merges it into the view.
        """
        info = view.mv_info
        plan = self._analyzer().analyze_query(query)
        plan = push_down_predicates(fold_constants(plan))
        spja = extract_spja(plan)
        if spja is None:
            return None
        table = self.hms.get_table(changed_table)
        if not table.is_acid:
            return None
        snapshot = self.hms.txn_manager.get_snapshot()
        base_valid = self.hms.txn_manager.valid_write_ids(
            snapshot, changed_table)
        delta_valid = DeltaWriteIdList(
            base_valid.table, base_valid.high_watermark,
            base_valid.invalid_ids,
            min_write_id=info.snapshot_write_ids.get(changed_table, 0))
        valid = {changed_table: delta_valid}
        for source in info.source_tables:
            if source == changed_table:
                continue
            source_table = self.hms.get_table(source)
            if source_table.is_acid:
                valid[source] = self.hms.txn_manager.valid_write_ids(
                    snapshot, source)
        scan_executor = ScanExecutor(
            self.hms, self.fs, self._reader_factory(), valid, {},
            self.server.storage_handlers)
        ctx = ExecutionContext(scan_executor=scan_executor)
        delta_batch = execute(plan, ctx)
        delta_rows = delta_batch.to_rows()

        if spja.is_aggregated:
            # MERGE semantics: combine old contents with delta partials
            current = self._read_view_rows(view)
            key_count = len(spja.group_exprs)
            merged: dict[tuple, list] = {}
            funcs = [f for f, _, _, _ in spja.agg_calls]
            for row in current + delta_rows:
                key = tuple(row[:key_count])
                state = merged.get(key)
                if state is None:
                    merged[key] = list(row[key_count:])
                    continue
                for i, func in enumerate(funcs):
                    state[i] = _merge_agg(func, state[i],
                                          row[key_count + i])
            rows = [key + tuple(state) for key, state in merged.items()]
            mode = "incremental"
        else:
            current = self._read_view_rows(view)
            rows = current + delta_rows
            mode = "incremental"
        self._store_view_contents(view, rows)
        return RebuildReport(view.qualified_name, mode, len(rows),
                             delta_rows=len(delta_rows))

    def _read_view_rows(self, view: TableDescriptor) -> list:
        if view.storage_handler is not None:
            handler = self.server.storage_handlers[view.storage_handler]
            rows, _ = handler.scan_table(view,
                                         [c.name for c in view.schema])
            return list(rows)
        from ..acid.reader import AcidReader
        reader = AcidReader(self.fs)
        batch, _ = reader.read_plain(view.location, view.schema)
        return batch.to_rows()

    # ------------------------------------------------------------------ #
    # DML
    def _insert(self, statement: ast.Insert) -> QueryResult:
        table = self.hms.get_table(statement.table, self.database)
        self._note_output(table.qualified_name)
        partition_spec = dict(statement.partition_spec)
        if table.storage_handler is not None:
            if table.storage_handler == "sys":
                self.server.obs.sys_handler.insert_rows(table, ())
            rows = self._insert_source_rows(statement, table)
            handler = self.server.storage_handlers[table.storage_handler]
            handler.insert_rows(table, rows)
            self.hms.emit_event("INSERT", table.qualified_name,
                                {"rows": len(rows)})
            # handlers may expose extra metadata columns (e.g. Kafka's
            # __offset); compute stats over the columns actually written
            width = len(rows[0]) if rows else len(table.schema)
            stats_schema = Schema(table.schema.columns[:width])
            stats = TableStatistics.from_rows(stats_schema, rows)
            self.hms.update_statistics(table, stats)
            return QueryResult(rows_affected=len(rows),
                               operation="insert")
        rows = self._insert_source_rows(statement, table)
        if self._active_txn is not None and statement.overwrite:
            raise TransactionError(
                "INSERT OVERWRITE is not allowed inside a "
                "multi-statement transaction")
        result = self._writer().insert_rows(
            table, rows, partition_spec, overwrite=statement.overwrite,
            txn=self._active_txn,
            stats_sink=(self._txn_pending_stats
                        if self._active_txn is not None else None))
        if self._active_txn is not None:
            self._txn_tables.add(table.qualified_name)
        return QueryResult(rows_affected=result.rows_affected,
                           operation="insert")

    def _insert_source_rows(self, statement: ast.Insert,
                            table: TableDescriptor) -> list[tuple]:
        if statement.query is not None:
            select = self._run_select(statement.query, use_cache=False)
            rows = select.rows
        else:
            rows = []
            empty = Schema([])
            converter = _ExprConverter(
                self._analyzer(), Scope([ScopeEntry(None, empty, 0)]),
                None, {})
            from ..optimizer.rules_basic import fold_rex
            for value_row in statement.values:
                row = []
                for expr in value_row:
                    folded = fold_rex(converter.convert(expr))
                    from ..plan.rexnodes import RexLiteral
                    if not isinstance(folded, RexLiteral):
                        raise AnalysisError(
                            "INSERT VALUES must be constant expressions")
                    row.append(folded.value)
                rows.append(tuple(row))
        if statement.columns:
            # reorder/missing columns default to NULL
            names = [c.lower() for c in statement.columns]
            width = len(table.schema)
            reordered = []
            for row in rows:
                full = [None] * width
                for name, value in zip(names, row):
                    full[table.schema.index_of(name)] = value
                reordered.append(tuple(full))
            rows = reordered
        return rows

    def _multi_insert(self, statement: ast.MultiInsert) -> QueryResult:
        """FROM src INSERT ... INSERT ... — the source is evaluated once

        and every branch writes within a single transaction (§3.2)."""
        # evaluate the shared source exactly once
        if isinstance(statement.source, ast.NamedTable):
            source_sql = f"SELECT * FROM {statement.source.name}"
            alias = (statement.source.alias
                     or statement.source.name.split(".")[-1])
        elif isinstance(statement.source, ast.SubqueryRef):
            source_sql = statement.source.query.unparse()
            alias = statement.source.alias
        else:
            raise AnalysisError("unsupported multi-insert source")
        from ..sql.parser import parse_query
        analyzer = self._analyzer()
        source_plan = analyzer.analyze_query(
            parse_query(source_sql, self.conf))
        source_result = self._compile_and_run(source_plan)
        from ..common.vector import VectorBatch
        source_schema = Schema([
            Column(name, dtype) for name, dtype in
            zip(source_result.column_names, source_plan.schema.types())])
        source_batch = VectorBatch.from_rows(source_schema,
                                             source_result.rows)
        scope = Scope([ScopeEntry(alias.lower(), source_schema, 0)])

        # branch evaluation + single-transaction writes
        from ..exec import expr_eval
        writer = self._writer()
        own_txn = self._active_txn is None
        txn = (self.hms.txn_manager.open_transaction() if own_txn
               else self._active_txn)
        pending_stats: list = ([] if own_txn
                               else self._txn_pending_stats)
        total = 0
        touched: list = []
        try:
            for branch in statement.branches:
                if branch.overwrite:
                    raise TransactionError(
                        "INSERT OVERWRITE is not supported in "
                        "multi-insert statements")
                table = self.hms.get_table(branch.table, self.database)
                if table.storage_handler is not None:
                    raise AnalysisError(
                        "multi-insert into handler-backed tables is not "
                        "supported")
                spec = branch.query.body
                batch = source_batch
                converter = _ExprConverter(analyzer, scope, None, {})
                if spec.where is not None:
                    condition = converter.convert(spec.where)
                    mask = expr_eval.evaluate_predicate(
                        condition, batch, writer.eval_ctx)
                    batch = batch.filter(mask)
                columns = []
                for item in spec.select_items:
                    if isinstance(item.expr, ast.Star):
                        columns.extend(batch.vectors)
                        continue
                    expr = converter.convert(item.expr)
                    columns.append(expr_eval.evaluate(
                        expr, batch, writer.eval_ctx))
                rows = [tuple(col.value(i) for col in columns)
                        for i in range(batch.num_rows)]
                result = writer.insert_rows(
                    table, rows, dict(branch.partition_spec),
                    txn=txn, stats_sink=pending_stats)
                total += result.rows_affected
                self._note_output(table.qualified_name)
                touched.append(table)
                if not own_txn:
                    self._txn_tables.add(table.qualified_name)
            if own_txn:
                self.hms.txn_manager.commit(txn)
        except Exception:
            if own_txn:
                # abort is idempotent on already-aborted transactions
                # (the reaper may have beaten us to it), so no blanket
                # exception swallowing here
                self.hms.txn_manager.abort(txn)
            raise
        finally:
            if own_txn:
                self.hms.lock_manager.release_all(txn)
        if own_txn:
            for table, rows, partition, replace in pending_stats:
                writer._merge_stats(table, rows, partition, replace)
            for table in touched:
                writer.initiator.check_table(table)
        return QueryResult(rows_affected=total, operation="multi_insert",
                           metrics=source_result.metrics)

    def _update(self, statement: ast.Update) -> QueryResult:
        table = self.hms.get_table(statement.table, self.database)
        self._note_output(table.qualified_name)
        analyzer = self._analyzer()
        schema = table.full_schema()
        predicate = (analyzer.convert_predicate(statement.where, schema)
                     if statement.where is not None else None)
        assignments = {}
        for column, expr in statement.assignments:
            ordinal = table.schema.index_of(column)
            assignments[ordinal] = analyzer.convert_scalar(expr, schema)
        result = self._writer().update_where(
            table, predicate, assignments, txn=self._active_txn,
            valid=(self._txn_valid_list(table.qualified_name)
                   if self._active_txn is not None else None))
        if self._active_txn is not None:
            self._txn_tables.add(table.qualified_name)
        return QueryResult(rows_affected=result.rows_affected,
                           operation="update")

    def _delete(self, statement: ast.Delete) -> QueryResult:
        table = self.hms.get_table(statement.table, self.database)
        self._note_output(table.qualified_name)
        analyzer = self._analyzer()
        predicate = (analyzer.convert_predicate(
            statement.where, table.full_schema())
            if statement.where is not None else None)
        result = self._writer().delete_where(
            table, predicate, txn=self._active_txn,
            valid=(self._txn_valid_list(table.qualified_name)
                   if self._active_txn is not None else None))
        if self._active_txn is not None:
            self._txn_tables.add(table.qualified_name)
        return QueryResult(rows_affected=result.rows_affected,
                           operation="delete")

    def _merge(self, statement: ast.Merge) -> QueryResult:
        if self._active_txn is not None:
            raise TransactionError(
                "MERGE is not supported inside a multi-statement "
                "transaction yet")
        table = self.hms.get_table(statement.target, self.database)
        self._note_output(table.qualified_name)
        analyzer = self._analyzer()
        # source rows
        if isinstance(statement.source, ast.NamedTable):
            source_sql = f"SELECT * FROM {statement.source.name}"
            source_alias = (statement.source.alias
                            or statement.source.name.split(".")[-1])
        elif isinstance(statement.source, ast.SubqueryRef):
            source_sql = statement.source.query.unparse()
            source_alias = statement.source.alias
        else:
            raise AnalysisError("unsupported MERGE source")
        from ..sql.parser import parse_query
        source_plan = analyzer.analyze_query(
            parse_query(source_sql, self.conf))
        source_result = self._compile_and_run(source_plan)
        from ..common.vector import VectorBatch
        source_schema = Schema([
            Column(name, dtype) for name, dtype in
            zip(source_result.column_names, source_plan.schema.types())])
        source_batch = VectorBatch.from_rows(source_schema,
                                             source_result.rows)

        target_alias = (statement.target_alias
                        or statement.target.split(".")[-1]).lower()
        scope = Scope([
            ScopeEntry(target_alias, table.full_schema(), 0),
            ScopeEntry(source_alias.lower(), source_schema,
                       len(table.full_schema()))])
        converter = _ExprConverter(analyzer, scope, None, {})
        condition = converter.convert(statement.condition)

        source_scope = Scope([ScopeEntry(source_alias.lower(),
                                         source_schema, 0)])
        source_converter = _ExprConverter(analyzer, source_scope, None, {})

        clauses = []
        for clause in statement.when_clauses:
            executable = _ExecutableMergeClause(
                matched=clause.matched, action=clause.action)
            if clause.condition is not None:
                ctx_converter = (converter if clause.matched
                                 else source_converter)
                executable.condition = ctx_converter.convert(
                    clause.condition)
            if clause.action == "update":
                executable.assignments = {
                    table.schema.index_of(col):
                        converter.convert(expr)
                    for col, expr in clause.assignments}
            if clause.action == "insert":
                executable.insert_values = [
                    source_converter.convert(e)
                    for e in clause.insert_values]
            clauses.append(executable)

        result = self._writer().merge(table, source_batch, target_alias,
                                      source_schema, condition, clauses)
        return QueryResult(rows_affected=result.rows_affected,
                           operation="merge",
                           metrics=source_result.metrics)

    # ------------------------------------------------------------------ #
    # multi-statement transactions (§9 roadmap: "we plan to implement
    # multi-statement transactions")
    def _begin_transaction(self) -> QueryResult:
        if self._active_txn is not None:
            raise TransactionError("a transaction is already open")
        self._active_txn = self.hms.txn_manager.open_transaction()
        self._txn_snapshot = self.hms.txn_manager.get_snapshot()
        self._txn_pending_stats = []
        self._txn_tables = set()
        # fault injection: this client may be elected to "die" holding
        # its locks — it stops heartbeating and the reaper cleans up
        faults = self.server.faults
        rate = self.conf.faults_lock_stall_rate
        if rate > 0.0 and faults.decide("lock.stall",
                                        self._active_txn, rate):
            faults.stall_txn(self._active_txn)
            faults.record("lock.stall", f"txn {self._active_txn}",
                          detail="client stops heartbeating")
        return QueryResult(operation="start_transaction",
                           message=f"txn {self._active_txn} open")

    def _commit_transaction(self) -> QueryResult:
        if self._active_txn is None:
            raise TransactionError("no open transaction to commit")
        txn = self._active_txn
        writer = self._writer()
        try:
            self.hms.txn_manager.commit(txn)
        except Exception:
            self._clear_transaction()
            raise
        # apply the deferred statistics only once the commit stuck
        for table, rows, partition, replace in self._txn_pending_stats:
            writer._merge_stats(table, rows, partition, replace)
        touched = set(self._txn_tables)
        self._clear_transaction()
        for table_name in touched:
            writer.initiator.check_table(self.hms.get_table(table_name))
        return QueryResult(operation="commit",
                           message=f"txn {txn} committed")

    def _rollback_transaction(self) -> QueryResult:
        if self._active_txn is None:
            raise TransactionError("no open transaction to roll back")
        txn = self._active_txn
        self.hms.txn_manager.abort(txn)
        self._clear_transaction()
        return QueryResult(operation="rollback",
                           message=f"txn {txn} rolled back")

    def _clear_transaction(self) -> None:
        if self._active_txn is not None:
            self.hms.lock_manager.release_all(self._active_txn)
        self._active_txn = None
        self._txn_snapshot = None
        self._txn_pending_stats = []
        self._txn_tables = set()

    def _txn_valid_list(self, table_name: str):
        """ValidWriteIdList for reads inside the open transaction:

        the BEGIN snapshot plus this transaction's own writes."""
        from ..metastore.txn import OwnWriteIdList
        base = self.hms.txn_manager.valid_write_ids(
            self._txn_snapshot, table_name)
        own = self.hms.txn_manager.write_ids_of(self._active_txn)
        return OwnWriteIdList(base.table, base.high_watermark,
                              base.invalid_ids,
                              own_write_id=own.get(table_name.lower(), 0))

    # ------------------------------------------------------------------ #
    # ANALYZE / SET / workload DDL
    def _analyze_table(self, statement: ast.AnalyzeTable) -> QueryResult:
        table = self.hms.get_table(statement.table, self.database)
        result = self._run_select(_select_star(table), use_cache=False)
        stats = TableStatistics.from_rows(table.full_schema(),
                                          result.rows)
        # keep only data-column stats at table level
        self.hms.set_statistics(table, stats)
        return QueryResult(operation="analyze",
                           rows_affected=stats.row_count,
                           metrics=result.metrics)

    def _set_config(self, statement: ast.SetConfig) -> QueryResult:
        key = statement.key.lower()
        attr = _CONFIG_ALIASES.get(key, key)
        if not hasattr(self.conf, attr):
            raise AnalysisError(f"unknown configuration key {key!r}")
        current = getattr(self.conf, attr)
        value: object = statement.value
        if isinstance(current, bool):
            value = _parse_bool_config(key, statement.value)
        elif isinstance(current, int):
            value = int(statement.value)
        elif isinstance(current, float):
            value = float(statement.value)
        setattr(self.conf, attr, value)
        try:
            self.conf.validate()
        except HiveError:
            setattr(self.conf, attr, current)  # keep the session usable
            raise
        if attr == "obs_query_log_capacity":
            # server-level knob: resize the live ring (excess spills)
            self.server.obs.query_log.set_capacity(int(value))
        if attr.startswith("qstore_"):
            # the query store is server-wide, like the query log
            self.server.obs.query_store.apply_knob(attr, value)
        # audit/lineage stores and the hook registry are server-wide,
        # like the query log: SET takes effect for every session
        if attr == "audit_capacity":
            self.server.obs.audit_log.set_capacity(int(value))
        elif attr == "lineage_capacity":
            self.server.obs.lineage_graph.set_capacity(int(value))
        elif attr == "lineage_enabled":
            self.server.obs.lineage_graph.enabled = bool(value)
        elif attr == "hook_timeout_s":
            self.server.obs.hooks.set_timeout(float(value))
        # the fault registry is server-wide (the simulated fs is shared);
        # mirror the knobs its stateless decisions read
        faults = self.server.faults
        if attr == "faults_seed":
            faults.seed = int(value)
        elif attr == "faults_io_error_rate":
            faults.io_error_rate = float(value)
        elif attr == "task_max_attempts":
            faults.max_io_retries = max(0, int(value) - 1)
        elif attr == "txn_timeout_s":
            self.server.housekeeper.timeout_s = float(value)
        elif attr == "monitor_sample_interval_s":
            # the sampler is server-wide, like the fault registry
            self.server.obs.cluster.set_interval(float(value))
        elif attr == "monitor_http_port" and int(value) > 0:
            self.server.obs.start_http(port=int(value))
        elif attr == "lint_sanitize_longhold_s":
            # push to the live sanitizer, if this process runs one
            from ..lint import sanitizer as _sanitizer
            active = _sanitizer.current()
            if active is not None:
                active.longhold_s = float(value)
        elif attr in _SERVER2_KNOBS:
            # serving-layer knobs are server-wide: the session manager
            # and admission controller read the SERVER conf (session
            # confs remain snapshots — see Session.__init__)
            setattr(self.server.conf, attr, value)
            if attr == "plan_cache_max_entries":
                self.server.plan_cache.max_entries = int(value)
        return QueryResult(operation="set",
                           message=f"{attr}={value}")

    def _kill_query(self, statement: ast.KillQuery) -> QueryResult:
        """KILL QUERY <id> — flag a live query for termination.

        The runner observes the flag at its next inter-vertex
        checkpoint and aborts through the WM KILL path, so the victim
        lands in ``sys.query_log`` with status ``killed``.
        """
        live = self.server.obs.live_queries
        if not live.request_kill(statement.query_id,
                                 reason="KILL QUERY"):
            raise AnalysisError(
                f"no live query with id {statement.query_id} "
                "(see sys.live_queries)")
        return QueryResult(
            operation="kill_query",
            message=f"kill requested for query {statement.query_id}")

    def _workload_ddl(self, statement: ast.Statement) -> QueryResult:
        hms = self.hms
        if isinstance(statement, ast.CreateResourcePlan):
            hms.save_resource_plan(statement.name,
                                   ResourcePlan(statement.name.lower()))
            self._active_plan_name = statement.name
            return QueryResult(operation="create_resource_plan")
        if isinstance(statement, ast.CreatePool):
            plan = hms.get_resource_plan(statement.plan)
            plan.add_pool(Pool(statement.pool.lower(),
                               statement.alloc_fraction,
                               statement.query_parallelism))
            return QueryResult(operation="create_pool")
        if isinstance(statement, ast.CreateTriggerRule):
            plan = hms.get_resource_plan(statement.plan)
            trigger = Trigger(
                statement.name.lower(), statement.metric,
                statement.threshold,
                TriggerAction(statement.action.lower()),
                statement.action_arg.lower()
                if statement.action_arg else None)
            if statement.over_s > 0.0:
                trigger.over_s = statement.over_s
            plan.unattached_triggers[statement.name.lower()] = trigger
            return QueryResult(operation="create_rule")
        if isinstance(statement, ast.AddRuleToPool):
            plan = self._find_plan_with_rule(statement.rule)
            plan.attach_rule(statement.rule.lower(), statement.pool.lower())
            return QueryResult(operation="add_rule")
        if isinstance(statement, ast.CreateApplicationMapping):
            plan = hms.get_resource_plan(statement.plan)
            plan.mappings[statement.application.lower()] = \
                statement.pool.lower()
            return QueryResult(operation="create_mapping")
        if isinstance(statement, ast.AlterPlan):
            plan = hms.get_resource_plan(statement.plan)
            if statement.default_pool is not None:
                if statement.default_pool.lower() not in plan.pools:
                    raise CatalogError(
                        f"no such pool: {statement.default_pool}")
                plan.default_pool = statement.default_pool.lower()
            if statement.enable_activate:
                plan.enabled = True
                hms.activate_resource_plan(statement.plan)
                self.server.workload_manager.plan = plan
            return QueryResult(operation="alter_plan")
        raise AnalysisError("unhandled workload statement")

    def _find_plan_with_rule(self, rule: str) -> ResourcePlan:
        for plan_name, plan in self.hms._resource_plans.items():
            if rule.lower() in plan.unattached_triggers:
                return plan
        raise CatalogError(f"no resource plan defines rule {rule!r}")


# --------------------------------------------------------------------------- #
# helpers

@dataclass
class _ExecutableMergeClause:
    matched: bool
    action: str
    condition: Optional[object] = None
    assignments: dict = field(default_factory=dict)
    insert_values: list = field(default_factory=list)


def _split_table_name(name: str, default_db: str) -> tuple[str, str]:
    """Resolve an optionally db-qualified table name."""
    if "." in name:
        database, bare = name.split(".", 1)
        return database, bare
    return default_db, name


def _merge_agg(func: str, state, value):
    """Merge a partial aggregate into the view's stored value."""
    if value is None:
        return state
    if state is None:
        return value
    if func in ("sum", "count"):
        return state + value
    if func == "min":
        return min(state, value)
    if func == "max":
        return max(state, value)
    raise ExecutionError(
        f"aggregate {func} is not incrementally mergeable")


def _column_from_def(definition: ast.ColumnDef) -> Column:
    dtype = type_from_name(definition.type_name, *definition.type_params)
    return Column(definition.name.lower(), dtype,
                  nullable=not definition.not_null)


def _normalize_handler(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    lowered = name.lower()
    if "druid" in lowered:
        return "druid"
    if "jdbc" in lowered:
        return "jdbc"
    if "kafka" in lowered:
        return "kafka"
    return lowered


def _is_cacheable(query: ast.Query) -> bool:
    """Deterministic queries only (Section 4.3)."""
    return not _query_calls(query, NON_CACHEABLE_FUNCTIONS)


def _query_calls(query: ast.Query, names: frozenset) -> bool:
    def expr_has(expr: ast.Expr) -> bool:
        return any(isinstance(e, ast.FuncCall) and e.name in names
                   for e in ast.walk_expr(expr))

    def spec_has(spec) -> bool:
        if isinstance(spec, ast.SetOperation):
            return spec_has(spec.left) or spec_has(spec.right)
        for item in spec.select_items:
            if not isinstance(item.expr, ast.Star) and expr_has(item.expr):
                return True
        if spec.where is not None and expr_has(spec.where):
            return True
        if spec.having is not None and expr_has(spec.having):
            return True
        for ref in spec.from_refs:
            if _ref_has(ref):
                return True
        return False

    def _ref_has(ref) -> bool:
        if isinstance(ref, ast.SubqueryRef):
            return _query_calls(ref.query, names)
        if isinstance(ref, ast.JoinRef):
            return _ref_has(ref.left) or _ref_has(ref.right)
        return False

    for cte in query.ctes:
        if _query_calls(cte.query, names):
            return True
    return spec_has(query.body)


def _select_star(table: TableDescriptor) -> ast.Query:
    from ..sql.parser import parse_query
    return parse_query(f"SELECT * FROM {table.qualified_name}")


_BOOL_CONFIG_VALUES = {
    "true": True, "1": True, "yes": True, "on": True,
    "false": False, "0": False, "no": False, "off": False,
}


def _parse_bool_config(key: str, raw: str) -> bool:
    try:
        return _BOOL_CONFIG_VALUES[raw.lower()]
    except KeyError:
        raise AnalysisError(
            f"invalid boolean value {raw!r} for {key}: expected "
            "true/false (or 1/0, yes/no, on/off)") from None


_CONFIG_ALIASES = {
    "hive.llap.execution.mode": "llap_enabled",
    "hive.llap.enabled": "llap_enabled",
    "hive.llap.io.enabled": "llap_cache_enabled",
    "hive.vectorized.execution.enabled": "vectorized_execution",
    "hive.vectorized.compile.enabled": "vectorized_compile",
    "hive.vectorized.fusion.enabled": "vectorized_fusion",
    "hive.cbo.enable": "cbo_enabled",
    "hive.optimize.shared.work": "shared_work_optimization",
    "hive.optimize.semijoin.reduction": "semijoin_reduction",
    "hive.materializedview.rewriting": "mv_rewriting",
    "hive.query.results.cache.enabled": "results_cache_enabled",
    "hive.query.reexecution.strategy": "reexecution_strategy",
    "hive.auto.convert.join": "join_reordering",
    "hive.check.plan": "check_plan",
    "hive.check.plan.paranoid": "check_plan_paranoid",
    "hive.obs.query.log.capacity": "obs_query_log_capacity",
    "hive.obs.straggler.skew.threshold": "straggler_skew_threshold",
    "hive.monitor.http.port": "monitor_http_port",
    "hive.monitor.sample.interval.s": "monitor_sample_interval_s",
    "hive.monitor.timeseries.capacity": "monitor_timeseries_capacity",
    "hive.lint.sanitize.longhold.s": "lint_sanitize_longhold_s",
    "hive.faults.seed": "faults_seed",
    "hive.faults.task.fail.rate": "faults_task_fail_rate",
    "hive.faults.io.error.rate": "faults_io_error_rate",
    "hive.faults.node.fail.rate": "faults_node_fail_rate",
    "hive.faults.slow.node.rate": "faults_slow_node_rate",
    "hive.faults.slow.node.multiplier": "faults_slow_node_multiplier",
    "hive.faults.lock.stall.rate": "faults_lock_stall_rate",
    "hive.tez.task.max.attempts": "task_max_attempts",
    "hive.tez.task.retry.backoff.s": "task_retry_backoff_s",
    "hive.tez.speculative.execution": "speculative_execution",
    "hive.txn.timeout.s": "txn_timeout_s",
    "hive.query.results.cache.pending.timeout.s":
        "results_cache_pending_timeout_s",
    "hive.server2.session.ttl.s": "server2_session_ttl_s",
    "hive.server2.tenant.max.sessions": "server2_max_sessions_per_tenant",
    "hive.server2.admission.queue.timeout.s": "server2_queue_timeout_s",
    "hive.server2.default.parallelism": "server2_default_parallelism",
    "hive.server2.plan.cache.enabled": "plan_cache_enabled",
    "hive.server2.plan.cache.max.entries": "plan_cache_max_entries",
    "hive.query.store.enabled": "qstore_enabled",
    "hive.query.store.capacity": "qstore_capacity",
    "hive.query.store.window.s": "qstore_window_s",
    "hive.query.store.regression.threshold":
        "qstore_regression_threshold",
    "hive.query.store.regression.min.samples":
        "qstore_regression_min_samples",
    "hive.query.store.max.events": "qstore_max_events",
    "hive.lineage.enabled": "lineage_enabled",
    "hive.lineage.capacity": "lineage_capacity",
    "hive.audit.capacity": "audit_capacity",
    "hive.hook.timeout.s": "hook_timeout_s",
}

#: serving-layer knobs mirrored to the server conf by ``SET`` (the
#: session manager / admission controller read server state);
#: ``plan_cache_enabled`` stays session-scoped by design — it gates
#: this session's lookups, like ``results_cache_enabled``
_SERVER2_KNOBS = frozenset({
    "server2_session_ttl_s", "server2_max_sessions_per_tenant",
    "server2_queue_timeout_s", "server2_default_parallelism",
    "plan_cache_max_entries",
    # audit/lineage/hook stores live on the server's Observability;
    # mirroring keeps server.conf in step with the live objects
    "audit_capacity", "lineage_capacity", "lineage_enabled",
    "hook_timeout_s",
})
