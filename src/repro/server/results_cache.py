"""Query results cache (Section 4.3).

Each HS2 instance keeps a map from the **normalized query AST** (with
unqualified table references resolved against the current database) to an
entry holding the result and the transactional snapshot it was computed
under.  A hit is served only when no participating table has new or
modified data — validity is checked against the tables' current WriteIds.

The cache has a **pending-entry mode**: when several identical queries
miss at once (the thundering herd after a data update), the first one
computes and the rest wait for it instead of recomputing.
"""

from __future__ import annotations

import threading

from ..common import sync
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CacheEntry:
    key: str
    rows: list = field(default_factory=list)
    column_names: list = field(default_factory=list)
    #: table -> WriteId the result was computed under
    snapshot_write_ids: dict = field(default_factory=dict)
    ready: bool = False
    failed: bool = False
    last_used: int = 0


@dataclass
class ResultsCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: wait *episodes* on a pending entry (one per waiting lookup, not
    #: one per condition-variable wakeup)
    pending_waits: int = 0
    #: pending entries presumed dead and taken over by a waiter after
    #: the bounded wait expired
    pending_takeovers: int = 0


class QueryResultsCache:
    """Thread-safe AST-keyed result cache with pending entries."""

    def __init__(self, max_entries: int = 64, wait_for_pending: bool = True,
                 pending_timeout_s: float = 30.0):
        self.max_entries = max_entries
        self.wait_for_pending = wait_for_pending
        #: total wall-clock bound on waiting for another caller's pending
        #: computation; past it the waiter presumes the computer dead
        #: (died without publish/abandon) and computes itself
        self.pending_timeout_s = pending_timeout_s
        self.stats = ResultsCacheStats()
        self._lock = sync.new_condition('QueryResultsCache._lock')
        self._entries: dict[str, CacheEntry] = {}
        self._clock = 0

    # ------------------------------------------------------------------ #
    def lookup(self, key: str,
               current_write_ids: dict[str, int]
               ) -> tuple[Optional[CacheEntry], bool]:
        """Returns ``(entry, must_compute)``.

        * ``(entry, False)`` — valid hit, serve ``entry.rows``,
        * ``(entry, True)`` — miss; a *pending* entry was installed and
          this caller is elected to compute and then :meth:`publish`,
        * waits on a pending entry computed by another caller when
          pending mode is on.
        """
        with self._lock:
            self._clock += 1
            wait_deadline = None
            while True:
                entry = self._entries.get(key)
                if entry is None:
                    break
                if not entry.ready:
                    if not self.wait_for_pending:
                        break
                    now = time.monotonic()
                    if wait_deadline is None:
                        # first wakeup of this lookup: one wait episode
                        self.stats.pending_waits += 1
                        wait_deadline = now + self.pending_timeout_s
                    elif now >= wait_deadline:
                        # the elected computer died without publish or
                        # abandon; drop its stale pending entry and take
                        # over as the computer ourselves
                        if self._entries.get(key) is entry:
                            del self._entries[key]
                        self.stats.pending_takeovers += 1
                        break
                    self._lock.wait(timeout=wait_deadline - now)
                    continue
                if self._is_valid(entry, current_write_ids):
                    entry.last_used = self._clock
                    self.stats.hits += 1
                    return entry, False
                # stale: expunge and recompute
                self.stats.invalidations += 1
                del self._entries[key]
                break
            self.stats.misses += 1
            pending = CacheEntry(key=key, last_used=self._clock)
            self._entries[key] = pending
            self._evict()
            return pending, True

    def publish(self, entry: CacheEntry, rows: list, column_names: list,
                snapshot_write_ids: dict[str, int]) -> None:
        with self._lock:
            entry.rows = rows
            entry.column_names = list(column_names)
            entry.snapshot_write_ids = dict(snapshot_write_ids)
            entry.ready = True
            self._lock.notify_all()

    def abandon(self, entry: CacheEntry) -> None:
        """The computing query failed or was not cacheable after all."""
        with self._lock:
            entry.failed = True
            entry.ready = True
            self._entries.pop(entry.key, None)
            self._lock.notify_all()

    # ------------------------------------------------------------------ #
    def _is_valid(self, entry: CacheEntry,
                  current_write_ids: dict[str, int]) -> bool:
        if entry.failed:
            return False
        for table, write_id in entry.snapshot_write_ids.items():
            if current_write_ids.get(table, 0) != write_id:
                return False
        return True

    def _evict(self) -> None:
        # caller holds self._lock (only lookup() calls this)
        ready = [e for e in self._entries.values() if e.ready]
        while len(self._entries) > self.max_entries and ready:
            victim = min(ready, key=lambda e: e.last_used)
            ready.remove(victim)
            self._entries.pop(victim.key, None)  # reprolint: disable=RL001

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
