"""HiveServer2: sessions, driver pipeline, result cache, reoptimization."""

from .driver import HiveServer2, QueryResult, Session

__all__ = ["HiveServer2", "QueryResult", "Session"]
