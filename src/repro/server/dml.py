"""DML execution: INSERT / UPDATE / DELETE / MERGE (Section 3.2).

Implements the transactional write path:

1. open a transaction and take shared locks (partition granularity for
   partitioned tables, table granularity otherwise),
2. allocate a per-table WriteId,
3. route rows to partitions (static spec or dynamic partitioning) and
   write delta / delete-delta directories,
4. record write sets for first-commit-wins conflict detection,
5. merge additive statistics into HMS,
6. commit, release locks, and let the compaction initiator react.

Updates are modeled as delete + insert, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..acid.compactor import CompactionInitiator
from ..acid.reader import AcidReader, row_ids_from_batch
from ..acid.writer import AcidWriter, RowId
from ..common.rows import Schema
from ..common.vector import VectorBatch
from ..config import HiveConf
from ..errors import AnalysisError, ExecutionError
from ..exec import expr_eval
from ..metastore.catalog import TableDescriptor
from ..metastore.hms import HiveMetastore
from ..metastore.locks import LockType
from ..metastore.stats import TableStatistics
from ..plan import rexnodes as rex


@dataclass
class DmlResult:
    rows_affected: int
    operation: str
    table: str


class TableWriter:
    """Executes transactional and plain writes against one warehouse."""

    def __init__(self, hms: HiveMetastore, conf: HiveConf,
                 eval_ctx: expr_eval.EvalContext | None = None):
        self.hms = hms
        self.conf = conf
        #: statement-time context for DML expressions (UPDATE SET /
        #: MERGE assignments may call CURRENT_DATE or RAND)
        self.eval_ctx = (eval_ctx if eval_ctx is not None
                         else expr_eval.EvalContext())
        self.writer = AcidWriter(hms.fs)
        self.reader = AcidReader(hms.fs)
        self.initiator = CompactionInitiator(hms, conf)

    # ------------------------------------------------------------------ #
    # INSERT
    def insert_rows(self, table: TableDescriptor,
                    rows: Sequence[tuple],
                    partition_spec: dict[str, object] | None = None,
                    overwrite: bool = False,
                    txn: int | None = None,
                    stats_sink: list | None = None) -> DmlResult:
        """Insert rows; ``rows`` carry data columns followed by any

        partition columns not pinned by ``partition_spec`` (dynamic
        partitioning).

        With ``txn`` the write joins an open multi-statement transaction
        (§9 roadmap): the caller owns commit/rollback and lock release,
        and statistics deltas are deferred to ``stats_sink``.
        """
        partition_spec = {k.lower(): v
                          for k, v in (partition_spec or {}).items()}
        routed = self._route_partitions(table, rows, partition_spec)

        own_txn = txn is None
        if own_txn:
            txn = self.hms.txn_manager.open_transaction()
        locked = []
        try:
            for values in routed:
                key = values if table.is_partitioned else None
                self.hms.lock_manager.acquire(
                    txn, table.qualified_name, key, LockType.SHARED,
                    self.conf.txn_lock_timeout_s)
                locked.append(key)
            write_id = self.hms.txn_manager.allocate_write_id(
                txn, table.qualified_name)
            total = 0
            for values, part_rows in routed.items():
                location = self._partition_location(table, values,
                                                    create=True)
                if overwrite:
                    self._truncate_location(location)
                if table.is_acid:
                    self.writer.write_insert_delta(
                        location, write_id, table.schema, part_rows,
                        bloom_columns=table.bloom_filter_columns)
                else:
                    seq = len(self.hms.fs.list_files(location))
                    self.writer.write_plain(
                        location, table.schema, part_rows,
                        bloom_columns=table.bloom_filter_columns,
                        file_seq=seq, file_format=table.file_format)
                self.hms.txn_manager.record_write_set(
                    txn, table.qualified_name,
                    values if table.is_partitioned else (), "insert")
                self._record_stats(stats_sink, table, part_rows,
                                   values if table.is_partitioned
                                   else None, replace=overwrite)
                total += len(part_rows)
            if own_txn:
                self.hms.txn_manager.commit(txn)
        except Exception:
            if own_txn:
                # abort is idempotent on already-aborted transactions
                # (commit conflicts self-abort before raising)
                self.hms.txn_manager.abort(txn)
            raise
        finally:
            if own_txn:
                self.hms.lock_manager.release_all(txn)
        self.hms.emit_event("INSERT", table.qualified_name,
                            {"rows": total})
        if own_txn:
            self.initiator.check_table(table)
        return DmlResult(total, "insert", table.qualified_name)

    def _route_partitions(self, table: TableDescriptor,
                          rows: Sequence[tuple],
                          partition_spec: dict) -> dict[tuple, list]:
        data_width = len(table.schema)
        part_columns = table.partition_columns
        routed: dict[tuple, list] = {}
        if not table.is_partitioned:
            routed[()] = [tuple(r) for r in rows]
            return routed
        static = [partition_spec.get(c.name.lower())
                  for c in part_columns]
        dynamic_count = sum(1 for v in static if v is None)
        for row in rows:
            if len(row) != data_width + dynamic_count:
                raise AnalysisError(
                    f"insert into {table.qualified_name}: row has "
                    f"{len(row)} values, expected {data_width} data + "
                    f"{dynamic_count} dynamic partition values")
            data = tuple(row[:data_width])
            dynamic = list(row[data_width:])
            values = []
            for v in static:
                if v is not None:
                    values.append(v)
                else:
                    values.append(dynamic.pop(0))
            routed.setdefault(tuple(values), []).append(data)
        return routed

    def _partition_location(self, table: TableDescriptor, values: tuple,
                            create: bool) -> str:
        if not table.is_partitioned:
            return table.location
        if values in table.partitions:
            return table.partitions[values].location
        if not create:
            raise ExecutionError(
                f"no partition {values} in {table.qualified_name}")
        return self.hms.add_partition(table, values).location

    def _truncate_location(self, location: str) -> None:
        fs = self.hms.fs
        if fs.exists(location):
            fs.delete(location, recursive=True)
        fs.mkdirs(location)

    def _record_stats(self, stats_sink, table, rows, partition,
                      replace: bool = False) -> None:
        """Apply stats now, or defer them until the owning transaction

        commits (rolled-back work must not pollute the statistics)."""
        if stats_sink is not None:
            stats_sink.append((table, list(rows), partition, replace))
        else:
            self._merge_stats(table, rows, partition, replace)

    def _merge_stats(self, table: TableDescriptor, rows, partition,
                     replace: bool = False) -> None:
        delta = TableStatistics.from_rows(table.schema, rows)
        if replace:
            self.hms.set_statistics(table, delta, partition)
            if partition is not None:
                # table-level aggregate must be recomputed; approximate by
                # summing partition stats
                total = TableStatistics()
                for values in table.partitions:
                    part_stats = self.hms.get_statistics(table, values)
                    total = total.merge(part_stats)
                self.hms.set_statistics(table, total, None)
        else:
            self.hms.update_statistics(table, delta, partition)

    # ------------------------------------------------------------------ #
    # UPDATE / DELETE
    def delete_where(self, table: TableDescriptor,
                     predicate: Optional[rex.RexNode],
                     txn: int | None = None,
                     valid=None) -> DmlResult:
        return self._mutate(table, predicate, assignments=None, txn=txn,
                            valid=valid)

    def update_where(self, table: TableDescriptor,
                     predicate: Optional[rex.RexNode],
                     assignments: dict[int, rex.RexNode],
                     txn: int | None = None,
                     valid=None) -> DmlResult:
        return self._mutate(table, predicate, assignments=assignments,
                            txn=txn, valid=valid)

    def _mutate(self, table: TableDescriptor,
                predicate: Optional[rex.RexNode],
                assignments: Optional[dict[int, rex.RexNode]],
                txn: int | None = None, valid=None
                ) -> DmlResult:
        if not table.is_acid:
            raise ExecutionError(
                f"{table.qualified_name} is not transactional; UPDATE/"
                "DELETE require an ACID table")
        operation = "update" if assignments is not None else "delete"
        own_txn = txn is None
        if own_txn:
            txn = self.hms.txn_manager.open_transaction()
        try:
            if valid is None:
                snapshot = self.hms.txn_manager.get_snapshot()
                valid = self.hms.txn_manager.valid_write_ids(
                    snapshot, table.qualified_name)
            write_id = self.hms.txn_manager.allocate_write_id(
                txn, table.qualified_name)
            total = 0
            locations = ([(p.values, p.location)
                          for p in table.list_partitions()]
                         if table.is_partitioned
                         else [((), table.location)])
            for values, location in locations:
                self.hms.lock_manager.acquire(
                    txn, table.qualified_name,
                    values if table.is_partitioned else None,
                    LockType.SHARED, self.conf.txn_lock_timeout_s)
                batch, _ = self.reader.read(location, valid,
                                            include_row_ids=True)
                if batch.num_rows == 0:
                    continue
                affected = self._affected_mask(table, batch, values,
                                               predicate)
                row_ids = [rid for rid, hit in
                           zip(row_ids_from_batch(batch), affected)
                           if hit]
                if not row_ids:
                    continue
                self.writer.write_delete_delta(location, write_id,
                                               row_ids)
                if assignments is not None:
                    new_rows = self._updated_rows(table, batch, affected,
                                                  assignments)
                    self.writer.write_insert_delta(
                        location, write_id, table.schema, new_rows,
                        bloom_columns=table.bloom_filter_columns)
                self.hms.txn_manager.record_write_set(
                    txn, table.qualified_name,
                    values if table.is_partitioned else (), operation)
                total += len(row_ids)
            if own_txn:
                self.hms.txn_manager.commit(txn)
        except Exception:
            if own_txn:
                # abort is idempotent on already-aborted transactions
                # (commit conflicts self-abort before raising)
                self.hms.txn_manager.abort(txn)
            raise
        finally:
            if own_txn:
                self.hms.lock_manager.release_all(txn)
        self.hms.emit_event(operation.upper(), table.qualified_name,
                            {"rows": total})
        if own_txn:
            self.initiator.check_table(table)
        return DmlResult(total, operation, table.qualified_name)

    def _affected_mask(self, table: TableDescriptor, batch: VectorBatch,
                       partition_values: tuple, predicate):
        import numpy as np
        if predicate is None:
            return np.ones(batch.num_rows, dtype=bool)
        # predicate is over the full schema (data + partition columns)
        eval_batch = self._with_partitions(table, batch, partition_values)
        return expr_eval.evaluate_predicate(predicate, eval_batch,
                                            self.eval_ctx)

    def _with_partitions(self, table: TableDescriptor, batch: VectorBatch,
                         values: tuple) -> VectorBatch:
        if not table.is_partitioned:
            # drop the meta columns for predicate evaluation
            names = [c.name for c in table.schema]
            idx = [batch.schema.index_of(n) for n in names]
            return batch.project(idx, table.schema)
        import numpy as np
        from ..common.vector import ColumnVector
        names = [c.name for c in table.schema]
        idx = [batch.schema.index_of(n) for n in names]
        data_batch = batch.project(idx, table.schema)
        vectors = list(data_batch.vectors)
        columns = list(table.schema.columns)
        for col, value in zip(table.partition_columns, values):
            storage = col.dtype.to_storage(value)
            np_dtype = col.dtype.numpy_dtype
            n = batch.num_rows
            if np_dtype == np.dtype(object):
                data = np.empty(n, dtype=object)
                data[:] = storage
            else:
                data = np.full(n, storage, dtype=np_dtype)
            vectors.append(ColumnVector(col.dtype, data,
                                        np.zeros(n, dtype=bool)))
            columns.append(col)
        return VectorBatch(Schema(columns), vectors)

    def _updated_rows(self, table: TableDescriptor, batch: VectorBatch,
                      affected, assignments: dict[int, rex.RexNode]
                      ) -> list[tuple]:
        names = [c.name for c in table.schema]
        idx = [batch.schema.index_of(n) for n in names]
        data_batch = batch.project(idx, table.schema).filter(affected)
        columns = []
        for i in range(len(table.schema)):
            expr = assignments.get(i)
            if expr is None:
                columns.append(data_batch.vectors[i].to_values())
            else:
                columns.append(
                    expr_eval.evaluate(expr, data_batch,
                                       self.eval_ctx).to_values())
        return [tuple(col[r] for col in columns)
                for r in range(data_batch.num_rows)]

    # ------------------------------------------------------------------ #
    # MERGE
    def merge(self, table: TableDescriptor, source_batch: VectorBatch,
              target_alias: Optional[str], source_schema: Schema,
              condition: rex.RexNode, when_clauses) -> DmlResult:
        """MERGE INTO target USING source ON cond WHEN ... (Section 3.2).

        ``condition`` and clause expressions are Rex over the combined
        (target ++ source) schema.
        """
        if not table.is_acid:
            raise ExecutionError(
                f"{table.qualified_name} is not transactional")
        import numpy as np
        txn = self.hms.txn_manager.open_transaction()
        try:
            snapshot = self.hms.txn_manager.get_snapshot()
            valid = self.hms.txn_manager.valid_write_ids(
                snapshot, table.qualified_name)
            write_id = self.hms.txn_manager.allocate_write_id(
                txn, table.qualified_name)
            total = 0
            locations = ([(p.values, p.location)
                          for p in table.list_partitions()]
                         if table.is_partitioned
                         else [((), table.location)])
            matched_source = np.zeros(source_batch.num_rows, dtype=bool)
            pending_deletes: dict[str, list[RowId]] = {}
            pending_inserts: dict[str, list[tuple]] = {}
            insert_stats: dict[str, tuple] = {}
            wrote_mutation = False
            for values, location in locations:
                self.hms.lock_manager.acquire(
                    txn, table.qualified_name,
                    values if table.is_partitioned else None,
                    LockType.SHARED, self.conf.txn_lock_timeout_s)
                target_batch, _ = self.reader.read(location, valid,
                                                   include_row_ids=True)
                if target_batch.num_rows == 0:
                    continue
                data_batch = self._with_partitions(table, target_batch,
                                                   values)
                row_ids = row_ids_from_batch(target_batch)
                # pair every target row with every source row (hash join
                # would be an optimization; MERGE sources are small here)
                for ti in range(data_batch.num_rows):
                    t_row = data_batch.slice(ti, ti + 1)
                    pair = _cross_pair(t_row, source_batch,
                                       source_schema)
                    cond = expr_eval.evaluate_predicate(
                        condition, pair, self.eval_ctx)
                    hits = np.nonzero(cond)[0]
                    if len(hits) > 1:
                        raise ExecutionError(
                            "MERGE: multiple source rows match one "
                            "target row")
                    if len(hits) == 1:
                        si = int(hits[0])
                        matched_source[si] = True
                        action = self._matched_action(
                            when_clauses, pair.take(np.array([si])))
                        if action is None:
                            continue
                        kind, clause = action
                        if kind == "delete":
                            pending_deletes.setdefault(
                                location, []).append(row_ids[ti])
                            total += 1
                        elif kind == "update":
                            pending_deletes.setdefault(
                                location, []).append(row_ids[ti])
                            pending_inserts.setdefault(
                                location, []).append(
                                self._merge_update_row(
                                    table, pair.take(np.array([si])),
                                    clause))
                            total += 1
                if location in pending_deletes:
                    self.hms.txn_manager.record_write_set(
                        txn, table.qualified_name,
                        values if table.is_partitioned else (), "update")
                    wrote_mutation = True
            # WHEN NOT MATCHED THEN INSERT
            insert_clause = next(
                (c for c in when_clauses
                 if not c.matched and c.action == "insert"), None)
            if insert_clause is not None:
                new_rows = []
                for si in np.nonzero(~matched_source)[0]:
                    row_batch = source_batch.slice(int(si), int(si) + 1)
                    row = tuple(
                        expr_eval.evaluate(expr, row_batch,
                                           self.eval_ctx).value(0)
                        for expr in insert_clause.insert_values)
                    new_rows.append(row)
                if new_rows:
                    # dynamic routing for partitioned targets
                    routed = self._route_partitions(table, new_rows, {})
                    for part_values, part_rows in routed.items():
                        location = self._partition_location(
                            table, part_values, create=True)
                        pending_inserts.setdefault(location,
                                                   []).extend(part_rows)
                        insert_stats[location] = (
                            part_rows,
                            part_values if table.is_partitioned else None)
                    self.hms.txn_manager.record_write_set(
                        txn, table.qualified_name, (), "insert")
                    total += len(new_rows)
            # flush: one delete delta + one insert delta per location
            for location, row_id_list in pending_deletes.items():
                self.writer.write_delete_delta(location, write_id,
                                               row_id_list)
            for location, rows in pending_inserts.items():
                self.writer.write_insert_delta(
                    location, write_id, table.schema, rows,
                    bloom_columns=table.bloom_filter_columns)
            for location, (part_rows, part_values) in insert_stats.items():
                self._merge_stats(table, part_rows, part_values)
            self.hms.txn_manager.commit(txn)
        except Exception:
            # abort is idempotent on already-aborted transactions
            # (commit conflicts self-abort before raising)
            self.hms.txn_manager.abort(txn)
            raise
        finally:
            self.hms.lock_manager.release_all(txn)
        self.hms.emit_event("MERGE", table.qualified_name, {"rows": total})
        self.initiator.check_table(table)
        return DmlResult(total, "merge", table.qualified_name)

    def _matched_action(self, when_clauses, pair_row):
        for clause in when_clauses:
            if not clause.matched:
                continue
            if clause.condition is not None:
                if not expr_eval.evaluate_predicate(
                        clause.condition, pair_row, self.eval_ctx)[0]:
                    continue
            return clause.action, clause
        return None

    def _merge_update_row(self, table: TableDescriptor, pair_row,
                          clause) -> tuple:
        values = []
        for i, col in enumerate(table.schema):
            expr = clause.assignments.get(i) \
                if isinstance(clause.assignments, dict) else None
            if expr is None:
                values.append(pair_row.vectors[i].value(0))
            else:
                values.append(
                    expr_eval.evaluate(expr, pair_row,
                                       self.eval_ctx).value(0))
        return tuple(values)


def _cross_pair(target_row: VectorBatch, source: VectorBatch,
                source_schema: Schema) -> VectorBatch:
    """Combine one target row with every source row."""
    import numpy as np
    n = source.num_rows
    repeated = target_row.take(np.zeros(n, dtype=np.int64))
    schema = repeated.schema.concat(source_schema, dedupe=True)
    return VectorBatch(schema, list(repeated.vectors) +
                       list(source.vectors))
