"""LLAP chunk/file placement: one rule, used everywhere.

The simulator places a file's data on exactly one LLAP daemon by
``file_id % num_nodes`` (the block-placement analogue of HDFS short-
circuit locality: LLAP schedules fragments where the data lives,
Section 5.1).  Cache invalidation on daemon death, the tez runner's
node-death path and the monitor's per-node heatmap must all agree on
this rule — a drifted copy would invalidate the wrong node's chunks or
draw a heatmap that disagrees with failover behaviour, so the rule
lives here and nowhere else.
"""

from __future__ import annotations

from typing import Iterable


def node_of(file_id: int, num_nodes: int) -> int:
    """The LLAP daemon hosting ``file_id``'s chunks."""
    return file_id % max(1, num_nodes)


def files_on_node(file_ids: Iterable[int], node: int,
                  num_nodes: int) -> set[int]:
    """The subset of ``file_ids`` resident on ``node``."""
    return {f for f in file_ids if node_of(f, num_nodes) == node}
