"""I/O elevator: reader factories used by the scan path (Section 5.1).

Two implementations of the same interface:

* :class:`DirectReaderFactory` — the container path: every open reads the
  file from the (simulated) disk; bytes are charged to ``disk_bytes``.
* :class:`LlapReaderFactory` — the LLAP path: file *metadata* (the parsed
  footer, including indexes) is cached per file id even for data that was
  never cached; row-column chunks are served from the
  :class:`~repro.llap.cache.LlapCache` when valid, and decoded + cached
  on miss.  Sargable predicates and Bloom filters are evaluated against
  the cached metadata *before* deciding which chunks to load, so chunks
  that a predicate excludes never trash the cache.

Both factories expose cumulative :class:`IOBreakdown` counters which the
cost model converts into virtual IO time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..common.vector import ColumnVector, VectorBatch
from ..formats.orc import OrcReader, SargPredicate
from ..fs import SimFileSystem
from .cache import ChunkKey, LlapCache
from .placement import node_of


@dataclass
class IOBreakdown:
    """Bytes by source; the cost model charges different throughputs."""

    disk_bytes: int = 0
    cache_bytes: int = 0
    metadata_bytes: int = 0
    files_opened: int = 0

    def merge(self, other: "IOBreakdown") -> None:
        self.disk_bytes += other.disk_bytes
        self.cache_bytes += other.cache_bytes
        self.metadata_bytes += other.metadata_bytes
        self.files_opened += other.files_opened

    def reset(self) -> None:
        self.disk_bytes = 0
        self.cache_bytes = 0
        self.metadata_bytes = 0
        self.files_opened = 0


class DirectReaderFactory:
    """Cold reads straight from the file system (Tez container mode)."""

    def __init__(self, fs: SimFileSystem):
        self.fs = fs
        self.io = IOBreakdown()

    def open(self, path: str):
        data = self.fs.read(path)
        reader = OrcReader(data)
        self.io.files_opened += 1
        self.io.metadata_bytes += reader.metadata_bytes
        return _DirectReader(reader, self.io)


class _DirectReader:
    """Charges every chunk it decodes as disk bytes."""

    def __init__(self, reader: OrcReader, io: IOBreakdown):
        self._reader = reader
        self._io = io
        self.schema = reader.schema
        self.num_rows = reader.num_rows
        self.row_groups = reader.row_groups
        self.metadata_bytes = reader.metadata_bytes

    def select_row_groups(self, sargs: Sequence[SargPredicate] = ()):
        return self._reader.select_row_groups(sargs)

    def read_row_group(self, group: int,
                       columns: Sequence[str] | None = None) -> VectorBatch:
        names = (list(columns) if columns is not None
                 else self.schema.names())
        for name in names:
            self._io.disk_bytes += self._reader.column_chunk_bytes(
                group, name)
        return self._reader.read_row_group(group, names)

    def read_all(self, columns=None, sargs=()):
        names = (list(columns) if columns is not None
                 else self.schema.names())
        groups = self.select_row_groups(sargs)
        batches = [self.read_row_group(g, names) for g in groups]
        return VectorBatch.concat(self.schema.select(names), batches)

    def column_chunk_bytes(self, group: int, column: str) -> int:
        return self._reader.column_chunk_bytes(group, column)


class LlapReaderFactory:
    """Warm path through the metadata cache and the chunk cache."""

    def __init__(self, fs: SimFileSystem, cache: LlapCache):
        self.fs = fs
        self.cache = cache
        self.io = IOBreakdown()
        #: metadata cache: (file_id, length) -> parsed OrcReader
        self._metadata: dict[tuple[int, int], OrcReader] = {}

    def open(self, path: str):
        status = self.fs.status(path)
        key = (status.file_id, status.length)
        reader = self._metadata.get(key)
        if reader is None:
            data = self.fs.read(path)
            reader = OrcReader(data)
            self._metadata[key] = reader
            # a fresh open pays for the footer read from disk
            self.io.metadata_bytes += reader.metadata_bytes
            self.io.disk_bytes += reader.metadata_bytes
        self.io.files_opened += 1
        return _CachedReader(reader, status.file_id, status.length,
                             self.cache, self.io)

    def invalidate(self, file_id: int) -> None:
        self._metadata = {k: v for k, v in self._metadata.items()
                          if k[0] != file_id}
        self.cache.invalidate_file(file_id)

    def invalidate_node(self, node: int, num_nodes: int) -> int:
        """Daemon death: drop the dead node's metadata and data chunks.

        Placement mirrors :meth:`LlapCache.invalidate_node` through the
        shared :func:`repro.llap.placement.node_of` rule.  Returns the
        number of chunks dropped.
        """
        self._metadata = {k: v for k, v in self._metadata.items()
                          if node_of(k[0], num_nodes) != node}
        return self.cache.invalidate_node(node, num_nodes)


class _CachedReader:
    """Serves row-column chunks through the LLAP cache."""

    def __init__(self, reader: OrcReader, file_id: int, length: int,
                 cache: LlapCache, io: IOBreakdown):
        self._reader = reader
        self._file_id = file_id
        self._length = length
        self._cache = cache
        self._io = io
        self.schema = reader.schema
        self.num_rows = reader.num_rows
        self.row_groups = reader.row_groups
        self.metadata_bytes = reader.metadata_bytes

    def select_row_groups(self, sargs: Sequence[SargPredicate] = ()):
        return self._reader.select_row_groups(sargs)

    def read_row_group(self, group: int,
                       columns: Sequence[str] | None = None) -> VectorBatch:
        names = (list(columns) if columns is not None
                 else self.schema.names())
        vectors: list[ColumnVector] = []
        for name in names:
            key = ChunkKey(self._file_id, self._length, group, name)
            cached = self._cache.get(key)
            chunk_bytes = self._reader.column_chunk_bytes(group, name)
            if cached is not None:
                self._io.cache_bytes += chunk_bytes
                vectors.append(cached)
                continue
            vector = self._reader.read_column(group, name)
            self._io.disk_bytes += chunk_bytes
            self._cache.put(key, vector, chunk_bytes)
            vectors.append(vector)
        return VectorBatch(self.schema.select(names), vectors)

    def read_all(self, columns=None, sargs=()):
        names = (list(columns) if columns is not None
                 else self.schema.names())
        groups = self.select_row_groups(sargs)
        batches = [self.read_row_group(g, names) for g in groups]
        return VectorBatch.concat(self.schema.select(names), batches)

    def column_chunk_bytes(self, group: int, column: str) -> int:
        return self._reader.column_chunk_bytes(group, column)
