"""LLAP data cache (Section 5.1).

An off-heap-style buffer pool addressed along two dimensions, row group
and column: the unit is a **row-column chunk**.  Cache validity uses the
file's unique identifier plus its length (the HDFS FileId / S3 ETag
analogue), so appends and ACID deltas never serve stale data — new files
have new ids, and the cache becomes an MVCC view of the data.

Eviction uses **LRFU** (Least Recently/Frequently Used), the default the
paper describes as "tuned for analytic workloads with frequent full and
partial scan operations".  Each chunk carries a *combined recency and
frequency* value::

    crf(t) = 1 + crf(t_last) * 2^(-lambda * (t - t_last))

``lambda`` → 0 degenerates to LFU; ``lambda`` → 1 to LRU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import HiveError
from .placement import node_of


@dataclass(frozen=True)
class ChunkKey:
    """Identity of one row-column chunk."""

    file_id: int
    file_length: int
    row_group: int
    column: str


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.hit_bytes = self.miss_bytes = 0
        self.evictions = self.evicted_bytes = 0


@dataclass
class _Entry:
    payload: object
    nbytes: int
    crf: float
    last_access: int


class LlapCache:
    """LRFU chunk cache with a byte-capacity bound."""

    def __init__(self, capacity_bytes: int, lrfu_lambda: float = 0.01):
        if capacity_bytes < 0:
            raise HiveError("cache capacity must be >= 0")
        if not 0.0 <= lrfu_lambda <= 1.0:
            raise HiveError("lrfu lambda must be in [0, 1]")
        self.capacity_bytes = capacity_bytes
        self.lrfu_lambda = lrfu_lambda
        self.stats = CacheStats()
        self._entries: dict[ChunkKey, _Entry] = {}
        self._used = 0
        self._clock = 0

    # -- access ------------------------------------------------------------- #
    def get(self, key: ChunkKey) -> Optional[object]:
        self._clock += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        entry.crf = 1.0 + entry.crf * self._decay(
            self._clock - entry.last_access)
        entry.last_access = self._clock
        self.stats.hits += 1
        self.stats.hit_bytes += entry.nbytes
        return entry.payload

    def put(self, key: ChunkKey, payload: object, nbytes: int) -> bool:
        """Insert a chunk, evicting as needed; returns False if the chunk

        is larger than the whole cache (never admitted)."""
        if nbytes > self.capacity_bytes:
            return False
        self._clock += 1
        if key in self._entries:
            old = self._entries.pop(key)
            self._used -= old.nbytes
        self._evict_until(self.capacity_bytes - nbytes)
        self._entries[key] = _Entry(payload, nbytes, 1.0, self._clock)
        self._used += nbytes
        self.stats.miss_bytes += nbytes
        return True

    def invalidate_file(self, file_id: int) -> int:
        """Drop every chunk of a file (e.g. after compaction cleanup).

        Counts as eviction: capacity pressure and invalidation must move
        the same ``evictions``/``evicted_bytes`` stats or the registry's
        cache series drift from the actual resident set."""
        doomed = [k for k in self._entries if k.file_id == file_id]
        for key in doomed:
            entry = self._entries.pop(key)
            self._used -= entry.nbytes
            self.stats.evictions += 1
            self.stats.evicted_bytes += entry.nbytes
        return len(doomed)

    def invalidate_node(self, node: int, num_nodes: int) -> int:
        """Drop every chunk resident on a dead LLAP daemon.

        Chunk placement follows the simulator's block-placement rule —
        :func:`repro.llap.placement.node_of` — so a daemon death wipes
        exactly the files hosted on that node.  Counts as eviction for
        the same reason as :meth:`invalidate_file`.
        """
        doomed = {k.file_id for k in self._entries
                  if node_of(k.file_id, num_nodes) == node}
        dropped = 0
        for file_id in doomed:
            dropped += self.invalidate_file(file_id)
        return dropped

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    # -- introspection ---------------------------------------------------------- #
    @property
    def used_bytes(self) -> int:
        return self._used

    def node_usage(self, num_nodes: int) -> dict[int, tuple[int, int]]:
        """Per-daemon residency: ``{node: (bytes, chunks)}``.

        Uses the same placement rule as :meth:`invalidate_node`, so the
        monitor's heatmap agrees with failover behaviour by
        construction.  ``list(dict.items())`` is atomic under the GIL,
        so scrape threads get a consistent point-in-time snapshot
        without a lock on the hot put/get path.
        """
        usage = {n: (0, 0) for n in range(max(1, num_nodes))}
        for key, entry in list(self._entries.items()):
            node = node_of(key.file_id, num_nodes)
            nbytes, chunks = usage[node]
            usage[node] = (nbytes + entry.nbytes, chunks + 1)
        return usage

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._entries

    # -- internals ------------------------------------------------------------ #
    def _decay(self, age: int) -> float:
        return 2.0 ** (-self.lrfu_lambda * age)

    def _current_crf(self, entry: _Entry) -> float:
        return entry.crf * self._decay(self._clock - entry.last_access)

    def _evict_until(self, budget: int) -> None:
        while self._used > budget and self._entries:
            victim_key = min(self._entries,
                             key=lambda k: self._current_crf(
                                 self._entries[k]))
            victim = self._entries.pop(victim_key)
            self._used -= victim.nbytes
            self.stats.evictions += 1
            self.stats.evicted_bytes += victim.nbytes
