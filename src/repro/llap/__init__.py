"""LLAP: persistent executors, data cache, I/O elevator, workload mgmt."""

from .cache import CacheStats, ChunkKey, LlapCache
from .elevator import DirectReaderFactory, LlapReaderFactory
from .workload import (Pool, ResourcePlan, Trigger, WorkloadManager,
                       TriggerAction)

__all__ = ["CacheStats", "ChunkKey", "LlapCache", "DirectReaderFactory",
           "LlapReaderFactory", "Pool", "ResourcePlan", "Trigger",
           "TriggerAction", "WorkloadManager"]
