"""Workload management (Section 5.2).

Resource plans control access to LLAP resources per query: **pools**
reserve a fraction of cluster executors and a concurrency level;
**mappings** route incoming queries to pools by application name;
**triggers** fire on runtime metrics and either *move* a query to another
pool or *kill* it.  Idle pool capacity may be borrowed by queries mapped
elsewhere until the owning pool claims it.

Triggers come in two forms.  A plain metric name (``total_runtime``)
compares the *current query's* counter against the threshold.  A
percentile form — ``p95(query.latency_s)`` — compares a quantile of the
query's *pool distribution* read from the obs registry's histograms, so
MOVE/KILL fire on distribution shifts (adaptive admission) even when the
triggering query itself is cheap.  A regression form —
``regression(query.latency_s)`` — compares the executing query's
fingerprint-level regression factor from the query store (current
window p95 over baseline).  Every firing is recorded in a
:class:`WmEventLog`, which backs the ``sys.wm_events`` table.

Plans are persisted in HMS; exactly one plan is active at a time.
"""

from __future__ import annotations

import enum
import heapq
import re
import threading

from ..common import sync
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..errors import WorkloadManagementError

#: percentile-trigger metric syntax: ``p<number>(<histogram name>)``
_PERCENTILE_METRIC = re.compile(r"^p(\d+(?:\.\d+)?)\((.+)\)$")

#: rate-trigger (alert rule) metric syntax: ``rate(<sampled series>)``
_RATE_METRIC = re.compile(r"^rate\((.+)\)$")

#: query-store trigger syntax: ``regression(<metric>)`` — compares the
#: live query's fingerprint regression factor (window p95 / baseline)
_REGRESSION_METRIC = re.compile(r"^regression\((.+)\)$")


class TriggerAction(enum.Enum):
    MOVE = "move"
    KILL = "kill"


@dataclass
class Trigger:
    name: str
    metric: str                # e.g. "total_runtime" (virtual seconds)
    threshold: float
    action: TriggerAction
    target_pool: Optional[str] = None
    #: trailing window (virtual seconds) for rate triggers — the
    #: ``OVER 60s`` clause of an alert rule; ignored otherwise
    over_s: float = 60.0

    @property
    def percentile(self) -> Optional[tuple[float, str]]:
        """``(p, histogram_name)`` for percentile triggers, else None."""
        match = _PERCENTILE_METRIC.match(self.metric)
        if match is None:
            return None
        return float(match.group(1)), match.group(2)

    @property
    def rate_metric(self) -> Optional[str]:
        """Sampled series name for ``rate(...)`` alert rules, else None.

        ``WHEN rate(faults.injected) > N OVER 60s`` compares the
        per-second increase of a *timeseries-sampled* counter over the
        trailing ``over_s`` window — cluster-state alerting, evaluated
        by the same trigger machinery as per-query thresholds.
        """
        match = _RATE_METRIC.match(self.metric)
        return match.group(1) if match else None

    @property
    def regression_metric(self) -> Optional[str]:
        """Inner metric name for ``regression(...)`` triggers, else None.

        ``WHEN regression(query.latency_s) > F THEN MOVE/KILL``
        compares the executing query's *fingerprint-level* regression
        factor — current-window p95 over baseline p95 from the query
        store — so recurring statements that suddenly slow down are
        demoted or killed regardless of their absolute latency.
        """
        match = _REGRESSION_METRIC.match(self.metric)
        return match.group(1) if match else None


@dataclass
class WmEvent:
    """One trigger firing — a row of ``sys.wm_events``."""

    event_id: int
    query_id: int
    pool: str
    trigger_name: str
    metric: str
    value: float
    threshold: float
    action: str                  # "move" | "kill"
    target_pool: Optional[str]

    def as_row(self) -> tuple:
        return (self.event_id, self.query_id, self.pool,
                self.trigger_name, self.metric, self.value,
                self.threshold, self.action, self.target_pool)


class WmEventLog:
    """Bounded, thread-safe log of workload-management trigger firings."""

    def __init__(self, capacity: int = 1024):
        self._lock = sync.new_lock('WmEventLog._lock')
        self._events: deque = deque(maxlen=capacity)
        self._next_id = 1

    def record(self, query_id: int, pool: str, trigger: Trigger,
               value: float) -> WmEvent:
        with self._lock:
            event = WmEvent(
                event_id=self._next_id, query_id=query_id, pool=pool,
                trigger_name=trigger.name, metric=trigger.metric,
                value=value, threshold=trigger.threshold,
                action=trigger.action.value,
                target_pool=trigger.target_pool)
            self._next_id += 1
            self._events.append(event)
            return event

    def entries(self) -> list[WmEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


@dataclass
class Pool:
    name: str
    alloc_fraction: float
    query_parallelism: int
    triggers: list[Trigger] = field(default_factory=list)


@dataclass
class ResourcePlan:
    name: str
    pools: dict[str, Pool] = field(default_factory=dict)
    mappings: dict[str, str] = field(default_factory=dict)
    default_pool: Optional[str] = None
    #: rules created but not yet attached to a pool (CREATE RULE)
    unattached_triggers: dict[str, Trigger] = field(default_factory=dict)
    enabled: bool = False

    def add_pool(self, pool: Pool) -> None:
        if pool.name in self.pools:
            raise WorkloadManagementError(
                f"pool {pool.name} already exists in plan {self.name}")
        total = sum(p.alloc_fraction for p in self.pools.values())
        if total + pool.alloc_fraction > 1.0 + 1e-9:
            raise WorkloadManagementError(
                f"plan {self.name}: allocation fractions exceed 1.0")
        self.pools[pool.name] = pool
        if self.default_pool is None:
            self.default_pool = pool.name

    def attach_rule(self, rule_name: str, pool_name: str) -> None:
        trigger = self.unattached_triggers.get(rule_name)
        if trigger is None:
            raise WorkloadManagementError(f"no such rule: {rule_name}")
        pool = self.pools.get(pool_name)
        if pool is None:
            raise WorkloadManagementError(f"no such pool: {pool_name}")
        pool.triggers.append(trigger)

    def route(self, application: Optional[str]) -> str:
        if application is not None and application in self.mappings:
            return self.mappings[application]
        if self.default_pool is None:
            raise WorkloadManagementError(
                f"plan {self.name} has no pools")
        return self.default_pool


@dataclass
class QueryAdmission:
    """Result of admitting one query under the active plan."""

    pool: str
    #: fraction of cluster executors this query's pool guarantees
    capacity_fraction: float
    #: virtual time the query had to wait for a concurrency slot
    queue_delay_s: float = 0.0
    moved_to: Optional[str] = None
    killed: bool = False
    #: threshold of the trigger that fired (for post-hoc re-pricing)
    fired_threshold: float = 0.0
    #: name of the trigger that fired (for the wm event log)
    fired_trigger: Optional[str] = None


class WorkloadManager:
    """Admits queries into pools and evaluates triggers.

    Concurrency is modeled in virtual time: each pool keeps a heap of
    running-query finish times; when a pool is at its parallelism limit,
    an arriving query waits for the earliest finisher.

    When a metrics registry (:class:`repro.obs.MetricsRegistry`) is
    attached, admissions and queue delays are published per pool, and
    triggers are evaluated against counters *read back from the
    registry* rather than values threaded through by the runner.
    """

    def __init__(self, plan: Optional[ResourcePlan] = None,
                 registry=None,
                 event_log: Optional[WmEventLog] = None,
                 timeseries=None, query_store=None):
        self.plan = plan
        self.registry = registry
        self.event_log = event_log
        #: repro.obs.TimeseriesStore backing rate(...) alert rules
        self.timeseries = timeseries
        #: repro.obs.QueryStore backing regression(...) triggers
        self.query_store = query_store
        #: per-pool heaps of running-query virtual finish times; the
        #: serving layer admits from many worker threads concurrently,
        #: so every heap access goes through the lock
        self._lock = sync.new_lock('WorkloadManager._lock')
        self._running: dict[str, list[float]] = {}

    @property
    def active(self) -> bool:
        return self.plan is not None and self.plan.enabled \
            and bool(self.plan.pools)

    # -- admission --------------------------------------------------------------- #
    def admit(self, application: Optional[str],
              arrival_s: float) -> QueryAdmission:
        if not self.active:
            return QueryAdmission(pool="", capacity_fraction=1.0)
        pool_name = self.plan.route(application)
        pool = self.plan.pools[pool_name]
        with self._lock:
            heap = self._running.setdefault(pool_name, [])
            while heap and heap[0] <= arrival_s:
                heapq.heappop(heap)
            delay = 0.0
            if len(heap) >= pool.query_parallelism:
                earliest = heapq.heappop(heap)
                delay = max(0.0, earliest - arrival_s)
            fraction = pool.alloc_fraction
            # borrow idle capacity from pools with no running queries
            for other_name, other in self.plan.pools.items():
                if other_name == pool_name:
                    continue
                other_heap = self._running.get(other_name, [])
                if not any(f > arrival_s for f in other_heap):
                    fraction += other.alloc_fraction
        if self.registry is not None:
            self.registry.counter("wm.pool.admissions",
                                  pool=pool_name).inc()
            self.registry.histogram("wm.pool.queue_delay_s",
                                    pool=pool_name).observe(delay)
        return QueryAdmission(pool=pool_name,
                              capacity_fraction=min(1.0, fraction),
                              queue_delay_s=delay)

    def complete(self, admission: QueryAdmission, finish_s: float) -> None:
        if not self.active or not admission.pool:
            return
        with self._lock:
            heapq.heappush(self._running.setdefault(admission.pool, []),
                           finish_s)

    def running_counts(self, now_s: float) -> dict[str, int]:
        """Queries still holding a slot per pool at virtual ``now_s``.

        Read by the cluster monitor's pool-usage samples; does not
        mutate the heaps (admission pops the expired entries itself).
        """
        if not self.active:
            return {}
        with self._lock:
            return {pool: sum(1 for f in self._running.get(pool, ())
                              if f > now_s)
                    for pool in self.plan.pools}

    # -- triggers ----------------------------------------------------------------- #
    def check_triggers_from_registry(self, registry,
                                     admission: QueryAdmission,
                                     query_id: int,
                                     now_s: float = 0.0
                                     ) -> QueryAdmission:
        """Evaluate triggers against the obs registry's per-query series.

        The runner publishes each runtime counter as
        ``wm.query.<metric>{query=...}``; triggers read those series
        back here — no private-field plumbing between runner and
        manager.  Percentile triggers (``p95(query.latency_s)``) read
        the *pool's* histogram series instead, so they see the workload
        distribution rather than the one query at hand.  Rate triggers
        (``rate(faults.injected) ... OVER 60s``) read the cluster
        timeseries at virtual ``now_s`` — alert rules riding the same
        machinery.
        """
        if not self.active or not admission.pool:
            return admission
        pool = self.plan.pools[admission.pool]
        values: dict[str, float] = {}
        for trigger in pool.triggers:
            percentile = trigger.percentile
            rate_name = trigger.rate_metric
            regression_name = trigger.regression_metric
            if percentile is not None:
                p, histogram_name = percentile
                value = registry.percentile(histogram_name, p,
                                            pool=admission.pool)
            elif rate_name is not None:
                value = (self.timeseries.rate(
                    rate_name, trigger.over_s, now_s)
                    if self.timeseries is not None else None)
            elif regression_name is not None:
                value = (self.query_store.regression_factor(query_id)
                         if self.query_store is not None else None)
            else:
                value = registry.value(f"wm.query.{trigger.metric}",
                                       query=str(query_id))
            if value is not None:
                values[trigger.metric] = value
        try:
            result = self.check_triggers(admission, values)
        except WorkloadManagementError:
            if self.registry is not None and admission.killed:
                self.registry.counter("wm.trigger.kills",
                                      pool=pool.name).inc()
            self._record_event(pool, admission, values, query_id)
            raise
        if admission.moved_to is not None:
            if self.registry is not None:
                self.registry.counter("wm.trigger.moves",
                                      pool=pool.name).inc()
            self._record_event(pool, admission, values, query_id)
        return result

    def _record_event(self, pool: Pool, admission: QueryAdmission,
                      values: dict[str, float], query_id: int) -> None:
        """Append the fired trigger (if any) to the wm event log."""
        if self.event_log is None or admission.fired_trigger is None:
            return
        for trigger in pool.triggers:
            if trigger.name == admission.fired_trigger:
                self.event_log.record(
                    query_id=query_id, pool=pool.name, trigger=trigger,
                    value=values.get(trigger.metric, 0.0))
                return

    def check_triggers(self, admission: QueryAdmission,
                       metrics: dict[str, float]) -> QueryAdmission:
        """Evaluate the current pool's triggers against query metrics.

        MOVE re-homes the query (its remaining work runs with the target
        pool's capacity); KILL raises.
        """
        if not self.active or not admission.pool:
            return admission
        pool = self.plan.pools[admission.pool]
        for trigger in pool.triggers:
            value = metrics.get(trigger.metric)
            if value is None or value <= trigger.threshold:
                continue
            if trigger.action is TriggerAction.KILL:
                admission.killed = True
                admission.fired_trigger = trigger.name
                raise WorkloadManagementError(
                    f"query killed by trigger {trigger.name} "
                    f"({trigger.metric}={value:.2f} > "
                    f"{trigger.threshold})")
            target = self.plan.pools.get(trigger.target_pool)
            if target is None:
                raise WorkloadManagementError(
                    f"trigger {trigger.name} moves to unknown pool "
                    f"{trigger.target_pool}")
            admission.moved_to = target.name
            admission.pool = target.name
            admission.capacity_fraction = target.alloc_fraction
            admission.fired_threshold = trigger.threshold
            admission.fired_trigger = trigger.name
            break
        return admission
