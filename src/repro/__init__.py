"""repro — a pure-Python reproduction of Apache Hive 3.x.

From "Apache Hive: From MapReduce to Enterprise-grade Big Data
Warehousing" (SIGMOD 2019): a SQL warehouse with ACID snapshot-isolation
transactions over a base/delta file layout, a Calcite-style multi-stage
optimizer (join reordering, materialized-view rewriting, shared-work,
dynamic semijoin reduction), a Tez-style DAG runtime with an LLAP
cache/executor layer and workload management, plus federation to
external engines through storage handlers.

Quickstart::

    import repro

    server = repro.HiveServer2()
    session = server.connect()
    session.execute("CREATE TABLE t (a INT, b STRING)")
    session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    result = session.execute("SELECT b, COUNT(*) FROM t GROUP BY b")
    print(result.rows)
"""

from .lint.sanitizer import install_from_env as _install_sanitizer

# honor HIVE_SANITIZE=1 before any lock is constructed: every
# warehouse component built after this point gets instrumented
# primitives from the repro.common.sync seam
_install_sanitizer()

from .config import CostModelConf, HiveConf  # noqa: E402
from .errors import (AnalysisError, CatalogError, ExecutionError,
                     FederationError, HiveError, LockTimeoutError,
                     ParseError, ServiceError, TransactionError,
                     UnsupportedFeatureError, WorkloadManagementError,
                     WriteConflictError)
from .server import HiveServer2, QueryResult, Session
from .service import HiveService

__version__ = "1.0.0"


def connect(conf: HiveConf | None = None, database: str = "default",
            application: str | None = None) -> Session:
    """Spin up a fresh single-process warehouse and open a session."""
    return HiveServer2(conf).connect(database, application)


__all__ = [
    "connect", "HiveServer2", "HiveService", "Session", "QueryResult",
    "HiveConf",
    "CostModelConf", "HiveError", "ParseError",
    "UnsupportedFeatureError", "AnalysisError", "CatalogError",
    "TransactionError", "WriteConflictError", "LockTimeoutError",
    "ExecutionError", "FederationError", "ServiceError",
    "WorkloadManagementError",
    "__version__",
]
