"""Tez-style DAG runtime with a calibrated virtual-time cost model.

The logical plan is carved into a DAG of **vertices** at exchange
boundaries (joins, aggregations, sorts...), exactly how Hive's task
compiler produces Tez work (Section 2).  Fragments execute for real via
:mod:`repro.exec.operators`; the *latency* reported for the query is
virtual, computed from what actually happened (bytes read from disk vs
LLAP cache, rows processed, shuffle volumes) and the configured cluster
shape.  This is the substitution DESIGN.md documents: relative effects —
container start-up vs LLAP dispatch, cold vs warm JIT, vectorized vs
row-at-a-time CPU, cache hits vs disk — are charged explicitly, so the
experiment *shapes* survive even though absolute numbers are synthetic.

Dynamic semijoin reducers run before their target scans; shared-work
merging collapses vertices with identical digests so repeated
subexpressions are charged once (Section 4.5).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..config import HiveConf
from ..errors import ExecutionError
from ..exec.compile import KernelCache
from ..exec.expr_eval import EvalContext
from ..exec.operators import ExecutionContext, execute
from ..llap.workload import QueryAdmission, WorkloadManager
from ..obs.profile import OperatorProfile
from ..optimizer.planner import OptimizedPlan
from ..plan import relnodes as rel
from .scan import ScanExecutor, SemijoinFilter

_BREAKING = (rel.Join, rel.Aggregate, rel.Sort, rel.Limit, rel.Union,
             rel.SetOp, rel.Window)

#: split size for map-task parallelism (bytes per task)
SPLIT_BYTES = 64 << 20
#: rows per reducer task
ROWS_PER_REDUCER = 50_000


@dataclass
class Vertex:
    vertex_id: int
    name: str
    nodes: list[rel.RelNode]
    inputs: list[int] = field(default_factory=list)

    @property
    def root(self) -> rel.RelNode:
        return self.nodes[-1]

    @property
    def is_map(self) -> bool:
        return any(isinstance(n, (rel.TableScan, rel.Values))
                   for n in self.nodes)


@dataclass
class Dag:
    vertices: list[Vertex] = field(default_factory=list)

    def topological(self) -> list[Vertex]:
        order: list[Vertex] = []
        seen: set[int] = set()
        by_id = {v.vertex_id: v for v in self.vertices}

        def visit(v: Vertex):
            if v.vertex_id in seen:
                return
            seen.add(v.vertex_id)
            for i in v.inputs:
                visit(by_id[i])
            order.append(v)

        for v in self.vertices:
            visit(v)
        return order


def build_dag(root: rel.RelNode) -> Dag:
    """Carve the plan into vertices at exchange boundaries."""
    dag = Dag()
    counter = {"map": 0, "reducer": 0}

    def assign(node: rel.RelNode) -> int:
        if isinstance(node, (rel.Filter, rel.Project)):
            vid = assign(node.inputs[0])
            vertex = dag.vertices[vid]
            vertex.nodes.append(node)
            return vid
        if isinstance(node, (rel.TableScan, rel.Values)):
            counter["map"] += 1
            vertex = Vertex(len(dag.vertices),
                            f"Map {counter['map']}", [node])
            dag.vertices.append(vertex)
            return vertex.vertex_id
        if isinstance(node, _BREAKING):
            input_ids = [assign(child) for child in node.inputs]
            counter["reducer"] += 1
            vertex = Vertex(len(dag.vertices),
                            f"Reducer {counter['reducer']}", [node],
                            inputs=input_ids)
            dag.vertices.append(vertex)
            return vertex.vertex_id
        raise ExecutionError(
            f"cannot place node {type(node).__name__} in a DAG")

    assign(root)
    return dag


def merge_shared_vertices(dag: Dag, shared_digests: frozenset) -> Dag:
    """Collapse vertices whose fragments are identical (Section 4.5).

    Two vertices merge when their root digests are equal and that digest
    was flagged shared; consumers are repointed to the surviving vertex,
    so the work is executed — and charged — once.
    """
    if not shared_digests:
        return dag
    canonical: dict[str, int] = {}
    replacement: dict[int, int] = {}
    for vertex in dag.vertices:
        digest = vertex.root.digest
        if digest in shared_digests:
            if digest in canonical:
                replacement[vertex.vertex_id] = canonical[digest]
            else:
                canonical[digest] = vertex.vertex_id
    if not replacement:
        return dag
    survivors = [v for v in dag.vertices
                 if v.vertex_id not in replacement]
    for vertex in survivors:
        vertex.inputs = [replacement.get(i, i) for i in vertex.inputs]
    return Dag(survivors)


# --------------------------------------------------------------------------- #
# metrics

@dataclass
class VertexMetrics:
    name: str
    vertex_id: int = 0
    tasks: int = 0
    rows: int = 0
    startup_s: float = 0.0
    io_s: float = 0.0
    cpu_s: float = 0.0
    shuffle_s: float = 0.0
    external_s: float = 0.0
    start_s: float = 0.0
    finish_s: float = 0.0
    shuffle_bytes: int = 0
    #: modeled per-task durations (hash-partitioned key distribution);
    #: uniform when no shuffle-key histogram was observed
    task_durations: list[float] = field(default_factory=list)
    #: max-task / median-task duration (1.0 = perfectly balanced)
    skew_factor: float = 1.0
    #: True when the slowest task exceeds the configured skew threshold
    straggler: bool = False
    #: injected task-attempt failures that were retried (repro.faults)
    failed_attempts: int = 0
    #: backup attempts launched by speculative execution
    speculative_tasks: int = 0
    #: extra vertex latency from injected failures: re-run time plus
    #: exponential backoff, net of what speculation clawed back
    retry_s: float = 0.0
    #: extra cluster work (re-run + backup attempts) for the busy floor;
    #: not a sys.vertex_log column
    retry_work_s: float = 0.0
    #: per-operator runtime rows (repro.obs.OperatorProfile)
    operators: list = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return (self.startup_s + self.io_s + self.cpu_s
                + self.shuffle_s + self.external_s + self.retry_s)

    @property
    def attempts(self) -> int:
        """Total task attempts: one per task plus injected retries and
        speculative backups."""
        return self.tasks + self.failed_attempts + self.speculative_tasks

    @property
    def max_task_s(self) -> float:
        return max(self.task_durations, default=0.0)

    @property
    def median_task_s(self) -> float:
        if not self.task_durations:
            return 0.0
        ordered = sorted(self.task_durations)
        return ordered[len(ordered) // 2]

    def as_row(self, query_id: int) -> tuple:
        """Row shape of ``sys.vertex_log`` (see obs.systables)."""
        return (query_id, self.vertex_id, self.name, self.tasks,
                self.rows, self.startup_s, self.io_s, self.cpu_s,
                self.shuffle_s, self.external_s, self.duration_s,
                self.start_s, self.finish_s, self.shuffle_bytes,
                self.max_task_s, self.median_task_s, self.skew_factor,
                self.straggler, self.attempts, self.failed_attempts,
                self.speculative_tasks, self.retry_s)


@dataclass
class QueryMetrics:
    """Virtual-time breakdown for one query execution."""

    total_s: float = 0.0
    compile_s: float = 0.0
    queue_s: float = 0.0
    startup_s: float = 0.0
    io_s: float = 0.0
    cpu_s: float = 0.0
    shuffle_s: float = 0.0
    external_s: float = 0.0
    rows_produced: int = 0
    disk_bytes: int = 0
    cache_bytes: int = 0
    cache_hit_fraction: float = 0.0
    #: injected-failure latency summed over vertices (repro.faults)
    retry_s: float = 0.0
    #: container re-allocation charged when an LLAP daemon died mid-query
    failover_s: float = 0.0
    vertices: list[VertexMetrics] = field(default_factory=list)
    pool: str = ""
    moved_to_pool: Optional[str] = None


# --------------------------------------------------------------------------- #
# the runner

class TezRunner:
    """Executes an optimized plan and accounts virtual time.

    When an observability registry (:class:`repro.obs.MetricsRegistry`)
    is attached, the runner publishes per-query runtime counters into it
    and the workload-manager triggers read them back from the registry —
    the counters are the interface, not the runner's internals.
    """

    def __init__(self, conf: HiveConf,
                 workload_manager: Optional[WorkloadManager] = None,
                 registry=None, faults=None, live=None):
        self.conf = conf
        self.workload_manager = workload_manager
        self.registry = registry
        #: optional repro.faults.FaultRegistry; injected task failures,
        #: slow nodes and daemon deaths are charged into virtual time
        self.faults = faults
        #: optional repro.obs.LiveQueryRegistry; the runner publishes
        #: phase + vertex progress into it and honours kill flags at
        #: the inter-vertex cancellation checkpoints
        self.live = live

    # -- public ------------------------------------------------------------- #
    def run(self, plan: OptimizedPlan, scan_executor: ScanExecutor,
            application: Optional[str] = None,
            arrival_s: float = 0.0,
            hash_join_memory_rows: Optional[int] = None,
            profile=None, trace=None, query_id: int = 0,
            compile_overhead_s: Optional[float] = None,
            eval_ctx: Optional[EvalContext] = None,
            kernels: Optional[KernelCache] = None):
        """Execute and return ``(VectorBatch, QueryMetrics, ctx)``.

        ``compile_overhead_s`` overrides the cost model's fixed compile
        charge — the serving layer's plan cache passes its reduced hit
        cost, since a cached statement skips parse/analyze/optimize.

        ``eval_ctx`` pins the statement's virtual time and RAND salt;
        ``kernels`` is the compiled-kernel cache to (re)use — the plan
        cache passes its entry's cache so repeated fingerprints skip
        expression compilation.  Absent one, an ephemeral cache still
        compiles each expression once per query.
        """
        if kernels is None and self.conf.vectorized_compile:
            kernels = KernelCache()
        ctx = ExecutionContext(
            scan_executor=scan_executor,
            semijoin_filters=scan_executor.semijoin_filters,
            hash_join_memory_rows=hash_join_memory_rows,
            memo_digests=self._memo_digests(plan),
            profile=profile,
            eval_ctx=(eval_ctx if eval_ctx is not None
                      else EvalContext(query_id=query_id)),
            kernels=kernels,
            fuse=self.conf.vectorized_fusion)

        # admission control (Section 5.2)
        admission = QueryAdmission(pool="", capacity_fraction=1.0)
        if self.live is not None:
            self.live.update(query_id, phase="queued")
        if self.workload_manager is not None \
                and self.workload_manager.active and self.conf.llap_enabled:
            admission = self.workload_manager.admit(application, arrival_s)
        if self.live is not None:
            self.live.update(query_id, phase="running",
                             pool=admission.pool or "unmanaged")

        try:
            # run dynamic semijoin reducers first (Section 4.6)
            for reducer in plan.semijoin_reducers:
                source = execute(reducer.source, ctx)
                vector = source.vectors[reducer.key_ordinal]
                scan_executor.semijoin_filters[reducer.reducer_id] = \
                    SemijoinFilter.from_vector(
                        reducer.target_column, vector,
                        self.conf.semijoin_bloom_fpp)

            result = execute(plan.root, ctx)
        except ExecutionError as failure:
            # expose runtime statistics captured so far — Section 4.2's
            # reoptimize strategy re-plans with these
            failure.runtime_stats = dict(ctx.runtime_stats)
            raise

        metrics = self._account(plan, ctx, scan_executor, admission,
                                profile=profile, query_id=query_id,
                                compile_overhead_s=compile_overhead_s)
        metrics.rows_produced = result.num_rows
        metrics.queue_s = admission.queue_delay_s
        metrics.pool = admission.pool
        metrics.total_s += admission.queue_delay_s

        if self.workload_manager is not None \
                and self.workload_manager.active:
            self._apply_triggers(admission, metrics, query_id,
                                 now_s=arrival_s + metrics.total_s)
            self.workload_manager.complete(
                admission, arrival_s + metrics.total_s)
        if profile is not None:
            profile.scan_metrics.update(scan_executor.metrics)
            profile.metrics = metrics
        if trace is not None:
            self._trace_vertices(trace, metrics, admission)
        self._publish(metrics)
        return result, metrics, ctx

    def _memo_digests(self, plan: OptimizedPlan) -> frozenset:
        """Always memoize repeated digests for execution efficiency; the

        *charging* of shared work is controlled in vertex merging."""
        from collections import Counter
        counts = Counter(n.digest for n in rel.walk(plan.root))
        repeated = {d for d, c in counts.items() if c > 1}
        repeated |= {r.source.digest for r in plan.semijoin_reducers}
        return frozenset(repeated)

    # -- accounting ---------------------------------------------------------- #
    def _account(self, plan: OptimizedPlan, ctx: ExecutionContext,
                 scan_executor: ScanExecutor,
                 admission: QueryAdmission,
                 profile=None, query_id: int = 0,
                 compile_overhead_s: Optional[float] = None
                 ) -> QueryMetrics:
        conf = self.conf
        cost = conf.cost
        dag = build_dag(plan.root)
        if conf.shared_work_optimization:
            dag = merge_shared_vertices(dag, plan.shared_digests)
        # reducer source subtrees always merge with their join branch
        dag = merge_shared_vertices(
            dag, frozenset(r.source.digest
                           for r in plan.semijoin_reducers))

        llap = conf.llap_enabled
        live_nodes = conf.num_nodes
        failover_s = self._inject_node_death(scan_executor, query_id)
        if failover_s > 0.0:
            live_nodes = max(1, live_nodes - 1)
        slots_total = live_nodes * (
            conf.llap_executors_per_daemon if llap else conf.cores_per_node)
        slots = max(1, int(slots_total * admission.capacity_fraction))
        cpu_per_row = (cost.vector_cpu_s if conf.vectorized_execution
                       else cost.row_cpu_s)
        jit = 1.0 if llap or conf.container_reuse \
            else cost.jit_cold_multiplier

        metrics = QueryMetrics(
            compile_s=(cost.compile_overhead_s
                       if compile_overhead_s is None
                       else compile_overhead_s))
        finish: dict[int, float] = {}
        by_id = {v.vertex_id: v for v in dag.vertices}
        containers_started = False
        total_work_s = 0.0

        scale = cost.data_scale
        ordered = list(dag.topological())
        vertices_done = 0
        tasks_done = 0
        tasks_total = 0
        for vertex in ordered:
            if self.live is not None:
                # inter-vertex cancellation checkpoint: raises
                # QueryKilledError when KILL QUERY flagged this query
                self.live.checkpoint(query_id)
            vm = VertexMetrics(name=vertex.name,
                               vertex_id=vertex.vertex_id)
            rows = 0
            disk = cache = 0
            files = 0
            merge_rows = 0
            #: (node, work_rows, scan_bytes) per plan node in the vertex,
            #: for the per-operator virtual-time attribution below
            node_work: list[list] = []
            for node in vertex.nodes:
                node_rows = 0
                node_bytes = 0
                if isinstance(node, rel.TableScan):
                    # decode work is the raw (pre-filter) row count
                    scan_metrics = scan_executor.metrics.get(node.digest)
                    if scan_metrics is not None:
                        disk += scan_metrics.disk_bytes
                        cache += scan_metrics.cache_bytes
                        node_rows = scan_metrics.raw_rows
                        node_bytes = (scan_metrics.disk_bytes
                                      + scan_metrics.cache_bytes)
                        rows += node_rows
                        files += scan_metrics.files_opened
                        vm.external_s += scan_metrics.external_time_s
                        if scan_metrics.delete_keys > 0:
                            # merge-on-read anti-join work (Section 3.2)
                            merge_rows += scan_metrics.raw_rows
                else:
                    node_rows = ctx.runtime_stats.get(node.digest, 0)
                    rows += node_rows
                node_work.append([node, node_rows, node_bytes])
            if not vertex.is_map:
                # reducers also process every row their inputs emit
                # (join probes, aggregation input, sort input); the
                # vertex root does that processing
                input_rows = 0
                for input_id in vertex.inputs:
                    source = by_id[input_id]
                    input_rows += ctx.runtime_stats.get(
                        source.root.digest, 0)
                rows += input_rows
                for entry in node_work:
                    if entry[0] is vertex.root:
                        entry[1] += input_rows
            rows = int(rows * scale)
            disk = int(disk * scale)
            cache = int(cache * scale)
            vm.rows = rows

            # task parallelism: maps get one task per split, with at
            # least one per input file (partition directories split
            # naturally); reducers scale with row volume
            if vertex.is_map:
                tasks = max(1, (disk + cache) // SPLIT_BYTES + 1, files)
            else:
                tasks = max(1, rows // ROWS_PER_REDUCER + 1)
            tasks = min(tasks, slots)
            vm.tasks = int(tasks)
            waves = 1  # tasks are clamped to available slots

            # startup: a query's containers are allocated from YARN once,
            # up front (the Section 5 latency bottleneck); LLAP dispatches
            # fragments to long-running executors instead
            if llap:
                vm.startup_s = waves * cost.llap_dispatch_s
            elif not containers_started:
                vm.startup_s = waves * (cost.container_startup_s
                                        + cost.task_setup_s)
                containers_started = True
            else:
                vm.startup_s = waves * cost.task_setup_s

            # IO: disk vs cache throughput, spread over this vertex's
            # tasks, plus per-file open overhead (delta pile-ups hurt)
            parallel = max(1, vm.tasks)
            vm.io_s = (disk / cost.disk_bytes_per_s
                       + cache / cost.cache_bytes_per_s) / parallel \
                + files * cost.file_open_s / parallel
            # CPU, plus row-at-a-time merge-on-read work where delete
            # deltas had to be anti-joined
            vm.cpu_s = (rows * cpu_per_row * jit
                        + merge_rows * scale * cost.merge_row_s) \
                / parallel
            # shuffle: bytes crossing edges into this vertex
            shuffle_bytes = 0
            for input_id in vertex.inputs:
                source = by_id[input_id]
                out_rows = ctx.runtime_stats.get(source.root.digest, 0)
                shuffle_bytes += out_rows * \
                    source.root.schema.row_width_bytes()
            vm.shuffle_s = shuffle_bytes * scale \
                / cost.network_bytes_per_s / max(1, parallel)
            vm.shuffle_bytes = int(shuffle_bytes * scale)

            self._model_tasks(vm, vertex, ctx)
            self._apply_faults(vm, vertex, query_id, llap)
            self._attribute_operators(vm, vertex, node_work, profile)

            start = max((finish[i] for i in vertex.inputs), default=0.0)
            vm.start_s = start
            vm.finish_s = start + vm.duration_s
            finish[vertex.vertex_id] = vm.finish_s

            total_work_s += (vm.io_s + vm.cpu_s + vm.shuffle_s) \
                * max(1, vm.tasks) + vm.retry_work_s
            metrics.retry_s += vm.retry_s
            vertices_done += 1
            tasks_total += vm.tasks
            tasks_done += vm.tasks
            if self.live is not None:
                self.live.vertex_progress(
                    query_id, vertices_done, len(ordered),
                    tasks_done, tasks_total,
                    elapsed_s=vm.finish_s,
                    pool_p50=self._pool_p50(admission.pool))
            metrics.vertices.append(vm)
            metrics.startup_s += vm.startup_s
            metrics.io_s += vm.io_s
            metrics.cpu_s += vm.cpu_s
            metrics.shuffle_s += vm.shuffle_s
            metrics.external_s += vm.external_s
            metrics.disk_bytes += disk
            metrics.cache_bytes += cache

        critical_path = max(finish.values(), default=0.0)
        # cluster capacity floor: concurrent vertices contend for slots,
        # so the query can never finish faster than total work / slots
        # (this is what makes recomputing shared subexpressions — q88
        # without the shared-work optimizer — visibly expensive)
        busy_floor = total_work_s / slots + metrics.startup_s
        metrics.failover_s = failover_s
        metrics.total_s = metrics.compile_s + failover_s \
            + max(critical_path, busy_floor)
        total_bytes = metrics.disk_bytes + metrics.cache_bytes
        metrics.cache_hit_fraction = (metrics.cache_bytes / total_bytes
                                      if total_bytes else 0.0)
        return metrics

    def _pool_p50(self, pool: str) -> Optional[float]:
        """The duration model's p50 for this pool (ETA baseline)."""
        if self.registry is None:
            return None
        return self.registry.percentile("query.latency_s", 50,
                                        pool=pool or "unmanaged")

    def _model_tasks(self, vm: VertexMetrics, vertex: Vertex,
                     ctx: ExecutionContext) -> None:
        """Model the vertex's per-task duration distribution.

        ``vm.io_s``/``cpu_s``/``shuffle_s`` are already per-task shares
        under perfect balance (divided by ``parallel`` above).  IO and
        shuffle stay split-balanced — splits are sized evenly — but CPU
        follows the shuffle-key histogram captured at execution time
        when one exists: hash partitioning sends all rows of one key to
        one task, so a hot key concentrates CPU on a single task.  The
        skew factor (max task / median task) and straggler flag fall
        out of the distribution; they are diagnostics and do not change
        the vertex's accounted totals.
        """
        tasks = max(1, vm.tasks)
        even = vm.io_s + vm.shuffle_s + vm.external_s
        # the exchange-consuming operator (join/aggregate) is the first
        # node of a reducer vertex; trailing projects/filters ride along
        counts = None
        for node in vertex.nodes:
            counts = ctx.key_counts.get(node.digest)
            if counts:
                break
        if tasks <= 1 or not counts:
            vm.task_durations = [even + vm.cpu_s] * tasks
        else:
            per_task = [0.0] * tasks
            total = float(sum(counts.values()))
            for key, weight in counts.items():
                slot = zlib.crc32(repr(key).encode()) % tasks
                per_task[slot] += weight
            cpu_work = vm.cpu_s * tasks  # total CPU across all tasks
            vm.task_durations = [even + cpu_work * share / total
                                 for share in per_task]
        median = vm.median_task_s
        vm.skew_factor = vm.max_task_s / median if median > 0 else 1.0
        vm.straggler = (tasks > 1 and vm.skew_factor
                        >= self.conf.straggler_skew_threshold)

    # -- fault injection & recovery ------------------------------------------ #
    def _inject_node_death(self, scan_executor: ScanExecutor,
                           query_id: int) -> float:
        """LLAP daemon death (Section 5 failover): the dead node's cache
        chunks and cached footers are invalidated, one node's executors
        drop out of the slot pool, and the displaced fragments fall back
        to fresh Tez containers whose start-up is re-charged.

        Returns the failover charge in virtual seconds (0.0 = no death).
        """
        faults = self.faults
        conf = self.conf
        if faults is None or not conf.llap_enabled \
                or conf.faults_node_fail_rate <= 0.0:
            return 0.0
        if not faults.decide("node.death", query_id,
                             conf.faults_node_fail_rate):
            return 0.0
        node = faults.pick("node.death.which", query_id, conf.num_nodes)
        dropped = 0
        factory = getattr(scan_executor, "reader_factory", None)
        if factory is not None and hasattr(factory, "invalidate_node"):
            dropped = factory.invalidate_node(node, conf.num_nodes)
        cost = conf.cost
        failover_s = cost.container_startup_s + cost.task_setup_s
        faults.record("node.death", f"node {node}", query_id=query_id,
                      delay_s=failover_s,
                      detail=f"invalidated {dropped} cache chunks, "
                             "fell back to containers")
        return failover_s

    def _apply_faults(self, vm: VertexMetrics, vertex: Vertex,
                      query_id: int, llap: bool) -> None:
        """Inject task failures and slow nodes into the modeled task
        distribution, charging recovery into virtual time.

        Every failed attempt re-runs the task (its full modeled duration)
        after an exponential backoff; the final attempt always succeeds —
        the scheduler blacklists the flaky node — so injected faults delay
        queries but never change their results.  Speculative execution
        then caps the slowest *injected* straggler at roughly a balanced
        re-run launched when the skew is detected; natural (hot-key) skew
        stays diagnostic-only, exactly as in the skew model above, so
        speculation is a no-op in fault-free runs.

        Decisions key on the vertex's root digest + task index, not the
        query id, so identical workloads see identical schedules.
        """
        faults = self.faults
        conf = self.conf
        if faults is None:
            return
        fail_rate = conf.faults_task_fail_rate
        slow_rate = conf.faults_slow_node_rate
        if fail_rate <= 0.0 and slow_rate <= 0.0:
            return
        digest = vertex.root.digest
        base = list(vm.task_durations)
        natural_max = max(base, default=0.0)
        durations = list(base)
        for index, task_s in enumerate(base):
            key = (digest, index)
            if slow_rate > 0.0 and faults.decide("task.slow", key,
                                                 slow_rate):
                slow_extra = task_s * (conf.faults_slow_node_multiplier
                                       - 1.0)
                durations[index] += slow_extra
                vm.retry_work_s += slow_extra
                faults.record("task.slow", f"{vm.name}[{index}]",
                              query_id=query_id, delay_s=slow_extra,
                              detail="slow node "
                                     f"x{conf.faults_slow_node_multiplier:g}")
            failures = faults.failed_attempts(
                "task.fail", key, fail_rate, conf.task_max_attempts - 1)
            if failures:
                backoff = sum(conf.task_retry_backoff_s * 2.0 ** n
                              for n in range(failures))
                durations[index] += failures * task_s + backoff
                vm.retry_work_s += failures * task_s
                vm.failed_attempts += failures
                faults.record("task.fail", f"{vm.name}[{index}]",
                              query_id=query_id, attempts=failures,
                              delay_s=failures * task_s + backoff,
                              detail=f"{failures} failed attempts, "
                                     f"backoff {backoff:.3f}s")
        self._speculate(vm, durations, base, query_id, llap)
        vm.task_durations = durations
        vm.retry_s = max(0.0, max(durations, default=0.0) - natural_max)
        median = vm.median_task_s
        vm.skew_factor = vm.max_task_s / median if median > 0 else 1.0
        vm.straggler = (vm.tasks > 1 and vm.skew_factor
                        >= conf.straggler_skew_threshold)

    def _speculate(self, vm: VertexMetrics, durations: list[float],
                   base: list[float], query_id: int, llap: bool) -> None:
        """Launch a backup attempt for an injected straggler.

        The backup starts when the straggler is flagged (around the
        median finish time) and re-runs the task at its fault-free
        duration, so the vertex finishes at
        ``median + base duration + dispatch`` if that beats waiting.
        """
        conf = self.conf
        if not conf.speculative_execution or len(durations) <= 1:
            return
        worst = max(range(len(durations)), key=durations.__getitem__)
        if durations[worst] <= base[worst]:
            return  # slowest task was not injected: natural skew only
        median = sorted(durations)[len(durations) // 2]
        if median <= 0 or durations[worst] / median \
                < conf.straggler_skew_threshold:
            return
        dispatch = (conf.cost.llap_dispatch_s if llap
                    else conf.cost.task_setup_s)
        capped = median + base[worst] + dispatch
        if capped >= durations[worst]:
            return
        saved = durations[worst] - capped
        durations[worst] = capped
        vm.speculative_tasks += 1
        vm.retry_work_s += base[worst]
        self.faults.record("speculation", f"{vm.name}[{worst}]",
                           query_id=query_id,
                           detail=f"backup attempt saved {saved:.3f}s")

    def _attribute_operators(self, vm: VertexMetrics, vertex: Vertex,
                             node_work: list, profile) -> None:
        """Split the vertex's virtual time across its plan nodes.

        CPU is attributed proportionally to each operator's processed
        rows; IO goes to scans proportionally to bytes; shuffle time
        lands on the vertex root (the exchange consumer).  Wall times,
        row counts and batch counts come from the execution profile
        when one was attached.
        """
        if profile is None:
            return
        total_rows = sum(entry[1] for entry in node_work) or 1
        total_bytes = sum(entry[2] for entry in node_work) or 1
        for node, work_rows, node_bytes in node_work:
            virtual = vm.cpu_s * work_rows / total_rows
            if node_bytes:
                virtual += vm.io_s * node_bytes / total_bytes
            if node is vertex.root:
                virtual += vm.shuffle_s
            op = profile.operator_profile(node.digest, virtual_s=virtual)
            if op.operator == "?":
                op.operator = type(node).__name__
            vm.operators.append(op)

    def _trace_vertices(self, trace, metrics: QueryMetrics,
                        admission: QueryAdmission) -> None:
        """Attach the DAG schedule as child spans of the trace."""
        if admission.queue_delay_s:
            trace.add("admission", virtual_s=admission.queue_delay_s,
                      pool=admission.pool)
        for vm in metrics.vertices:
            recovery = {}
            if vm.failed_attempts or vm.speculative_tasks:
                recovery = {"attempts": vm.attempts,
                            "retry_s": round(vm.retry_s, 4)}
            vspan = trace.add(f"vertex {vm.name}",
                              virtual_s=vm.duration_s,
                              tasks=vm.tasks, rows=vm.rows,
                              start_s=round(vm.start_s, 4),
                              finish_s=round(vm.finish_s, 4),
                              skew_factor=round(vm.skew_factor, 3),
                              straggler=vm.straggler, **recovery)
            for op in vm.operators:
                child = vspan.child(f"op {op.operator}",
                                    virtual_s=op.virtual_s,
                                    rows_in=op.rows_in,
                                    rows_out=op.rows_out,
                                    batches=op.batches)
                child.wall_s = op.wall_s
                child.start_s = vspan.start_s

    def _publish(self, metrics: QueryMetrics) -> None:
        """Mirror the run's totals into the observability registry."""
        if self.registry is None:
            return
        reg = self.registry
        reg.counter("runtime.queries").inc()
        reg.counter("runtime.rows_produced").inc(metrics.rows_produced)
        reg.counter("runtime.disk_bytes").inc(metrics.disk_bytes)
        reg.counter("runtime.cache_bytes").inc(metrics.cache_bytes)
        for component in ("startup", "io", "cpu", "shuffle",
                          "external", "queue"):
            reg.counter(f"runtime.{component}_s").inc(
                getattr(metrics, f"{component}_s"))
        # fault-recovery series only appear once injection happened
        if metrics.retry_s > 0.0:
            reg.counter("runtime.retry_s").inc(metrics.retry_s)
        if metrics.failover_s > 0.0:
            reg.counter("runtime.failover_s").inc(metrics.failover_s)
        failed = sum(vm.failed_attempts for vm in metrics.vertices)
        if failed:
            reg.counter("runtime.failed_task_attempts").inc(failed)
        speculative = sum(vm.speculative_tasks
                          for vm in metrics.vertices)
        if speculative:
            reg.counter("runtime.speculative_tasks").inc(speculative)

    def _apply_triggers(self, admission: QueryAdmission,
                        metrics: QueryMetrics,
                        query_id: int = 0,
                        now_s: float = 0.0) -> None:
        """Evaluate WM triggers post-hoc over the virtual runtime.

        The runtime counters are published as per-query series in the
        obs registry, and the workload manager reads them back from
        there (Section 5.2: triggers act on runtime counters).  A MOVE
        re-prices the time spent beyond the trigger threshold at the
        target pool's capacity; a KILL raises.
        """
        wm = self.workload_manager
        old_fraction = admission.capacity_fraction
        registry = self.registry
        if registry is None:
            from ..obs.registry import MetricsRegistry
            registry = MetricsRegistry()
        labels = {"query": str(query_id)}
        published = ("total_runtime", "elapsed", "rows_produced")
        for metric, value in (
                ("total_runtime", metrics.total_s),
                ("elapsed", metrics.total_s),
                ("rows_produced", float(metrics.rows_produced))):
            registry.gauge(f"wm.query.{metric}", **labels).set(value)
        try:
            wm.check_triggers_from_registry(registry, admission,
                                            query_id, now_s=now_s)
        finally:
            # per-query series are scratch space; don't accumulate them
            for metric in published:
                registry.drop(f"wm.query.{metric}", **labels)
        if admission.moved_to is not None:
            metrics.moved_to_pool = admission.moved_to
            new_fraction = max(admission.capacity_fraction, 1e-3)
            threshold = min(metrics.total_s, admission.fired_threshold)
            overflow = metrics.total_s - threshold
            if overflow > 0 and new_fraction < old_fraction:
                metrics.total_s = threshold + overflow * (
                    old_fraction / new_fraction)
