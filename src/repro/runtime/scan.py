"""Scan execution: the bridge between plans and storage.

Routes a :class:`~repro.plan.relnodes.TableScan` to the right data path:

* **federated** scans go to the registered storage handler — either a
  fully pushed-down query (Section 6.2) or a plain handler read,
* **ACID** tables go through the snapshot reader bound to the query's
  ValidWriteIdList (Section 3.2),
* **plain** tables read their files directly,

always through the active reader factory (direct or LLAP I/O elevator),
applying pushed sargs for row-group pruning, appending partition-column
constants, and applying dynamic semijoin filters (range + Bloom,
Section 4.6) as data streams out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..acid.reader import AcidReader
from ..common.bloom import BloomFilter
from ..common.vector import ColumnVector, VectorBatch
from ..errors import ExecutionError, FederationError
from ..formats.orc import SargPredicate
from ..fs import SimFileSystem
from ..metastore.catalog import TableDescriptor
from ..metastore.hms import HiveMetastore
from ..metastore.txn import ValidWriteIdList
from ..plan import relnodes as rel
from ..plan import rexnodes as rex


@dataclass
class SemijoinFilter:
    """Runtime artifact of a semijoin reducer: range + Bloom filter."""

    column: str
    min_value: object
    max_value: object
    bloom: BloomFilter
    build_rows: int = 0

    @classmethod
    def from_vector(cls, column_name: str, vector: ColumnVector,
                    fpp: float) -> "SemijoinFilter":
        values = {vector.data[i].item()
                  if hasattr(vector.data[i], "item") else vector.data[i]
                  for i in range(len(vector)) if not vector.nulls[i]}
        bloom = BloomFilter(max(len(values), 8), fpp)
        bloom.add_all(values)
        lo = min(values) if values else None
        hi = max(values) if values else None
        return cls(column_name, lo, hi, bloom, len(values))


@dataclass
class ScanMetrics:
    """Per-scan IO accounting consumed by the cost model."""

    table: str = ""
    rows: int = 0
    raw_rows: int = 0                 # before semijoin filtering
    disk_bytes: int = 0
    cache_bytes: int = 0
    metadata_bytes: int = 0
    files_opened: int = 0
    row_groups_total: int = 0
    row_groups_read: int = 0
    partitions_total: int = 0
    partitions_read: int = 0
    delete_keys: int = 0
    external_time_s: float = 0.0
    semijoin_filtered_rows: int = 0
    #: injected read errors that were retried (repro.faults); the
    #: re-read bytes are already folded into disk_bytes
    io_retries: int = 0

    def merge(self, other: "ScanMetrics") -> None:
        self.rows += other.rows
        self.raw_rows += other.raw_rows
        self.disk_bytes += other.disk_bytes
        self.cache_bytes += other.cache_bytes
        self.metadata_bytes += other.metadata_bytes
        self.files_opened += other.files_opened
        self.row_groups_total += other.row_groups_total
        self.row_groups_read += other.row_groups_read
        self.partitions_total += other.partitions_total
        self.partitions_read += other.partitions_read
        self.delete_keys += other.delete_keys
        self.external_time_s += other.external_time_s
        self.semijoin_filtered_rows += other.semijoin_filtered_rows
        self.io_retries += other.io_retries


class ScanExecutor:
    """Callable plugged into the ExecutionContext as ``scan_executor``."""

    def __init__(self, hms: HiveMetastore, fs: SimFileSystem,
                 reader_factory,
                 valid_write_ids: dict[str, ValidWriteIdList],
                 semijoin_filters: dict[str, SemijoinFilter],
                 storage_handlers: Optional[dict] = None,
                 bloom_fpp: float = 0.05,
                 registry=None, trace=None):
        self.hms = hms
        self.fs = fs
        self.reader_factory = reader_factory
        self.valid_write_ids = valid_write_ids
        self.semijoin_filters = semijoin_filters
        self.storage_handlers = storage_handlers or {}
        self.bloom_fpp = bloom_fpp
        #: optional observability hooks (repro.obs)
        self.registry = registry
        self.trace = trace
        #: scan digest -> metrics, read by the DAG cost model
        self.metrics: dict[str, ScanMetrics] = {}

    # ------------------------------------------------------------------ #
    def __call__(self, node: rel.TableScan) -> VectorBatch:
        metrics = ScanMetrics(table=node.table_name)
        table = self.hms.get_table(node.table_name)
        if node.pushed_query is not None:
            batch = self._pushed(node, table, metrics)
        elif table.storage_handler is not None:
            batch = self._federated(node, table, metrics)
        else:
            batch = self._native(node, table, metrics)
        metrics.raw_rows = batch.num_rows
        batch = self._apply_semijoin_filters(node, batch, metrics)
        metrics.rows = batch.num_rows
        existing = self.metrics.get(node.digest)
        if existing is None:
            self.metrics[node.digest] = metrics
        else:
            existing.merge(metrics)
        self._observe(node, metrics)
        return batch

    def _observe(self, node: rel.TableScan,
                 metrics: ScanMetrics) -> None:
        """Publish one scan's IO accounting to the obs layer."""
        if self.registry is not None:
            reg = self.registry
            labels = {"table": node.table_name}
            reg.counter("scan.rows", **labels).inc(metrics.rows)
            reg.counter("scan.disk_bytes",
                        **labels).inc(metrics.disk_bytes)
            reg.counter("scan.cache_bytes",
                        **labels).inc(metrics.cache_bytes)
            reg.counter("scan.row_groups_pruned", **labels).inc(
                metrics.row_groups_total - metrics.row_groups_read)
            reg.counter("scan.partitions_pruned", **labels).inc(
                metrics.partitions_total - metrics.partitions_read)
            if metrics.semijoin_filtered_rows:
                reg.counter("scan.semijoin_filtered_rows", **labels).inc(
                    metrics.semijoin_filtered_rows)
            if metrics.io_retries:
                reg.counter("scan.io_retries",
                            **labels).inc(metrics.io_retries)
        if self.trace is not None:
            self.trace.add(
                f"scan {node.table_name}",
                virtual_s=metrics.external_time_s,
                rows=metrics.rows, disk_bytes=metrics.disk_bytes,
                cache_bytes=metrics.cache_bytes,
                partitions=f"{metrics.partitions_read}"
                           f"/{metrics.partitions_total}",
                row_groups=f"{metrics.row_groups_read}"
                           f"/{metrics.row_groups_total}")

    # -- federated paths ----------------------------------------------------- #
    def _handler(self, table: TableDescriptor):
        handler = self.storage_handlers.get(table.storage_handler)
        if handler is None:
            raise FederationError(
                f"no storage handler registered for "
                f"{table.storage_handler!r}")
        return handler

    def _pushed(self, node: rel.TableScan, table: TableDescriptor,
                metrics: ScanMetrics) -> VectorBatch:
        handler = self._handler(table)
        rows, external_s = handler.execute_pushed(table, node.pushed_query)
        metrics.external_time_s += external_s
        return VectorBatch.from_rows(node.schema, rows)

    def _federated(self, node: rel.TableScan, table: TableDescriptor,
                   metrics: ScanMetrics) -> VectorBatch:
        handler = self._handler(table)
        columns = [c.name for c in node.schema]
        rows, external_s = handler.scan_table(table, columns)
        metrics.external_time_s += external_s
        return VectorBatch.from_rows(node.schema, rows)

    # -- native path ------------------------------------------------------------ #
    def _native(self, node: rel.TableScan, table: TableDescriptor,
                metrics: ScanMetrics) -> VectorBatch:
        reader = AcidReader(self.fs, self.reader_factory)
        data_names = [c.name for c in node.schema
                      if c.name in table.schema]
        part_names = [c.name for c in node.schema
                      if c.name not in table.schema]
        sargs = self._convert_sargs(node)
        sargs += self._semijoin_sargs(node)

        if table.is_partitioned:
            descriptors = table.list_partitions()
            metrics.partitions_total = len(descriptors)
            if node.pruned_partitions is not None:
                wanted = set(node.pruned_partitions)
                descriptors = [d for d in descriptors
                               if d.values in wanted]
            metrics.partitions_read = len(descriptors)
            locations = [(d.values, d.location) for d in descriptors]
        else:
            locations = [((), table.location)]
            metrics.partitions_total = metrics.partitions_read = 1

        batches: list[VectorBatch] = []
        for values, location in locations:
            if not self.fs.exists(location):
                continue
            io_before = self._io_snapshot()
            if table.is_acid:
                valid = self.valid_write_ids.get(table.qualified_name)
                if valid is None:
                    raise ExecutionError(
                        f"no snapshot bound for ACID table "
                        f"{table.qualified_name}")
                batch, read_metrics = reader.read(
                    location, valid, columns=data_names or None,
                    sargs=sargs)
                metrics.delete_keys += read_metrics.delete_keys
            else:
                batch, read_metrics = reader.read_plain(
                    location, table.schema, columns=data_names or None,
                    sargs=sargs, file_format=table.file_format)
            self._account_io(io_before, read_metrics, metrics)
            if batch.num_rows == 0 and len(batch.schema) == 0:
                continue
            batch = self._with_partition_columns(
                node, table, batch, values, part_names)
            batches.append(batch)
        if not batches:
            return VectorBatch.empty(node.schema)
        # align column order to the scan schema
        aligned = []
        for batch in batches:
            idx = [batch.schema.index_of(c.name) for c in node.schema]
            aligned.append(batch.project(idx, node.schema))
        return VectorBatch.concat(node.schema, aligned)

    def _io_snapshot(self):
        factory = self.reader_factory
        if factory is not None and hasattr(factory, "io"):
            io = factory.io
            return (io.disk_bytes, io.cache_bytes, io.metadata_bytes,
                    io.files_opened)
        return self.fs.stats.bytes_read, 0, 0, self.fs.stats.files_opened

    def _account_io(self, before, read_metrics, metrics: ScanMetrics):
        factory = self.reader_factory
        if factory is not None and hasattr(factory, "io"):
            io = factory.io
            metrics.disk_bytes += io.disk_bytes - before[0]
            metrics.cache_bytes += io.cache_bytes - before[1]
            metrics.metadata_bytes += io.metadata_bytes - before[2]
            metrics.files_opened += io.files_opened - before[3]
            # the elevator models disk_bytes from chunk sizes, so the
            # re-reads injected at the fs layer must be charged on top
            metrics.disk_bytes += read_metrics.retry_bytes
            metrics.files_opened += read_metrics.io_retries
        else:
            metrics.disk_bytes += self.fs.stats.bytes_read - before[0]
            metrics.files_opened += (self.fs.stats.files_opened
                                     - before[3])
            metrics.metadata_bytes += read_metrics.metadata_bytes
        metrics.row_groups_total += read_metrics.row_groups_total
        metrics.row_groups_read += read_metrics.row_groups_read
        metrics.io_retries += read_metrics.io_retries

    def _with_partition_columns(self, node: rel.TableScan,
                                table: TableDescriptor,
                                batch: VectorBatch, values: tuple,
                                part_names: list[str]) -> VectorBatch:
        if not part_names:
            return batch
        value_of = {c.name.lower(): v for c, v in
                    zip(table.partition_columns, values)}
        vectors = list(batch.vectors)
        columns = list(batch.schema.columns)
        n = batch.num_rows
        for name in part_names:
            column = table.partition_schema().field(name)
            value = value_of[name.lower()]
            storage = column.dtype.to_storage(value)
            np_dtype = column.dtype.numpy_dtype
            if np_dtype == np.dtype(object):
                data = np.empty(n, dtype=object)
                data[:] = storage
            else:
                data = np.full(n, storage, dtype=np_dtype)
            vectors.append(ColumnVector(column.dtype, data,
                                        np.zeros(n, dtype=bool)))
            columns.append(column)
        from ..common.rows import Schema
        return VectorBatch(Schema(columns), vectors)

    # -- sargs --------------------------------------------------------------- #
    def _convert_sargs(self, node: rel.TableScan) -> list[SargPredicate]:
        out: list[SargPredicate] = []
        for conjunct in node.sarg_conjuncts:
            sarg = _rex_to_sarg(conjunct, node.schema)
            if sarg is not None:
                out.append(sarg)
        return out

    def _semijoin_sargs(self, node: rel.TableScan) -> list[SargPredicate]:
        out = []
        for reducer_id in node.semijoin_sources:
            sj = self.semijoin_filters.get(reducer_id)
            if sj is None or sj.min_value is None:
                continue
            out.append(SargPredicate(sj.column, "between",
                                     (sj.min_value, sj.max_value)))
        return out

    def _apply_semijoin_filters(self, node: rel.TableScan,
                                batch: VectorBatch,
                                metrics: ScanMetrics) -> VectorBatch:
        for reducer_id in node.semijoin_sources:
            sj = self.semijoin_filters.get(reducer_id)
            if sj is None or sj.column not in batch.schema:
                continue
            if sj.min_value is None:
                # empty build side: nothing can join
                metrics.semijoin_filtered_rows += batch.num_rows
                return VectorBatch.empty(batch.schema)
            vector = batch.column(sj.column)
            mask = np.ones(batch.num_rows, dtype=bool)
            if vector.data.dtype != np.dtype(object):
                mask &= (vector.data >= sj.min_value) & (
                    vector.data <= sj.max_value)
            mask &= ~vector.nulls
            survivors = np.nonzero(mask)[0]
            for i in survivors:
                value = vector.data[i]
                if hasattr(value, "item"):
                    value = value.item()
                if not sj.bloom.might_contain(value):
                    mask[i] = False
            metrics.semijoin_filtered_rows += int(
                batch.num_rows - mask.sum())
            batch = batch.filter(mask)
        return batch


def _rex_to_sarg(conjunct: rex.RexNode,
                 schema) -> Optional[SargPredicate]:
    """Rex conjunct → file-format sarg (storage-value space)."""
    if not isinstance(conjunct, rex.RexCall):
        return None
    if conjunct.op in ("=", "<", "<=", ">", ">="):
        a, b = conjunct.operands
        if isinstance(a, rex.RexInputRef) and isinstance(b, rex.RexLiteral):
            ref, literal, op = a, b, conjunct.op
        elif isinstance(b, rex.RexInputRef) and isinstance(
                a, rex.RexLiteral):
            ref, literal = b, a
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                  "=": "="}[conjunct.op]
        else:
            return None
        if literal.value is None:
            return None
        return SargPredicate(schema[ref.index].name, op,
                             ref.dtype.to_storage(literal.value))
    if conjunct.op == "IN":
        ref = conjunct.operands[0]
        if not isinstance(ref, rex.RexInputRef):
            return None
        values = []
        for operand in conjunct.operands[1:]:
            if not isinstance(operand, rex.RexLiteral) \
                    or operand.value is None:
                return None
            values.append(ref.dtype.to_storage(operand.value))
        return SargPredicate(schema[ref.index].name, "in", tuple(values))
    return None
