"""Tez-style DAG runtime, cluster cost model, scan execution."""

from .scan import ScanExecutor, ScanMetrics, SemijoinFilter
from .tez import Dag, QueryMetrics, TezRunner, Vertex, build_dag

__all__ = ["ScanExecutor", "ScanMetrics", "SemijoinFilter", "Dag",
           "QueryMetrics", "TezRunner", "Vertex", "build_dag"]
