"""Exception hierarchy for the warehouse.

Every error raised by the library derives from :class:`HiveError` so that
callers can catch a single base class.  Subclasses mirror the failure
domains of the real system: parsing, semantic analysis, metastore/catalog
operations, transactions, execution, and federation.
"""

from __future__ import annotations


class HiveError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(HiveError):
    """SQL text could not be tokenized or parsed.

    Carries the offending position so clients can point at the token.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class UnsupportedFeatureError(ParseError):
    """The SQL construct exists but is not supported by the active profile.

    Used to model the paper's Figure 7 observation that Hive v1.2 could run
    only 50 of the 99 TPC-DS queries: the legacy profile raises this error
    for INTERSECT/EXCEPT, correlated scalar subqueries with non-equi
    predicates, interval notation, and ORDER BY on unselected columns.
    """


class AnalysisError(HiveError):
    """Semantic analysis failed (unknown table/column, type mismatch...)."""


class CatalogError(HiveError):
    """Metastore/catalog operation failed (missing or duplicate object)."""


class TransactionError(HiveError):
    """Transaction manager rejected an operation."""


class WriteConflictError(TransactionError):
    """First-commit-wins conflict: another transaction wrote the same rows."""


class LockTimeoutError(TransactionError):
    """A required lock could not be acquired in time."""


class PlanInvariantError(HiveError):
    """A plan rewrite broke a structural invariant of the RelNode tree.

    Raised by the plan validator (repro.lint.plan_check) when
    ``hive.check.plan`` is on: names the optimizer stage (or rule) that
    produced the broken tree, lists every violated invariant, and —
    when the pre-rewrite tree is available — carries a rendered
    before/after plan diff.
    """

    def __init__(self, message: str, stage: str = "?",
                 violations=(), diff: str = ""):
        super().__init__(message)
        self.stage = stage
        self.violations = list(violations)
        self.diff = diff


class ExecutionError(HiveError):
    """A runtime failure while executing a query plan."""


class VertexFailureError(ExecutionError):
    """A DAG vertex failed; may trigger re-optimization (Section 4.2)."""

    def __init__(self, message: str, vertex: str = "", retriable: bool = True):
        super().__init__(message)
        self.vertex = vertex
        self.retriable = retriable


class OutOfMemoryError(VertexFailureError):
    """Simulated memory exhaustion, e.g. a hash join that misestimated its

    build side.  This is the canonical trigger for the ``reoptimize``
    strategy in Section 4.2 of the paper.
    """


class FederationError(HiveError):
    """An external storage handler failed."""


class ConfigError(HiveError):
    """Invalid configuration value."""


class WorkloadManagementError(HiveError):
    """Resource plan violation, e.g. a trigger killed the query."""


class QueryKilledError(WorkloadManagementError):
    """The statement was terminated by ``KILL QUERY`` (live monitor).

    Subclasses :class:`WorkloadManagementError` so an operator kill
    travels the same path as a WM KILL trigger; the query-log status
    becomes ``killed`` rather than ``error``.
    """

    def __init__(self, message: str, query_id: int = 0,
                 reason: str = ""):
        super().__init__(message)
        self.query_id = query_id
        self.reason = reason


class ServiceError(HiveError):
    """Serving-layer failure (auth, quota, unknown session/operation)."""

    def __init__(self, message: str, code: str = "service_error"):
        super().__init__(message)
        #: machine-readable category the HTTP endpoint maps to a status
        self.code = code


class AdmissionTimeoutError(ServiceError):
    """A queued submission exceeded the admission queue timeout."""

    def __init__(self, message: str):
        super().__init__(message, code="queue_timeout")
