"""Seeded, deterministic fault-injection registry.

The simulator consults the registry at its charge points — file reads,
task modeling, lock grants, transaction housekeeping — and the registry
answers from a pure hash of ``(seed, site, key, attempt)``.  Because no
decision depends on mutable state or thread arrival order, two runs with
the same ``hive.faults.seed`` inject exactly the same faults and charge
exactly the same recovery cost, which is what makes failure testing
reproducible (and lets CI assert bit-identical results under injection).

Sites in use across the stack:

===============  ====================================================
``fs.read``      simulated IO read error; the reader re-opens and
                 re-reads, charging the full transfer per attempt
``task.fail``    task attempt failure in a Tez vertex; retried with
                 exponential backoff up to ``task_max_attempts``
``task.slow``    slow node: a task's modeled duration is multiplied
                 by ``faults_slow_node_multiplier``
``speculation``  backup attempt launched for an injected straggler
``node.death``   LLAP daemon death: cache chunks on the node are
                 invalidated and execution falls back to containers
``lock.stall``   lock holder stops heartbeating while holding locks
``txn.reaped``   AcidHouseKeeper aborted an expired transaction
===============  ====================================================

Every injection is recorded in a bounded event log surfaced as the
virtual ``sys.fault_log`` table, and mirrored into metrics counters
(``faults.injected`` by site, ``faults.delay_s``).
"""

from __future__ import annotations

import threading

from ..common import sync
import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultEvent", "FaultRegistry"]

#: cap on the in-memory event log; totals keep counting past it
MAX_EVENTS = 10_000


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as surfaced in ``sys.fault_log``."""

    event_id: int
    query_id: int
    site: str
    target: str
    attempts: int
    delay_s: float
    detail: str

    def as_row(self) -> tuple:
        return (self.event_id, self.query_id, self.site, self.target,
                self.attempts, round(self.delay_s, 6), self.detail)


class FaultRegistry:
    """Deterministic fault decisions plus the injection event log.

    Decision helpers (:meth:`decide`, :meth:`failed_attempts`,
    :meth:`pick`) are pure functions of the seed and the caller's key —
    the rate is always supplied by the caller so per-session ``SET``
    overrides take effect.  Only the event log and the stalled-txn set
    are stateful, and both are lock-protected.
    """

    def __init__(self, seed: int = 0, io_error_rate: float = 0.0,
                 max_io_retries: int = 3, metrics=None):
        self.seed = int(seed)
        #: server-wide IO error rate consulted by SimFileSystem (the
        #: filesystem is shared across sessions, so this one rate is
        #: fixed at server construction rather than per-session)
        self.io_error_rate = float(io_error_rate)
        self.max_io_retries = int(max_io_retries)
        self.metrics = metrics
        self._lock = sync.new_lock('FaultRegistry._lock')
        self._events: list[FaultEvent] = []
        self._counts: dict[str, int] = {}
        self._next_event_id = 1
        self._stalled_txns: set[int] = set()

    @classmethod
    def from_conf(cls, conf, metrics=None) -> "FaultRegistry":
        return cls(seed=conf.faults_seed,
                   io_error_rate=conf.faults_io_error_rate,
                   max_io_retries=max(0, conf.task_max_attempts - 1),
                   metrics=metrics)

    # ------------------------------------------------------------------ #
    # deterministic decisions
    def _uniform(self, site: str, key, attempt: int = 0) -> float:
        """Stable uniform sample in [0, 1) for a fault site and key."""
        token = repr((self.seed, site, key, attempt)).encode("utf-8")
        return zlib.crc32(token) / 2**32

    def decide(self, site: str, key, rate: float) -> bool:
        """Does a fault strike at this site/key under ``rate``?"""
        if rate <= 0.0:
            return False
        return self._uniform(site, key) < rate

    def failed_attempts(self, site: str, key, rate: float,
                        max_extra: int) -> int:
        """Number of consecutive failed attempts before one succeeds.

        Capped at ``max_extra`` — the final attempt always succeeds,
        modeling node blacklisting after repeated failures, so injected
        faults delay queries but never change their results.
        """
        if rate <= 0.0 or max_extra <= 0:
            return 0
        failures = 0
        for attempt in range(max_extra):
            if self._uniform(site, key, attempt) >= rate:
                break
            failures += 1
        return failures

    def pick(self, site: str, key, n: int) -> int:
        """Stable choice of an index in ``[0, n)`` (e.g. which node dies)."""
        return int(self._uniform(site, key) * n) % max(1, n)

    # ------------------------------------------------------------------ #
    # lock-holder stalls (consulted by the session heartbeat loop)
    def stall_txn(self, txn_id: int) -> None:
        with self._lock:
            self._stalled_txns.add(txn_id)

    def is_stalled(self, txn_id: int) -> bool:
        with self._lock:
            return txn_id in self._stalled_txns

    def clear_stall(self, txn_id: int) -> None:
        with self._lock:
            self._stalled_txns.discard(txn_id)

    # ------------------------------------------------------------------ #
    # event log
    def record(self, site: str, target: str, *, query_id: int = 0,
               attempts: int = 0, delay_s: float = 0.0,
               detail: str = "") -> FaultEvent:
        """Log one injection and bump the metrics counters."""
        with self._lock:
            event = FaultEvent(self._next_event_id, query_id, site,
                               str(target), attempts, delay_s, detail)
            self._next_event_id += 1
            self._counts[site] = self._counts.get(site, 0) + 1
            if len(self._events) < MAX_EVENTS:
                self._events.append(event)
        if self.metrics is not None:
            self.metrics.counter("faults.injected", site=site).inc()
            if delay_s > 0.0:
                self.metrics.counter("faults.delay_s", site=site).inc(delay_s)
        return event

    def events(self, site: Optional[str] = None) -> list[FaultEvent]:
        with self._lock:
            if site is None:
                return list(self._events)
            return [e for e in self._events if e.site == site]

    def count(self, site: Optional[str] = None) -> int:
        """Total injections (per site or overall), uncapped."""
        with self._lock:
            if site is None:
                return sum(self._counts.values())
            return self._counts.get(site, 0)
