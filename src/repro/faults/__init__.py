"""repro.faults — seeded, deterministic fault injection for the simulator.

The registry decides *where* faults strike from a stable hash of
``(seed, site, key, attempt)`` so two runs with the same seed produce
identical fault schedules regardless of thread interleaving, and records
every injection in an event log surfaced as ``sys.fault_log``.
"""

from .registry import FaultEvent, FaultRegistry

__all__ = ["FaultEvent", "FaultRegistry"]
