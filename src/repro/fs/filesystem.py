"""In-memory simulation of an HDFS-like distributed file system.

The paper's warehouse stores table data as immutable files inside a
directory hierarchy (``warehouse/db/table/partition/base_or_delta/file``).
This module provides that substrate:

* immutable files (create once, no in-place update — the constraint that
  motivates the ACID base/delta design of Section 3.2),
* a **FileId**: a unique identifier assigned to every file, which, paired
  with the file length, lets the LLAP cache validate cached chunks the way
  HDFS file ids / S3 ETags do (Section 5.1),
* directory listing and recursive delete (used by compaction cleanup),
* an :class:`IOStats` counter so the cluster simulator can charge virtual
  IO time for every byte that crosses the "disk" boundary.

Paths are POSIX-style strings; directories are implicit but tracked so
that empty directories survive (partition directories can be empty).
"""

from __future__ import annotations

import posixpath
import threading

from ..common import sync
from dataclasses import dataclass, field

from ..errors import HiveError


class FileSystemError(HiveError):
    """Raised on missing paths, duplicate creates, etc."""


@dataclass
class IOStats:
    """Byte/IOPS counters; the runtime converts these to virtual seconds."""

    bytes_read: int = 0
    bytes_written: int = 0
    files_opened: int = 0
    files_created: int = 0
    files_deleted: int = 0
    #: failed read attempts injected by repro.faults; each one re-charged
    #: the full transfer, so they already show up in bytes_read too
    io_retries: int = 0
    #: bytes re-transferred by those failed attempts
    retry_bytes: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.files_opened = 0
        self.files_created = 0
        self.files_deleted = 0
        self.io_retries = 0
        self.retry_bytes = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.bytes_read, self.bytes_written,
                       self.files_opened, self.files_created,
                       self.files_deleted, self.io_retries,
                       self.retry_bytes)


@dataclass
class FileEntry:
    """An immutable stored file."""

    path: str
    data: bytes
    file_id: int
    mtime: int

    @property
    def length(self) -> int:
        return len(self.data)

    @property
    def etag(self) -> tuple[int, int]:
        """Cache-validity token: unique id + length (Section 5.1)."""
        return (self.file_id, len(self.data))


@dataclass(frozen=True)
class FileStatus:
    """Metadata-only view returned by :meth:`SimFileSystem.status`."""

    path: str
    length: int
    file_id: int
    mtime: int


def _norm(path: str) -> str:
    normalized = posixpath.normpath("/" + path.strip("/"))
    return normalized


class SimFileSystem:
    """The simulated namespace.

    Thread-safe: the serving layer runs concurrent sessions, so reads
    (which also charge ``stats``) and namespace mutations synchronize
    on one reentrant lock, the way a NameNode serializes namespace
    edits.  File *contents* are immutable bytes — only the namespace
    and counters need the lock.
    """

    def __init__(self):
        self._lock = sync.new_rlock('SimFileSystem._lock')   # create() nests mkdirs()
        self._files: dict[str, FileEntry] = {}
        self._dirs: set[str] = {"/"}
        self._next_file_id = 1
        self._clock = 0
        self.stats = IOStats()
        #: optional repro.faults.FaultRegistry; when attached, reads can
        #: fail and be transparently retried, re-charging the transfer
        self.fault_registry = None

    # -- directories ------------------------------------------------------- #
    def mkdirs(self, path: str) -> None:
        path = _norm(path)
        parts = path.strip("/").split("/") if path != "/" else []
        with self._lock:
            current = ""
            for part in parts:
                current += "/" + part
                self._dirs.add(current)

    def is_dir(self, path: str) -> bool:
        with self._lock:
            return _norm(path) in self._dirs

    def exists(self, path: str) -> bool:
        path = _norm(path)
        with self._lock:
            return path in self._files or path in self._dirs

    # -- files ------------------------------------------------------------ #
    def create(self, path: str, data: bytes) -> FileEntry:
        """Create an immutable file; parent directories are created."""
        path = _norm(path)
        with self._lock:
            if path in self._files:
                raise FileSystemError(f"file already exists: {path}")
            if path in self._dirs:
                raise FileSystemError(f"path is a directory: {path}")
            self.mkdirs(posixpath.dirname(path))
            self._clock += 1
            entry = FileEntry(path=path, data=bytes(data),
                              file_id=self._next_file_id,
                              mtime=self._clock)
            self._next_file_id += 1
            self._files[path] = entry
            self.stats.files_created += 1
            self.stats.bytes_written += len(data)
            return entry

    def read(self, path: str) -> bytes:
        with self._lock:
            entry = self._entry(path)
            self.stats.files_opened += 1
            self.stats.bytes_read += len(entry.data)
            self._inject_read_faults(entry.path, len(entry.data))
        return entry.data

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """Ranged read — the I/O elevator fetches individual stripes."""
        with self._lock:
            entry = self._entry(path)
            self.stats.files_opened += 1
            chunk = entry.data[offset:offset + length]
            self.stats.bytes_read += len(chunk)
            self._inject_read_faults(entry.path, len(chunk))
        return chunk

    def _inject_read_faults(self, path: str, nbytes: int) -> None:
        """Charge injected read errors: every failed attempt re-opens the
        file and re-transfers the bytes before the bounded final attempt
        succeeds, so faults change IO cost but never file contents."""
        registry = self.fault_registry
        if registry is None or registry.io_error_rate <= 0.0:
            return
        failures = registry.failed_attempts(
            "fs.read", path, registry.io_error_rate, registry.max_io_retries)
        if not failures:
            return
        with self._lock:   # reentrant: read paths already hold it
            self.stats.files_opened += failures
            self.stats.bytes_read += failures * nbytes
            self.stats.io_retries += failures
            self.stats.retry_bytes += failures * nbytes
        registry.record("fs.read", path, attempts=failures,
                        detail=f"reread {failures}x{nbytes}B")

    def status(self, path: str) -> FileStatus:
        with self._lock:
            entry = self._entry(path)
        return FileStatus(entry.path, entry.length, entry.file_id,
                          entry.mtime)

    def file_id(self, path: str) -> int:
        with self._lock:
            return self._entry(path).file_id

    def delete(self, path: str, recursive: bool = False) -> int:
        """Delete a file, or a directory tree with ``recursive``.

        Returns the number of files removed.
        """
        path = _norm(path)
        with self._lock:
            if path in self._files:
                del self._files[path]
                self.stats.files_deleted += 1
                return 1
            if path in self._dirs:
                children_files = [p for p in self._files
                                  if p.startswith(path + "/")]
                children_dirs = [d for d in self._dirs
                                 if d.startswith(path + "/")]
                if (children_files or children_dirs) and not recursive:
                    raise FileSystemError(
                        f"directory not empty: {path}")
                for p in children_files:
                    del self._files[p]
                for d in children_dirs:
                    self._dirs.discard(d)
                self._dirs.discard(path)
                self.stats.files_deleted += len(children_files)
                return len(children_files)
        raise FileSystemError(f"no such path: {path}")

    def rename(self, src: str, dst: str) -> None:
        """Atomic rename of a file or directory tree (commit primitive)."""
        src, dst = _norm(src), _norm(dst)
        with self._lock:
            if src in self._files:
                if dst in self._files or dst in self._dirs:
                    raise FileSystemError(f"destination exists: {dst}")
                entry = self._files.pop(src)
                self.mkdirs(posixpath.dirname(dst))
                self._files[dst] = FileEntry(dst, entry.data,
                                             entry.file_id, entry.mtime)
                return
            if src in self._dirs:
                if dst in self._files or dst in self._dirs:
                    raise FileSystemError(f"destination exists: {dst}")
                self.mkdirs(posixpath.dirname(dst))
                moved_dirs = [d for d in self._dirs if
                              d == src or d.startswith(src + "/")]
                for d in moved_dirs:
                    self._dirs.discard(d)
                    self._dirs.add(dst + d[len(src):])
                moved = [p for p in self._files
                         if p.startswith(src + "/")]
                for p in moved:
                    entry = self._files.pop(p)
                    new_path = dst + p[len(src):]
                    self._files[new_path] = FileEntry(
                        new_path, entry.data, entry.file_id, entry.mtime)
                return
        raise FileSystemError(f"no such path: {src}")

    # -- listing ------------------------------------------------------------ #
    def list_files(self, path: str, recursive: bool = False) -> list[FileStatus]:
        """Files directly under ``path`` (or the whole subtree)."""
        path = _norm(path)
        with self._lock:
            return self._list_files_locked(path, recursive)

    def _list_files_locked(self, path: str,
                           recursive: bool) -> list[FileStatus]:
        # caller holds self._lock
        if path in self._files:
            return [self.status(path)]
        if path not in self._dirs:
            raise FileSystemError(f"no such directory: {path}")
        prefix = path if path != "/" else ""
        out = []
        for p, entry in sorted(self._files.items()):
            if not p.startswith(prefix + "/"):
                continue
            if not recursive and "/" in p[len(prefix) + 1:]:
                continue
            out.append(FileStatus(p, entry.length, entry.file_id,
                                  entry.mtime))
        return out

    def list_dirs(self, path: str) -> list[str]:
        """Immediate child directories of ``path`` (partition listing)."""
        path = _norm(path)
        with self._lock:
            if path not in self._dirs:
                raise FileSystemError(f"no such directory: {path}")
            prefix = path if path != "/" else ""
            children = set()
            for d in self._dirs:
                if d.startswith(prefix + "/"):
                    rest = d[len(prefix) + 1:]
                    children.add(rest.split("/")[0])
        return sorted(prefix + "/" + c for c in children)

    def total_bytes(self, path: str = "/") -> int:
        path = _norm(path)
        prefix = "" if path == "/" else path
        with self._lock:
            return sum(
                len(e.data) for p, e in self._files.items()
                if path == "/" or p == path
                or p.startswith(prefix + "/"))

    def _entry(self, path: str) -> FileEntry:
        path = _norm(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileSystemError(f"no such file: {path}") from None
