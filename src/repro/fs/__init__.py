"""Simulated HDFS-compatible file system."""

from .filesystem import FileEntry, FileStatus, IOStats, SimFileSystem

__all__ = ["FileEntry", "FileStatus", "IOStats", "SimFileSystem"]
