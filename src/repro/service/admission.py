"""Admission control: bounded per-pool run slots with a FIFO queue.

The workload manager (:mod:`repro.llap.workload`) *models* queue delay
in virtual time but admits every caller immediately — fine for a
single-threaded driver, wrong for a concurrent serving layer where a
pool at its parallelism limit must make real submissions *wait*.  This
controller adds that missing half:

* one gate per WM pool — a FIFO ticket queue plus a running-count bound
  at the pool's ``query_parallelism`` (or
  ``hive.server2.default.parallelism`` when no resource plan is
  active).  Excess submissions block on a condition variable, strictly
  FIFO, until a slot frees or the wall-clock queue timeout
  (``hive.server2.admission.queue.timeout.s``) expires;
* per-tenant pool mappings that override the resource plan's
  application routing (``HiveService.register_tenant(pool=...)``);
* a deterministic *virtual* wait mirroring ``WorkloadManager.admit``'s
  per-pool heap of finish times — the wait charged to the session
  clock depends only on (arrival order, arrival times, pool limit),
  never on OS scheduling, so seeded runs reproduce exactly;
* ``KILL QUERY`` support for *queued* operations: the controller is a
  kill listener on the live-query registry, and a cancelled ticket's
  waiter raises :class:`QueryKilledError` immediately (satellite 2).

Waits are recorded as ``service.admission.wait_s`` histograms per pool,
with p95/p99 appended to ``sys.timeseries`` on every admission.

Wall-clock note: ``repro/service`` is deliberately outside the RL002/
RL008 virtual-time scopes — queue timeouts here bound *real* client
wait, so ``time.monotonic`` is correct, not a lint escape.
"""

from __future__ import annotations

import heapq
import threading

from ..common import sync
import time
from collections import deque
from dataclasses import dataclass, field

from ..errors import AdmissionTimeoutError, QueryKilledError


@dataclass
class _Ticket:
    query_id: int
    cancelled: bool = False
    reason: str = ""


@dataclass
class _Gate:
    """Per-pool admission state; guarded by its own condition."""

    limit: int
    cond: threading.Condition = field(
        default_factory=lambda: sync.new_condition("_Gate.cond"))
    queue: deque = field(default_factory=deque)
    running: int = 0
    #: heap of virtual finish times of admitted queries (the WM model)
    virtual: list = field(default_factory=list)


class AdmissionController:
    """Routes tenants to pools and gates concurrency per pool."""

    def __init__(self, conf, registry=None, timeseries=None,
                 workload_manager=None):
        self.conf = conf
        self.registry = registry
        self.timeseries = timeseries
        self.workload_manager = workload_manager
        self._lock = sync.new_lock('AdmissionController._lock')
        self._gates: dict[str, _Gate] = {}
        self._tenant_pools: dict[str, str] = {}

    # -- routing -------------------------------------------------------- #
    def set_tenant_pool(self, tenant: str, pool: str) -> None:
        with self._lock:
            self._tenant_pools[tenant] = pool

    def route(self, tenant: str, application=None) -> str:
        with self._lock:
            pool = self._tenant_pools.get(tenant)
        if pool is not None:
            return pool
        wm = self.workload_manager
        if wm is not None and wm.active:
            return wm.plan.route(application)
        return "default"

    def _limit(self, pool_name: str) -> int:
        wm = self.workload_manager
        if wm is not None and wm.active \
                and pool_name in wm.plan.pools:
            return max(1, wm.plan.pools[pool_name].query_parallelism)
        return max(1, self.conf.server2_default_parallelism)

    def _gate(self, pool_name: str) -> _Gate:
        with self._lock:
            gate = self._gates.get(pool_name)
            if gate is None:
                gate = _Gate(limit=self._limit(pool_name))
                self._gates[pool_name] = gate
        return gate

    # -- admission ------------------------------------------------------ #
    def acquire(self, pool_name: str, query_id: int, arrival_s: float,
                timeout_s=None) -> float:
        """Block until a run slot frees; return the *virtual* wait.

        Raises :class:`AdmissionTimeoutError` past the wall-clock queue
        timeout and :class:`QueryKilledError` if the ticket was
        cancelled (``KILL QUERY`` while queued).
        """
        if timeout_s is None:
            timeout_s = self.conf.server2_queue_timeout_s
        gate = self._gate(pool_name)
        ticket = _Ticket(query_id)
        deadline = time.monotonic() + timeout_s
        with gate.cond:
            gate.limit = self._limit(pool_name)   # plans can change
            gate.queue.append(ticket)
            self._publish_depths(pool_name, gate)
            try:
                while True:
                    if ticket.cancelled:
                        raise QueryKilledError(
                            f"query {query_id} killed while queued in "
                            f"pool {pool_name}",
                            query_id=query_id, reason=ticket.reason)
                    if gate.queue[0] is ticket \
                            and gate.running < gate.limit:
                        gate.queue.popleft()
                        gate.running += 1
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._count("service.admission.timeouts",
                                    pool=pool_name)
                        raise AdmissionTimeoutError(
                            f"query {query_id} spent more than "
                            f"{timeout_s:.1f}s queued in pool "
                            f"{pool_name}")
                    gate.cond.wait(timeout=min(remaining, 0.25))
            finally:
                if ticket in gate.queue:
                    gate.queue.remove(ticket)
                self._publish_depths(pool_name, gate)
                gate.cond.notify_all()   # FIFO head may have changed
            # deterministic virtual wait: same model as WM.admit —
            # with the pool full, wait for the earliest finisher
            heap = gate.virtual
            while heap and heap[0] <= arrival_s:
                heapq.heappop(heap)
            wait_s = 0.0
            if len(heap) >= gate.limit:
                wait_s = max(0.0, heapq.heappop(heap) - arrival_s)
        self._observe_wait(pool_name, wait_s, arrival_s)
        return wait_s

    def release(self, pool_name: str, finish_s: float) -> None:
        """Free a run slot; ``finish_s`` feeds the virtual model."""
        gate = self._gate(pool_name)
        with gate.cond:
            gate.running = max(0, gate.running - 1)
            heapq.heappush(gate.virtual, finish_s)
            gate.cond.notify_all()
        self._publish_depths(pool_name, gate)

    # -- kill-while-queued (satellite 2) -------------------------------- #
    def cancel(self, query_id: int, reason: str = "KILL QUERY") -> bool:
        """Cancel a *queued* ticket; the waiter raises immediately."""
        with self._lock:
            gates = list(self._gates.items())
        for pool_name, gate in gates:
            with gate.cond:
                for ticket in gate.queue:
                    if ticket.query_id == query_id \
                            and not ticket.cancelled:
                        ticket.cancelled = True
                        ticket.reason = reason
                        gate.cond.notify_all()
                        self._count("service.admission.cancelled",
                                    pool=pool_name)
                        return True
        return False

    def on_kill(self, query_id: int, reason: str) -> None:
        """Live-registry kill listener (fires outside its lock)."""
        self.cancel(query_id, reason)

    # -- metrics -------------------------------------------------------- #
    def _count(self, name: str, **labels) -> None:
        if self.registry is not None:
            self.registry.counter(name, **labels).inc()

    def _publish_depths(self, pool_name: str, gate: _Gate) -> None:
        if self.registry is None:
            return
        self.registry.gauge("service.admission.queued",
                            pool=pool_name).set(len(gate.queue))
        self.registry.gauge("service.admission.running",
                            pool=pool_name).set(gate.running)

    def _observe_wait(self, pool_name: str, wait_s: float,
                      arrival_s: float) -> None:
        if self.registry is None:
            return
        self.registry.histogram("service.admission.wait_s",
                                pool=pool_name).observe(wait_s)
        timeseries = self.timeseries   # its own lock synchronizes appends
        if timeseries is None:
            return
        from ..obs.clock import wall_now_s
        for suffix, p in (("p95", 95.0), ("p99", 99.0)):
            value = self.registry.percentile(
                "service.admission.wait_s", p, pool=pool_name)
            if value is None:
                continue
            timeseries.append(
                f"service.admission.wait_s.{suffix}", value,
                ts_s=arrival_s, wall_s=wall_now_s(),
                source="service", pool=pool_name)

    def queue_depth(self, pool_name: str) -> int:
        gate = self._gate(pool_name)
        with gate.cond:
            return len(gate.queue)
