"""Threaded load harness: N virtual users against the serving layer.

Drives a :class:`HiveService` either in-process (direct method calls)
or over its HTTP endpoint (``base_url=``), one thread per client, each
client replaying its statement list ``repeat`` times: open session →
submit → poll to a terminal state → page rows via ``fetch`` → verify.

The report proves the acceptance bar (zero lost, zero duplicated
results under concurrency): every submission must reach a terminal
state exactly once, every fetched page must re-assemble to exactly the
operation's row count, and no operation id may be observed twice.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class LoadClient:
    """One virtual user: a tenant token and a statement script."""

    token: str
    statements: list
    application: Optional[str] = None
    database: str = "default"


@dataclass
class LoadReport:
    """Aggregate outcome of one :func:`run_load` run."""

    submitted: int = 0
    finished: int = 0
    errors: int = 0
    killed: int = 0
    lost: int = 0            # submissions that never reached a terminal state
    duplicates: int = 0      # operation ids observed more than once
    rows_fetched: int = 0
    results_cache_hits: int = 0
    plan_cache_hits: int = 0
    wall_s: float = 0.0
    error_messages: list = field(default_factory=list)

    @property
    def throughput_per_s(self) -> float:
        return self.finished / self.wall_s if self.wall_s > 0 else 0.0


class _InProcessClient:
    """Direct-call protocol adapter."""

    def __init__(self, service):
        self.service = service

    def open(self, client: LoadClient) -> str:
        session = self.service.open_session(
            token=client.token, application=client.application,
            database=client.database)
        return session.session_id

    def submit(self, session_id: str, sql: str) -> str:
        return self.service.submit(session_id, sql).op_id

    def poll(self, op_id: str) -> dict:
        return self.service.poll(op_id)

    def fetch(self, op_id: str, offset: int, limit: int) -> dict:
        return self.service.fetch(op_id, offset, limit)

    def close(self, session_id: str) -> None:
        self.service.close_session(session_id)


class _HttpClient:
    """urllib protocol adapter against a running endpoint."""

    def __init__(self, base_url: str):
        self.base = base_url.rstrip("/")

    def _call(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as reply:
            return json.loads(reply.read())

    def open(self, client: LoadClient) -> str:
        payload = self._call("POST", "/v1/sessions", {
            "token": client.token,
            "application": client.application,
            "database": client.database})
        return payload["session_id"]

    def submit(self, session_id: str, sql: str) -> str:
        payload = self._call(
            "POST", f"/v1/sessions/{session_id}/submit", {"sql": sql})
        return payload["operation_id"]

    def poll(self, op_id: str) -> dict:
        return self._call("GET", f"/v1/operations/{op_id}")

    def fetch(self, op_id: str, offset: int, limit: int) -> dict:
        return self._call(
            "GET",
            f"/v1/operations/{op_id}/fetch"
            f"?offset={offset}&limit={limit}")

    def close(self, session_id: str) -> None:
        self._call("DELETE", f"/v1/sessions/{session_id}")


def run_load(service, clients, repeat: int = 1,
             base_url: Optional[str] = None,
             fetch_page: int = 64,
             poll_interval_s: float = 0.002,
             timeout_s: float = 120.0) -> LoadReport:
    """Replay every client's script concurrently; verify delivery."""
    proto = (_HttpClient(base_url) if base_url is not None
             else _InProcessClient(service))
    report = LoadReport()
    seen_ops: set = set()
    lock = threading.Lock()

    def one_client(client: LoadClient) -> None:
        try:
            session_id = proto.open(client)
        except Exception as error:   # open rejected (auth/quota/...)
            with lock:
                report.errors += 1
                report.error_messages.append(
                    f"open({client.token}): {error}")
            return
        try:
            for _ in range(repeat):
                for sql in client.statements:
                    _one_statement(proto, session_id, sql, report,
                                   seen_ops, lock, fetch_page,
                                   poll_interval_s, timeout_s)
        finally:
            proto.close(session_id)

    threads = [threading.Thread(target=one_client, args=(c,),
                                name=f"load-{i}", daemon=True)
               for i, c in enumerate(clients)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s)
    report.wall_s = time.monotonic() - started
    return report


def _one_statement(proto, session_id: str, sql: str,
                   report: LoadReport, seen_ops: set,
                   lock: threading.Lock, fetch_page: int,
                   poll_interval_s: float, timeout_s: float) -> None:
    op_id = proto.submit(session_id, sql)
    with lock:
        report.submitted += 1
        if op_id in seen_ops:
            report.duplicates += 1
        seen_ops.add(op_id)
    deadline = time.monotonic() + timeout_s
    state = "queued"
    payload: dict = {}
    while time.monotonic() < deadline:
        payload = proto.poll(op_id)
        state = payload["state"]
        if state in ("finished", "error", "killed"):
            break
        time.sleep(poll_interval_s)
    else:
        with lock:
            report.lost += 1
        return
    if state != "finished":
        with lock:
            if state == "killed":
                report.killed += 1
            else:
                report.errors += 1
                report.error_messages.append(payload.get("error", ""))
        return
    # page the full result set and verify nothing was dropped
    rows = 0
    offset = 0
    while True:
        page = proto.fetch(op_id, offset, fetch_page)
        rows += page["returned"]
        offset += page["returned"]
        if not page["has_more"] or page["returned"] == 0:
            break
    with lock:
        report.finished += 1
        report.rows_fetched += rows
        if rows != payload.get("row_count", rows):
            report.lost += 1   # short delivery counts as loss
        if payload.get("from_cache"):
            report.results_cache_hits += 1
        if payload.get("plan_cached"):
            report.plan_cache_hits += 1
