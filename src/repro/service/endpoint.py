"""HTTP wire protocol for :class:`~repro.service.core.HiveService`.

A JSON-over-HTTP rendition of the HiveServer2 Thrift API, stdlib only
(same ``ThreadingHTTPServer`` pattern as the monitor endpoint in
:mod:`repro.obs.exposition` — the only two modules allowed to build one,
enforced by reprolint RL009):

========  ==============================  ===============================
method    path                            body / query
========  ==============================  ===============================
POST      /v1/sessions                    {token?, application?, database?}
DELETE    /v1/sessions/{sid}              —
POST      /v1/sessions/{sid}/submit       {sql}
GET       /v1/operations/{op}             —  (poll state/phase/ETA)
GET       /v1/operations/{op}/fetch       ?offset=N&limit=M (paged rows)
DELETE    /v1/operations/{op}             —  (KILL QUERY path)
GET       /healthz                        —
========  ==============================  ===============================

``submit`` is asynchronous: it returns an operation handle immediately;
clients poll then fetch.  Service errors map onto HTTP statuses by
their machine code: ``auth``→401, ``quota``→429, ``not_found``→404,
``not_ready``→409, ``timeout``→408; anything else is a 400.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..errors import HiveError, ServiceError

#: ServiceError.code -> HTTP status
_STATUS = {"auth": 401, "quota": 429, "not_found": 404,
           "not_ready": 409, "timeout": 408, "queue_timeout": 408}


class _ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-hs2/1.0"
    protocol_version = "HTTP/1.1"

    # -- routing -------------------------------------------------------- #
    def do_POST(self):  # noqa: N802 - stdlib API
        self._route("POST")

    def do_GET(self):  # noqa: N802 - stdlib API
        self._route("GET")

    def do_DELETE(self):  # noqa: N802 - stdlib API
        self._route("DELETE")

    def _route(self, method: str) -> None:
        service = self.server.service
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        try:
            payload = self._dispatch(service, method, parts, query)
        except ServiceError as error:
            self._json(_STATUS.get(error.code, 400),
                       {"error": str(error), "code": error.code})
        except HiveError as error:
            self._json(400, {"error": str(error),
                             "code": "execution"})
        except Exception as error:  # surface, don't kill the thread
            self._json(500, {"error": str(error), "code": "internal"})
        else:
            self._json(200, payload)

    def _dispatch(self, service, method: str, parts: list[str],
                  query: str) -> dict:
        if parts == ["healthz"]:
            return {"status": "ok",
                    "sessions": service.sessions.open_count(),
                    "live_operations": service.operations.live_count()}
        if not parts or parts[0] != "v1":
            raise ServiceError(f"no such route: {self.path}",
                               code="not_found")
        if parts[1:] == ["sessions"] and method == "POST":
            body = self._body()
            session = service.open_session(
                token=body.get("token"),
                application=body.get("application"),
                database=body.get("database", "default"))
            return {"session_id": session.session_id,
                    "tenant": session.tenant}
        if len(parts) == 3 and parts[1] == "sessions" \
                and method == "DELETE":
            service.close_session(parts[2])
            return {"session_id": parts[2], "closed": True}
        if len(parts) == 4 and parts[1] == "sessions" \
                and parts[3] == "submit" and method == "POST":
            body = self._body()
            sql = body.get("sql")
            if not sql:
                raise ServiceError("missing 'sql'", code="bad_request")
            op = service.submit(parts[2], sql)
            return {"operation_id": op.op_id,
                    "query_id": op.query_id, "state": op.state}
        if len(parts) == 3 and parts[1] == "operations":
            if method == "GET":
                return service.poll(parts[2])
            if method == "DELETE":
                cancelled = service.cancel(parts[2])
                return {"operation_id": parts[2],
                        "cancelled": cancelled}
        if len(parts) == 4 and parts[1] == "operations" \
                and parts[3] == "fetch" and method == "GET":
            params = dict(pair.split("=", 1)
                          for pair in query.split("&") if "=" in pair)
            return service.fetch(parts[2],
                                 offset=int(params.get("offset", 0)),
                                 limit=int(params.get("limit", 100)))
        raise ServiceError(f"no such route: {method} {self.path}",
                           code="not_found")

    # -- plumbing ------------------------------------------------------- #
    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise ServiceError(f"invalid JSON body: {error}",
                               code="bad_request")
        if not isinstance(body, dict):
            raise ServiceError("JSON body must be an object",
                               code="bad_request")
        return body

    def _json(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format, *args):  # noqa: A002 - stdlib API
        pass  # load tests must not spam the output


class ServiceHttpServer:
    """Daemon-threaded JSON endpoint for one :class:`HiveService`."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _ServiceHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHttpServer":
        thread = threading.Thread(target=self._httpd.serve_forever,
                                  name="repro-hs2", daemon=True)
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
