"""Compiled plan cache: skip parse/analyze/optimize for repeat statements.

HiveServer2 compiles every statement from scratch; for BI workloads the
same parameterless dashboard queries arrive hundreds of times, and the
compile pipeline (parse -> analyze -> CBO) dominates short-query latency
(Section 7 of the paper motivates exactly this with the results cache;
this cache is its *plan-level* sibling).  The cache stores the analyzed
relational tree and the optimizer's :class:`OptimizedPlan` keyed like
the results cache:

``(database, canonical statement text, plan-relevant conf digest)``

A hit replays the optimized plan against *current* data — results are
always fresh; only compilation is skipped — and charges the reduced
``cost.plan_cache_hit_compile_s`` instead of ``cost.compile_overhead_s``
to the virtual clock.

**Invalidation.**  Partition pruning, stats-derived join orders and
semijoin choices are baked into an optimized plan, so any DDL *or*
statistics change on a referenced table must invalidate.  The metastore
bumps a per-table *plan version* on every DDL event and every stats
update (:meth:`HiveMetastore.plan_versions`); an entry is valid only
while every referenced table's version is unchanged since compile time.
Versions are captured *before* optimization, so a concurrent DDL during
compilation invalidates the entry on its next lookup (conservative,
never stale).

Materialized views get two extra guards: ``CREATE MATERIALIZED VIEW``
bumps the plan version of every *source* table (invalidating base plans
compiled before the MV existed), and the driver refuses to cache any
plan whose tables intersect a rewrite-enabled MV's sources — the
rewrite decision depends on MV freshness, which is time-dependent.

The cache never caches statements that read ``sys.*`` (generated from
live server state), ran inside an explicit transaction, used runtime
stats feedback, were re-executed, or used an MV rewrite — the driver
gates all of these before calling :meth:`store`.
"""

from __future__ import annotations

import hashlib
import itertools
import threading

from ..common import sync
from ..exec.compile import KernelCache
from dataclasses import dataclass, field
from typing import Callable, Optional

#: HiveConf attributes that change the shape of an optimized plan.
#: Two sessions whose values differ on any of these must not share
#: cached plans (satellite 1: the digest is computed from the
#: *session's* effective conf, never the server's).
PLAN_RELEVANT_CONF = (
    "cbo_enabled",
    "join_reordering",
    "filter_pushdown",
    "project_pruning",
    "constant_folding",
    "partition_pruning",
    "shared_work_optimization",
    "semijoin_reduction",
    "semijoin_bloom_fpp",
    "mv_rewriting",
    "federation_pushdown",
    "vectorized_execution",
    "llap_enabled",
    "hash_join_memory_rows",
)


def plan_conf_digest(conf, extra: str = "") -> str:
    """Digest of the plan-relevant subset of a session conf.

    ``extra`` folds in non-conf planner inputs (the driver passes the
    registered storage-handler names: federation pushdown plans differ
    when a handler appears).
    """
    parts = [f"{name}={getattr(conf, name)!r}"
             for name in PLAN_RELEVANT_CONF]
    if extra:
        parts.append(f"extra={extra}")
    text = "|".join(parts)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


@dataclass
class PlanCacheStats:
    """Mutable counters; absorbed as ``cache.*{component=plan}`` gauges."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PlanCacheEntry:
    """One compiled statement: analyzed tree + optimized plan."""

    database: str
    canonical: str               # query.unparse() — the cache key text
    conf_digest: str
    analyzed: object             # rel.RelNode (reoptimize re-runs CBO)
    optimized: object            # optimizer.planner.OptimizedPlan
    tables: list[str]            # qualified names the plan reads
    versions: dict[str, int]     # per-table plan versions at compile
    cacheable: bool              # may the *results* cache serve this?
    hits: int = 0
    last_used: int = 0           # LRU clock tick
    raw_keys: set = field(default_factory=set)
    #: compiled expression kernels (repro.exec.compile): every hit on
    #: this entry reuses them, so repeated fingerprints pay expression
    #: lowering once, not once per execution (KernelCache is
    #: thread-safe; entries are shared across sessions)
    kernels: KernelCache = field(default_factory=KernelCache)

    def as_row(self) -> tuple:
        return (self.database, self.canonical, ",".join(self.tables),
                self.conf_digest, self.hits, self.last_used)


class CompiledPlanCache:
    """Thread-safe LRU cache of compiled plans (``sys.plan_cache``)."""

    def __init__(self, max_entries: int = 256,
                 on_lookup: Optional[Callable] = None):
        self.max_entries = max_entries
        self.stats = PlanCacheStats()
        #: ``fn(database, canonical, hit)`` observer, called *after*
        #: the cache lock is released (the query store hangs its
        #: per-fingerprint hit/miss accounting here; firing outside the
        #: lock keeps the lock-order graph acyclic)
        self.on_lookup = on_lookup
        self._lock = sync.new_lock('CompiledPlanCache._lock')
        self._entries: dict[tuple, PlanCacheEntry] = {}
        #: raw statement text -> canonical key, so a repeat of the exact
        #: byte-identical statement skips even the parse step
        self._raw: dict[tuple, tuple] = {}
        self._clock = itertools.count(1)

    # -- lookup --------------------------------------------------------- #
    def lookup(self, database: str, canonical: str, digest: str,
               versions_of: Callable[[list], dict]
               ) -> Optional[PlanCacheEntry]:
        """Return a valid entry or None; counts hit/miss/invalidation.

        ``versions_of(tables)`` reads the metastore's *current* plan
        versions; it is called outside this cache's lock (the metastore
        has its own) only conceptually — here the cache lock is held,
        which is safe because ``HiveMetastore.plan_versions`` takes a
        leaf lock and calls nothing back.
        """
        key = (database, canonical, digest)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None \
                    and versions_of(entry.tables) != entry.versions:
                self._evict(key, entry)
                self.stats.invalidations += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
            else:
                entry.hits += 1
                entry.last_used = next(self._clock)
                self.stats.hits += 1
        if self.on_lookup is not None:
            self.on_lookup(database, canonical, entry is not None)
        return entry

    def lookup_raw(self, database: str, raw_sql: str, digest: str,
                   versions_of: Callable[[list], dict]
                   ) -> Optional[PlanCacheEntry]:
        """Byte-identical fast path: resolve raw SQL without parsing.

        Misses here are *not* counted — the canonical lookup that
        follows the parse will account for this statement.
        """
        raw_key = (database, raw_sql.strip(), digest)
        with self._lock:
            key = self._raw.get(raw_key)
        if key is None:
            return None
        return self.lookup(database, key[1], digest, versions_of)

    # -- store / invalidate --------------------------------------------- #
    def store(self, database: str, canonical: str, digest: str, *,
              analyzed, optimized, tables: list[str],
              versions: dict[str, int], cacheable: bool,
              raw_sql: Optional[str] = None) -> PlanCacheEntry:
        entry = PlanCacheEntry(
            database=database, canonical=canonical, conf_digest=digest,
            analyzed=analyzed, optimized=optimized,
            tables=sorted(tables), versions=dict(versions),
            cacheable=cacheable)
        key = (database, canonical, digest)
        with self._lock:
            entry.last_used = next(self._clock)
            self._entries[key] = entry
            if raw_sql is not None:
                raw_key = (database, raw_sql.strip(), digest)
                self._raw[raw_key] = key
                entry.raw_keys.add(raw_key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                lru_key = min(self._entries,
                              key=lambda k: self._entries[k].last_used)
                self._evict(lru_key, self._entries[lru_key])
                self.stats.evictions += 1
        return entry

    def _evict(self, key: tuple, entry: PlanCacheEntry) -> None:
        # caller holds self._lock (every call site is inside it)
        self._entries.pop(key, None)     # reprolint: disable=RL001
        for raw_key in entry.raw_keys:
            self._raw.pop(raw_key, None)  # reprolint: disable=RL001

    def link_raw(self, entry: PlanCacheEntry, database: str,
                 raw_sql: str, digest: str) -> None:
        """Teach the raw fast path a new spelling of a cached entry."""
        raw_key = (database, raw_sql.strip(), digest)
        with self._lock:
            key = (entry.database, entry.canonical, entry.conf_digest)
            if self._entries.get(key) is entry:
                self._raw[raw_key] = key
                entry.raw_keys.add(raw_key)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._raw.clear()

    # -- reads ---------------------------------------------------------- #
    def rows(self) -> list[tuple]:
        """Snapshot for ``sys.plan_cache``, hottest entries first."""
        with self._lock:
            entries = sorted(self._entries.values(),
                             key=lambda e: (-e.hits, e.canonical))
            return [e.as_row() for e in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
