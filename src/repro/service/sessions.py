"""Service sessions: tenant auth, per-tenant quotas, TTL expiry.

One :class:`ServiceSession` wraps one driver
:class:`~repro.server.driver.Session`.  The driver session copies the
server conf at open time (*snapshot semantics* — satellite 1: later
server-wide ``SET`` statements do **not** retro-apply to open sessions;
a session changes its own behaviour with its own ``SET``).  The wrapped
session's virtual clock is seeded from the warehouse's global clock so
concurrently opened sessions share one timeline.

Sessions expire: a session idle longer than
``hive.server2.session.ttl.s`` is reaped by the housekeeper tick that
also reaps silent transactions (:meth:`reap_expired` rides
``HiveServer2.housekeeping_hooks``).  A session mid-statement holds its
serialization lock and is never reaped.  Rows back ``sys.sessions``.
"""

from __future__ import annotations

import contextlib
import itertools
import threading

from ..common import sync
from typing import Optional

from ..errors import ServiceError, TransactionError


class ServiceSession:
    """One client connection: a driver session plus serving state."""

    def __init__(self, session_id: str, tenant: str,
                 application: Optional[str], driver):
        self.session_id = session_id
        self.tenant = tenant
        self.application = application
        self.driver = driver               # repro.server.driver.Session
        self.state = "open"                # open | closed | expired
        self.created_s = driver.now_s
        self.last_used_s = driver.now_s
        self.statements = 0
        #: serializes statements: one in flight per session, like HS2
        self.lock = sync.new_lock('ServiceSession.lock')

    def as_row(self) -> tuple:
        return (self.session_id, self.tenant, self.application,
                self.driver.database, self.state, self.created_s,
                self.last_used_s, self.statements)


class SessionManager:
    """Opens, authenticates, expires and lists service sessions."""

    def __init__(self, server):
        self.server = server               # HiveServer2
        self._lock = sync.new_lock('SessionManager._lock')
        self._sessions: dict[str, ServiceSession] = {}
        #: token -> tenant; empty means open access (token names tenant)
        self._tenants: dict[str, str] = {}
        self._ids = itertools.count(1)

    # -- tenant registry ------------------------------------------------ #
    def register_tenant(self, tenant: str, token: str) -> None:
        with self._lock:
            self._tenants[token] = tenant

    def _resolve_tenant(self, token: Optional[str]) -> str:
        # caller holds self._lock
        if not self._tenants:
            return token or "anonymous"
        tenant = self._tenants.get(token or "")
        if tenant is None:
            self._count("service.sessions.rejected", reason="auth")
            raise ServiceError("unknown tenant token", code="auth")
        return tenant

    # -- lifecycle ------------------------------------------------------ #
    def open(self, token: Optional[str] = None,
             application: Optional[str] = None,
             database: str = "default") -> ServiceSession:
        conf = self.server.conf
        try:
            with self._lock:
                tenant = self._resolve_tenant(token)
                open_count = sum(
                    1 for s in self._sessions.values()
                    if s.tenant == tenant and s.state == "open")
                if open_count >= conf.server2_max_sessions_per_tenant:
                    self._count("service.sessions.rejected",
                                reason="quota")
                    raise ServiceError(
                        f"tenant {tenant} already holds {open_count} "
                        f"open sessions (limit "
                        f"{conf.server2_max_sessions_per_tenant})",
                        code="quota")
                session_id = f"s{next(self._ids):06x}"
        except ServiceError as error:
            # rejected opens never reach Session.execute, so the audit
            # hook cannot see them — record the denial here
            self._audit_denied(token, application, database, error)
            raise
        driver = self.server.connect(database, application)
        # the audit/lineage hooks attribute statements to the tenant
        # the serving layer authenticated, not a self-reported name
        driver.tenant = tenant
        driver.session_name = session_id
        # seed the session clock from the warehouse global clock so
        # sessions opened mid-run share the cluster timeline
        driver.now_s = self.server.hms.txn_manager.advance_clock(0.0)
        session = ServiceSession(session_id, tenant, application, driver)
        with self._lock:
            self._sessions[session_id] = session
        self._count("service.sessions.opened", tenant=tenant)
        return session

    def _audit_denied(self, token: Optional[str],
                      application: Optional[str], database: str,
                      error: ServiceError) -> None:
        from ..obs.audit import AuditRecord
        with self._lock:
            tenant = self._tenants.get(token or "",
                                       token or "anonymous")
        # the audit log takes its own lock
        self.server.obs.audit_log.append(AuditRecord(  # reprolint: disable=RL001
            query_id=0, tenant=tenant, database=database,
            application=application, operation="open_session",
            status="denied", error=str(error),
            at_s=self.server.hms.txn_manager.advance_clock(0.0)))

    def get(self, session_id: str) -> ServiceSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.state != "open":
            state = session.state if session is not None else "unknown"
            raise ServiceError(
                f"no open session {session_id} (state: {state})",
                code="not_found")
        return session

    def touch(self, session: ServiceSession, now_s: float) -> None:
        with self._lock:
            session.last_used_s = max(session.last_used_s, now_s)
            session.statements += 1

    def close(self, session_id: str, state: str = "closed") -> None:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or session.state != "open":
                return
            session.state = state
        self._abort_open_txn(session)
        self._count("service.sessions.closed"
                    if state == "closed" else
                    "service.sessions.expired", tenant=session.tenant)

    @staticmethod
    def _abort_open_txn(session: ServiceSession) -> None:
        """A closed/expired session must not pin a transaction: the
        lock manager would hold its locks until the txn reaper fires."""
        driver = session.driver
        if driver._active_txn is not None:
            with contextlib.suppress(TransactionError):
                driver._rollback_transaction()

    # -- TTL reaping (housekeeper hook) --------------------------------- #
    def reap_expired(self, now_s: float) -> list[str]:
        """Expire sessions idle past the TTL; returns expired ids.

        Runs on the per-statement housekeeper tick.  A session whose
        serialization lock is held is mid-statement — live by
        definition — and is skipped regardless of its idle time.
        """
        ttl = self.server.conf.server2_session_ttl_s
        with self._lock:
            stale = [s for s in self._sessions.values()
                     if s.state == "open"
                     and now_s - s.last_used_s > ttl
                     and not s.lock.locked()]
        expired = []
        for session in stale:
            self.close(session.session_id, state="expired")
            expired.append(session.session_id)
        return expired

    # -- reads ---------------------------------------------------------- #
    def rows(self) -> list[tuple]:
        """Snapshot for ``sys.sessions``, ordered by session id."""
        with self._lock:
            sessions = sorted(self._sessions.values(),
                              key=lambda s: s.session_id)
            return [s.as_row() for s in sessions]

    def open_count(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            return sum(1 for s in self._sessions.values()
                       if s.state == "open"
                       and (tenant is None or s.tenant == tenant))

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def _count(self, name: str, **labels) -> None:
        registry = self.server.obs.registry
        registry.counter(name, **labels).inc()
