"""``repro.service`` — the concurrent serving layer (HiveServer2 front).

Lazy re-exports keep import cost near zero and avoid import cycles:
the driver imports :mod:`repro.service.plan_cache` directly, while
:class:`HiveService` imports the driver only at construction time.
"""

_EXPORTS = {
    "HiveService": "core",
    "ServiceHttpServer": "endpoint",
    "SessionManager": "sessions",
    "ServiceSession": "sessions",
    "AdmissionController": "admission",
    "Operation": "operations",
    "OperationRegistry": "operations",
    "CompiledPlanCache": "plan_cache",
    "PlanCacheStats": "plan_cache",
    "PLAN_RELEVANT_CONF": "plan_cache",
    "plan_conf_digest": "plan_cache",
    "LoadClient": "harness",
    "LoadReport": "harness",
    "run_load": "harness",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.service' has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
