"""Async operation handles: submit returns immediately, clients poll.

Mirrors HiveServer2's ``TOperationHandle``: a submitted statement gets
an operation id at once, runs on a worker thread, and the client polls
``GET /v1/operations/{op}`` then pages rows with ``fetch``.  The
operation id doubles as the hex-encoded query id, so ``KILL QUERY`` /
``sys.live_queries`` / the query log all line up with the handle a
client holds.
"""

from __future__ import annotations

import threading

from ..common import sync
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ServiceError

#: operation lifecycle; the first two are live, the rest terminal
STATES = ("queued", "running", "finished", "error", "killed")
TERMINAL = ("finished", "error", "killed")


@dataclass
class Operation:
    """One submitted statement and (eventually) its result pages."""

    op_id: str
    session_id: str
    tenant: str
    sql: str
    query_id: int
    submitted_s: float = 0.0     # session virtual clock at submit
    state: str = "queued"
    pool: str = ""
    error: str = ""
    error_code: str = ""
    column_names: list = field(default_factory=list)
    rows: list = field(default_factory=list)
    rows_affected: int = 0
    from_cache: bool = False     # served by the *results* cache
    plan_cached: bool = False    # compiled via the *plan* cache
    reexecuted: bool = False
    admission_wait_s: float = 0.0
    total_s: float = 0.0
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL

    def describe(self) -> dict:
        """Poll payload (rows ride only on ``fetch``)."""
        return {
            "operation_id": self.op_id,
            "session_id": self.session_id,
            "tenant": self.tenant,
            "query_id": self.query_id,
            "state": self.state,
            "pool": self.pool,
            "error": self.error,
            "error_code": self.error_code,
            "row_count": len(self.rows),
            "rows_affected": self.rows_affected,
            "from_cache": self.from_cache,
            "plan_cached": self.plan_cached,
            "reexecuted": self.reexecuted,
            "admission_wait_s": round(self.admission_wait_s, 6),
            "total_s": round(self.total_s, 6),
        }


class OperationRegistry:
    """Thread-safe registry of operations, keyed by operation id.

    Completed operations are retained (clients fetch after the worker
    thread exits) up to ``max_completed``, oldest evicted first.
    """

    def __init__(self, max_completed: int = 10_000):
        self._lock = sync.new_lock('OperationRegistry._lock')
        self._ops: dict[str, Operation] = {}
        self._completed: deque[str] = deque()
        self._max_completed = max_completed

    # -- lifecycle ------------------------------------------------------ #
    def create(self, session_id: str, tenant: str, sql: str,
               query_id: int, submitted_s: float) -> Operation:
        op = Operation(op_id=f"{query_id:x}", session_id=session_id,
                       tenant=tenant, sql=sql, query_id=query_id,
                       submitted_s=submitted_s)
        with self._lock:
            self._ops[op.op_id] = op
        return op

    def get(self, op_id: str) -> Operation:
        with self._lock:
            op = self._ops.get(op_id)
        if op is None:
            raise ServiceError(f"unknown operation: {op_id}",
                               code="not_found")
        return op

    def transition(self, op: Operation, state: str, **fields) -> None:
        """Move an operation to ``state``; terminal states set the
        done event and enter the retention window."""
        with self._lock:
            # a kill that raced the normal finish keeps the first
            # terminal state — results are never overwritten
            if op.state in TERMINAL:
                return
            op.state = state
            for key, value in fields.items():
                setattr(op, key, value)
            if state not in TERMINAL:
                return
            self._completed.append(op.op_id)
            while len(self._completed) > self._max_completed:
                self._ops.pop(self._completed.popleft(), None)
        op.done.set()

    # -- result access -------------------------------------------------- #
    def fetch(self, op_id: str, offset: int = 0,
              limit: int = 100) -> dict:
        op = self.get(op_id)
        if not op.finished:
            raise ServiceError(
                f"operation {op_id} not finished (state={op.state})",
                code="not_ready")
        if op.state != "finished":
            raise ServiceError(
                f"operation {op_id} {op.state}: {op.error}",
                code=op.error_code or "failed")
        with self._lock:
            page = op.rows[offset:offset + limit]
            total = len(op.rows)
            columns = list(op.column_names)
        return {"operation_id": op_id, "columns": columns,
                "rows": page, "offset": offset, "returned": len(page),
                "total": total, "has_more": offset + len(page) < total}

    def wait(self, op_id: str, timeout_s: float = 60.0) -> Operation:
        op = self.get(op_id)
        if not op.done.wait(timeout_s):
            raise ServiceError(
                f"operation {op_id} still {op.state} after "
                f"{timeout_s:.0f}s", code="timeout")
        return op

    def live_count(self) -> int:
        with self._lock:
            return sum(1 for op in self._ops.values()
                       if op.state not in TERMINAL)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ops)
