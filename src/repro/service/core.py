"""`HiveService`: the concurrent serving layer in front of HiveServer2.

The driver (:mod:`repro.server.driver`) is a library: one thread, one
session, call :meth:`Session.execute` and block.  Real HiveServer2 is a
*server*: many clients hold sessions concurrently, submissions return
operation handles immediately, an admission controller decides who runs
now and who queues, and repeated dashboard statements skip compilation
via the plan cache.  This facade reproduces that layer:

* :class:`SessionManager` — tenant tokens, quotas, TTL expiry
  (rides the driver's housekeeper tick);
* :class:`AdmissionController` — per-pool FIFO run slots over the WM
  resource plan, deterministic virtual waits, kill-while-queued;
* :class:`OperationRegistry` — async handles, paged fetch;
* one worker thread per operation — each statement runs under its
  session's serialization lock, exactly HS2's one-active-statement-
  per-session rule.

Wire protocol lives in :mod:`repro.service.endpoint`; an in-process
client can call :meth:`submit` / :meth:`fetch` directly (the tests and
the bench harness do both).

Virtual-time accounting: an operation's admission wait is charged to
the owning session's clock *before* the statement executes, so
``sys.query_log.started_s`` and pool timelines reflect queueing the
same way ``WorkloadManager.admit`` models it — and identically across
reruns with the same seed and submission order.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..errors import AdmissionTimeoutError, HiveError, QueryKilledError
from .admission import AdmissionController
from .operations import OperationRegistry
from .sessions import SessionManager


class HiveService:
    """Concurrent serving facade over one :class:`HiveServer2`."""

    def __init__(self, server=None, conf=None):
        if server is None:
            from ..server.driver import HiveServer2
            server = HiveServer2(conf)
        self.server = server
        obs = server.obs
        self.sessions = SessionManager(server)
        self.admission = AdmissionController(
            server.conf, registry=obs.registry,
            timeseries=obs.timeseries,
            workload_manager=server.workload_manager)
        self.operations = OperationRegistry()
        self.http = None
        obs.bind_sessions(self.sessions)
        obs.live_queries.add_kill_listener(self.admission.on_kill)
        server.housekeeping_hooks.append(self._housekeep)

    # -- admin ---------------------------------------------------------- #
    def register_tenant(self, tenant: str, token: Optional[str] = None,
                        pool: Optional[str] = None) -> None:
        """Register a tenant token; ``pool`` pins its WM pool."""
        self.sessions.register_tenant(tenant, token or tenant)
        if pool is not None:
            self.admission.set_tenant_pool(tenant, pool)

    def _housekeep(self, now_s: float) -> None:
        self.sessions.reap_expired(now_s)

    # -- session lifecycle ---------------------------------------------- #
    def open_session(self, token: Optional[str] = None,
                     application: Optional[str] = None,
                     database: str = "default"):
        return self.sessions.open(token, application, database)

    def close_session(self, session_id: str) -> None:
        self.sessions.close(session_id)

    # -- statements ----------------------------------------------------- #
    def submit(self, session_id: str, sql: str):
        """Submit asynchronously; returns the operation immediately."""
        session = self.sessions.get(session_id)
        obs = self.server.obs
        query_id = obs.next_query_id()
        op = self.operations.create(
            session.session_id, session.tenant, sql, query_id,
            submitted_s=session.driver.now_s)
        # pre-register so the operation is visible (and killable) in
        # sys.live_queries while it sits in the admission queue
        obs.live_queries.register(
            query_id, sql, database=session.driver.database,
            application=session.application,
            started_s=session.driver.now_s)
        obs.live_queries.update(query_id, phase="queued")
        obs.registry.counter("service.statements.submitted",
                             tenant=session.tenant).inc()
        worker = threading.Thread(
            target=self._run_operation, args=(op, session),
            name=f"svc-op-{query_id}", daemon=True)
        worker.start()
        return op

    def _run_operation(self, op, session) -> None:
        obs = self.server.obs
        pool = self.admission.route(session.tenant,
                                    session.application)
        self.operations.transition(op, "queued", pool=pool)
        obs.live_queries.update(op.query_id, pool=pool)
        admitted = False
        try:
            wait_s = self.admission.acquire(
                pool, op.query_id, arrival_s=session.driver.now_s)
            admitted = True
            with session.lock:
                # charge the modeled queue wait to the session clock
                session.driver.now_s += wait_s
                self.operations.transition(op, "running",
                                           admission_wait_s=wait_s)
                # the audit hook attributes this wait to the statement
                session.driver.pending_admission_wait_s = wait_s
                result = session.driver.execute(sql=op.sql,
                                                query_id=op.query_id)
                self.sessions.touch(session, session.driver.now_s)
                finish_s = session.driver.now_s
            self.operations.transition(
                op, "finished",
                column_names=list(result.column_names),
                rows=list(result.rows),
                rows_affected=result.rows_affected,
                from_cache=result.from_cache,
                plan_cached=result.plan_cached,
                reexecuted=result.reexecuted,
                total_s=(result.metrics.total_s
                         if result.metrics is not None else 0.0))
            self._finish_count(op, "finished")
        except QueryKilledError as error:
            self.operations.transition(op, "killed", error=str(error),
                                       error_code="killed")
            if not admitted:
                # the driver never saw this statement: close out the
                # live entry ourselves so the kill is audited
                obs.live_queries.finish(op.query_id, status="killed")
                self._audit_unadmitted(op, session, "killed", error)
            self._finish_count(op, "killed")
        except AdmissionTimeoutError as error:
            self.operations.transition(op, "error", error=str(error),
                                       error_code=error.code)
            obs.live_queries.finish(op.query_id, status="error")
            # timed out in the queue: Session.execute never ran, so
            # the audit hook could not see the denial
            self._audit_unadmitted(op, session, "denied", error)
            self._finish_count(op, "timeout")
        except Exception as error:   # never strand an operation
            code = (getattr(error, "code", "") or "execution"
                    if isinstance(error, HiveError) else "internal")
            self.operations.transition(op, "error", error=str(error),
                                       error_code=code)
            self._finish_count(op, "error")
        finally:
            if admitted:
                self.admission.release(pool, session.driver.now_s)

    def _finish_count(self, op, status: str) -> None:
        self.server.obs.registry.counter(
            "service.statements.finished", status=status).inc()

    def _audit_unadmitted(self, op, session, status: str,
                          error: Exception) -> None:
        """Audit a statement that died before reaching the driver.

        Killed-while-queued and admission-timeout operations never
        enter ``Session.execute``, so the post/failure hooks cannot
        fire — this is the only other writer of the audit log, keeping
        the one-row-per-statement invariant.
        """
        from ..obs.audit import AuditRecord
        self.server.obs.audit_log.append(AuditRecord(
            query_id=op.query_id, tenant=session.tenant,
            session=session.session_id,
            database=session.driver.database,
            application=session.application, statement=op.sql,
            operation="", status=status, error=str(error),
            at_s=session.driver.now_s))

    # -- client helpers (in-process protocol) --------------------------- #
    def execute(self, session_id: str, sql: str,
                timeout_s: float = 60.0):
        """Synchronous convenience: submit and wait for the result."""
        op = self.submit(session_id, sql)
        return self.operations.wait(op.op_id, timeout_s)

    def poll(self, op_id: str) -> dict:
        op = self.operations.get(op_id)
        payload = op.describe()
        live = self.server.obs.live_queries.get(op.query_id)
        if live is not None:
            payload.update(phase=live.phase, progress=live.progress,
                           eta_s=live.eta_s,
                           kill_requested=live.kill_requested)
        return payload

    def fetch(self, op_id: str, offset: int = 0,
              limit: int = 100) -> dict:
        return self.operations.fetch(op_id, offset, limit)

    def cancel(self, op_id: str, reason: str = "client cancel") -> bool:
        """KILL the operation, queued or running; False if terminal."""
        op = self.operations.get(op_id)
        if op.finished:
            return False
        return self.server.obs.live_queries.request_kill(
            op.query_id, reason=reason)

    # -- HTTP ----------------------------------------------------------- #
    def start_http(self, host: str = "127.0.0.1", port: int = 0):
        if self.http is None:
            from .endpoint import ServiceHttpServer
            self.http = ServiceHttpServer(self, host=host,
                                          port=port).start()
        return self.http

    def stop_http(self) -> None:
        http, self.http = self.http, None
        if http is not None:
            http.stop()

    def shutdown(self) -> None:
        """Stop HTTP, close every open session, detach hooks."""
        self.stop_http()
        for row in self.sessions.rows():
            self.sessions.close(row[0])
        obs = self.server.obs
        obs.live_queries.remove_kill_listener(self.admission.on_kill)
        if self._housekeep in self.server.housekeeping_hooks:
            self.server.housekeeping_hooks.remove(self._housekeep)
