"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Supports
line (``--``) and block (``/* */``) comments, single-quoted string
literals with ``''`` escaping, back-quoted identifiers, numeric literals
(integer / decimal / scientific) and all multi-character operators used
by the dialect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "ON", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "DISTINCT", "ALL",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "SEMI",
    "UNION", "INTERSECT", "EXCEPT", "EXISTS", "ASC", "DESC", "WITH",
    "OVER", "PARTITION", "ROWS", "ROW", "UNBOUNDED", "PRECEDING",
    "FOLLOWING", "CURRENT", "RANGE", "EXTRACT", "INTERVAL", "DATE",
    "TIMESTAMP", "TRUE", "FALSE", "CREATE", "TABLE", "EXTERNAL", "DROP",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "MERGE",
    "USING", "MATCHED", "PARTITIONED", "STORED", "TBLPROPERTIES",
    "MATERIALIZED", "VIEW", "REBUILD", "ALTER", "EXPLAIN", "ANALYZE",
    "COMPUTE", "STATISTICS", "FOR", "COLUMNS", "PRIMARY", "KEY", "FOREIGN",
    "REFERENCES", "UNIQUE", "CONSTRAINT", "SHOW", "TABLES", "DESCRIBE",
    "DATABASE", "DATABASES", "SCHEMA", "IF", "RESOURCE", "PLAN", "POOL",
    "RULE", "MOVE", "KILL", "TO", "ADD", "APPLICATION", "MAPPING",
    "DEFAULT", "ENABLE", "ACTIVATE", "GROUPING", "SETS", "ROLLUP", "CUBE",
    "DAY", "MONTH", "YEAR", "HOUR", "MINUTE", "SECOND", "QUARTER", "WEEK",
    "BY", "NULLS", "FIRST", "LAST", "HAVING", "DISABLE", "REWRITE",
    "START", "TRANSACTION", "BEGIN", "COMMIT", "ROLLBACK", "VALIDATE",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int
    line: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OP and self.value in ops

    def __repr__(self) -> str:
        return f"<{self.type.value}:{self.value}>"


_MULTI_OPS = ("<>", "!=", ">=", "<=", "||", "==")
_SINGLE_OPS = "+-*/%(),.;<>=!"


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        # comments
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment", i, line)
            line += text.count("\n", i, end)
            i = end + 2
            continue
        # string literal
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise ParseError("unterminated string literal", i, line)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i, line))
            i = j + 1
            continue
        # back-quoted identifier
        if ch == "`":
            j = text.find("`", i + 1)
            if j < 0:
                raise ParseError("unterminated quoted identifier", i, line)
            tokens.append(Token(TokenType.IDENT, text[i + 1:j], i, line))
            i = j + 1
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (text[j + 1].isdigit()
                                      or text[j + 1] in "+-"):
                        seen_exp = True
                        j += 2 if text[j + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:j], i, line))
            i = j
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i, line))
            else:
                tokens.append(Token(TokenType.IDENT, word, i, line))
            i = j
            continue
        # operators
        matched = False
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i, line))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenType.OP, ch, i, line))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i, line)
    tokens.append(Token(TokenType.EOF, "", n, line))
    return tokens
