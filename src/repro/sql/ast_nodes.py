"""Abstract syntax tree for the SQL dialect.

Plain dataclasses; the parser builds these and the analyzer converts them
to the logical algebra in :mod:`repro.plan.relnodes`.  Every node knows
how to render itself back to SQL-ish text (``unparse``) — the query
result cache keys on a normalized AST rendering (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


class Node:
    """Base class; subclasses are frozen dataclasses."""

    def unparse(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError(type(self).__name__)


# --------------------------------------------------------------------------- #
# expressions

class Expr(Node):
    pass


@dataclass(frozen=True)
class Literal(Expr):
    value: object          # int | float | str | bool | datetime.date | None

    def unparse(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        import datetime
        if isinstance(self.value, datetime.datetime):
            return f"TIMESTAMP '{self.value.isoformat(sep=' ')}'"
        if isinstance(self.value, datetime.date):
            return f"DATE '{self.value.isoformat()}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    qualifier: Optional[str] = None

    def unparse(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expr):
    qualifier: Optional[str] = None

    def unparse(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str                 # + - * / % = <> < <= > >= AND OR ||
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str                 # NOT, -
    operand: Expr

    def unparse(self) -> str:
        return f"({self.op} {self.operand.unparse()})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def unparse(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.unparse()} {suffix})"


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: str
    negated: bool = False

    def unparse(self) -> str:
        not_kw = "NOT " if self.negated else ""
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.unparse()} {not_kw}LIKE '{escaped}')"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def unparse(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return (f"({self.operand.unparse()} {not_kw}BETWEEN "
                f"{self.low.unparse()} AND {self.high.unparse()})")


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    values: tuple[Expr, ...]
    negated: bool = False

    def unparse(self) -> str:
        not_kw = "NOT " if self.negated else ""
        inner = ", ".join(v.unparse() for v in self.values)
        return f"({self.operand.unparse()} {not_kw}IN ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    operand: Expr
    query: "Query"
    negated: bool = False

    def unparse(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return (f"({self.operand.unparse()} {not_kw}IN "
                f"({self.query.unparse()}))")


@dataclass(frozen=True)
class Exists(Expr):
    query: "Query"
    negated: bool = False

    def unparse(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"({not_kw}EXISTS ({self.query.unparse()}))"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    query: "Query"

    def unparse(self) -> str:
        return f"({self.query.unparse()})"


@dataclass(frozen=True)
class WindowSpec(Node):
    partition_by: tuple[Expr, ...] = ()
    order_by: tuple["OrderItem", ...] = ()

    def unparse(self) -> str:
        parts = []
        if self.partition_by:
            cols = ", ".join(e.unparse() for e in self.partition_by)
            parts.append(f"PARTITION BY {cols}")
        if self.order_by:
            cols = ", ".join(o.unparse() for o in self.order_by)
            parts.append(f"ORDER BY {cols}")
        return " ".join(parts)


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str               # lower-cased
    args: tuple[Expr, ...] = ()
    distinct: bool = False
    window: Optional[WindowSpec] = None

    def unparse(self) -> str:
        inner = ", ".join(a.unparse() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        text = f"{self.name}({inner if self.args else '*' if self.name == 'count' and not self.args else inner})"
        if self.name == "count" and not self.args:
            text = "count(*)"
        if self.window is not None:
            text += f" OVER ({self.window.unparse()})"
        return text


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    type_name: str
    type_params: tuple[int, ...] = ()

    def unparse(self) -> str:
        params = (f"({', '.join(str(p) for p in self.type_params)})"
                  if self.type_params else "")
        return f"CAST({self.operand.unparse()} AS {self.type_name}{params})"


@dataclass(frozen=True)
class CaseExpr(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    else_expr: Optional[Expr] = None

    def unparse(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.unparse()} THEN {result.unparse()}")
        if self.else_expr is not None:
            parts.append(f"ELSE {self.else_expr.unparse()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class ExtractExpr(Expr):
    unit: str               # YEAR, MONTH, DAY, ...
    operand: Expr

    def unparse(self) -> str:
        return f"EXTRACT({self.unit} FROM {self.operand.unparse()})"


@dataclass(frozen=True)
class IntervalLiteral(Expr):
    value: int
    unit: str               # DAY, MONTH, YEAR, ...

    def unparse(self) -> str:
        return f"INTERVAL '{self.value}' {self.unit}"


# --------------------------------------------------------------------------- #
# query structure

@dataclass(frozen=True)
class OrderItem(Node):
    expr: Expr
    ascending: bool = True

    def unparse(self) -> str:
        return f"{self.expr.unparse()}{'' if self.ascending else ' DESC'}"


@dataclass(frozen=True)
class SelectItem(Node):
    expr: Expr
    alias: Optional[str] = None

    def unparse(self) -> str:
        if self.alias:
            return f"{self.expr.unparse()} AS {self.alias}"
        return self.expr.unparse()


class TableRef(Node):
    pass


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str               # possibly db-qualified
    alias: Optional[str] = None

    def unparse(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SubqueryRef(TableRef):
    query: "Query"
    alias: str

    def unparse(self) -> str:
        return f"({self.query.unparse()}) {self.alias}"


@dataclass(frozen=True)
class JoinRef(TableRef):
    left: TableRef
    right: TableRef
    kind: str               # inner, left, right, full, cross
    condition: Optional[Expr] = None

    def unparse(self) -> str:
        kw = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN",
              "full": "FULL JOIN", "cross": "CROSS JOIN"}[self.kind]
        text = f"{self.left.unparse()} {kw} {self.right.unparse()}"
        if self.condition is not None:
            text += f" ON {self.condition.unparse()}"
        return text


@dataclass(frozen=True)
class QuerySpec(Node):
    """One SELECT block."""

    select_items: tuple[SelectItem, ...]
    from_refs: tuple[TableRef, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    grouping_sets: Optional[tuple[tuple[Expr, ...], ...]] = None
    having: Optional[Expr] = None
    distinct: bool = False

    def unparse(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.unparse() for i in self.select_items))
        if self.from_refs:
            parts.append("FROM")
            parts.append(", ".join(r.unparse() for r in self.from_refs))
        if self.where is not None:
            parts.append(f"WHERE {self.where.unparse()}")
        if self.grouping_sets is not None:
            sets = ", ".join(
                "(" + ", ".join(e.unparse() for e in gs) + ")"
                for gs in self.grouping_sets)
            parts.append(f"GROUP BY GROUPING SETS ({sets})")
        elif self.group_by:
            parts.append("GROUP BY " + ", ".join(
                e.unparse() for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.unparse()}")
        return " ".join(parts)


@dataclass(frozen=True)
class SetOperation(Node):
    op: str                 # union, intersect, except
    all: bool
    left: Union[QuerySpec, "SetOperation"]
    right: Union[QuerySpec, "SetOperation"]

    def unparse(self) -> str:
        kw = self.op.upper() + (" ALL" if self.all else "")
        return f"({self.left.unparse()}) {kw} ({self.right.unparse()})"


@dataclass(frozen=True)
class CommonTableExpr(Node):
    name: str
    query: "Query"

    def unparse(self) -> str:
        return f"{self.name} AS ({self.query.unparse()})"


@dataclass(frozen=True)
class Query(Node):
    """A full query: optional CTEs, a body, ordering and limit."""

    body: Union[QuerySpec, SetOperation]
    ctes: tuple[CommonTableExpr, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    def unparse(self) -> str:
        parts = []
        if self.ctes:
            parts.append("WITH " + ", ".join(c.unparse() for c in self.ctes))
        parts.append(self.body.unparse())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(
                o.unparse() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


# --------------------------------------------------------------------------- #
# statements

class Statement(Node):
    pass


@dataclass(frozen=True)
class SelectStatement(Statement):
    query: Query

    def unparse(self) -> str:
        return self.query.unparse()


@dataclass(frozen=True)
class ColumnDef(Node):
    name: str
    type_name: str
    type_params: tuple[int, ...] = ()
    not_null: bool = False

    def unparse(self) -> str:
        params = (f"({','.join(str(p) for p in self.type_params)})"
                  if self.type_params else "")
        nn = " NOT NULL" if self.not_null else ""
        return f"{self.name} {self.type_name}{params}{nn}"


@dataclass(frozen=True)
class ForeignKeyDef(Node):
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    partition_columns: tuple[ColumnDef, ...] = ()
    external: bool = False
    file_format: str = "orc"
    storage_handler: Optional[str] = None
    properties: tuple[tuple[str, str], ...] = ()
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKeyDef, ...] = ()
    unique_keys: tuple[tuple[str, ...], ...] = ()
    if_not_exists: bool = False
    as_query: Optional[Query] = None

    def unparse(self) -> str:
        cols = ", ".join(c.unparse() for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"


@dataclass(frozen=True)
class CreateMaterializedView(Statement):
    name: str
    query: Query
    properties: tuple[tuple[str, str], ...] = ()
    stored_by: Optional[str] = None
    disable_rewrite: bool = False

    def unparse(self) -> str:
        return (f"CREATE MATERIALIZED VIEW {self.name} AS "
                f"{self.query.unparse()}")


@dataclass(frozen=True)
class AlterMaterializedViewRebuild(Statement):
    name: str

    def unparse(self) -> str:
        return f"ALTER MATERIALIZED VIEW {self.name} REBUILD"


@dataclass(frozen=True)
class AlterTableRename(Statement):
    name: str
    new_name: str

    def unparse(self) -> str:
        return f"ALTER TABLE {self.name} RENAME TO {self.new_name}"


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False
    is_materialized_view: bool = False

    def unparse(self) -> str:
        kind = "MATERIALIZED VIEW" if self.is_materialized_view else "TABLE"
        return f"DROP {kind} {self.name}"


@dataclass(frozen=True)
class CreateDatabase(Statement):
    name: str
    if_not_exists: bool = False

    def unparse(self) -> str:
        return f"CREATE DATABASE {self.name}"


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    partition_spec: tuple[tuple[str, object], ...] = ()
    columns: tuple[str, ...] = ()
    values: Optional[tuple[tuple[Expr, ...], ...]] = None
    query: Optional[Query] = None
    overwrite: bool = False

    def unparse(self) -> str:
        return f"INSERT INTO {self.table} ..."


@dataclass(frozen=True)
class MultiInsert(Statement):
    """Hive's multi-insert: FROM src INSERT INTO t1 SELECT ... INSERT

    INTO t2 SELECT ... — one source scan feeding several targets inside
    a single transaction (paper §3.2)."""

    source: TableRef
    branches: tuple["Insert", ...]

    def unparse(self) -> str:
        inserts = " ".join(b.unparse() for b in self.branches)
        return f"FROM {self.source.unparse()} {inserts}"


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None

    def unparse(self) -> str:
        sets = ", ".join(f"{c} = {e.unparse()}" for c, e in self.assignments)
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where.unparse()}"
        return text


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None

    def unparse(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where.unparse()}"
        return text


@dataclass(frozen=True)
class MergeWhenClause(Node):
    matched: bool
    action: str             # update | delete | insert
    condition: Optional[Expr] = None
    assignments: tuple[tuple[str, Expr], ...] = ()
    insert_values: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Merge(Statement):
    target: str
    target_alias: Optional[str]
    source: TableRef
    condition: Expr
    when_clauses: tuple[MergeWhenClause, ...] = ()

    def unparse(self) -> str:
        return f"MERGE INTO {self.target} ..."


@dataclass(frozen=True)
class Explain(Statement):
    statement: Statement
    #: EXPLAIN ANALYZE: execute, then annotate the plan with observed
    #: per-operator rows, IO and the virtual-time breakdown
    analyze: bool = False
    #: EXPLAIN VALIDATE: compile with the plan-invariant checker forced
    #: on and report per-stage verdicts instead of the plan
    validate: bool = False
    #: EXPLAIN HISTORY: render the query store's per-plan-hash stats
    #: and last plan diff for the statement's fingerprint
    history: bool = False
    #: EXPLAIN LINEAGE: compile (don't execute) and render the
    #: column-level dependency edges of the optimized plan
    lineage: bool = False

    def unparse(self) -> str:
        keyword = "EXPLAIN"
        if self.analyze:
            keyword = "EXPLAIN ANALYZE"
        elif self.validate:
            keyword = "EXPLAIN VALIDATE"
        elif self.history:
            keyword = "EXPLAIN HISTORY"
        elif self.lineage:
            keyword = "EXPLAIN LINEAGE"
        return f"{keyword} {self.statement.unparse()}"


@dataclass(frozen=True)
class AnalyzeTable(Statement):
    table: str
    for_columns: bool = False

    def unparse(self) -> str:
        suffix = " FOR COLUMNS" if self.for_columns else ""
        return f"ANALYZE TABLE {self.table} COMPUTE STATISTICS{suffix}"


@dataclass(frozen=True)
class SetConfig(Statement):
    key: str
    value: str

    def unparse(self) -> str:
        return f"SET {self.key}={self.value}"


@dataclass(frozen=True)
class ShowTables(Statement):
    def unparse(self) -> str:
        return "SHOW TABLES"


@dataclass(frozen=True)
class ShowDatabases(Statement):
    def unparse(self) -> str:
        return "SHOW DATABASES"


@dataclass(frozen=True)
class ShowPartitions(Statement):
    table: str

    def unparse(self) -> str:
        return f"SHOW PARTITIONS {self.table}"


@dataclass(frozen=True)
class ShowMaterializedViews(Statement):
    def unparse(self) -> str:
        return "SHOW MATERIALIZED VIEWS"


@dataclass(frozen=True)
class DescribeTable(Statement):
    table: str

    def unparse(self) -> str:
        return f"DESCRIBE {self.table}"


@dataclass(frozen=True)
class StartTransaction(Statement):
    """START TRANSACTION / BEGIN (multi-statement transactions, §9)."""

    def unparse(self) -> str:
        return "START TRANSACTION"


@dataclass(frozen=True)
class Commit(Statement):
    def unparse(self) -> str:
        return "COMMIT"


@dataclass(frozen=True)
class Rollback(Statement):
    def unparse(self) -> str:
        return "ROLLBACK"


@dataclass(frozen=True)
class KillQuery(Statement):
    """``KILL QUERY <id>`` — terminate a live query (HS2 UI kill)."""

    query_id: int

    def unparse(self) -> str:
        return f"KILL QUERY {self.query_id}"


# -- workload management DDL (Section 5.2) ---------------------------------- #

@dataclass(frozen=True)
class CreateResourcePlan(Statement):
    name: str

    def unparse(self) -> str:
        return f"CREATE RESOURCE PLAN {self.name}"


@dataclass(frozen=True)
class CreatePool(Statement):
    plan: str
    pool: str
    alloc_fraction: float
    query_parallelism: int

    def unparse(self) -> str:
        return (f"CREATE POOL {self.plan}.{self.pool} WITH "
                f"alloc_fraction={self.alloc_fraction}, "
                f"query_parallelism={self.query_parallelism}")


@dataclass(frozen=True)
class CreateTriggerRule(Statement):
    name: str
    plan: str
    metric: str             # e.g. total_runtime, rate(faults.injected)
    threshold: float
    action: str             # MOVE | KILL
    action_arg: Optional[str] = None
    #: trailing window for rate(...) alert rules ("OVER 60s"); 0 keeps
    #: the workload manager's default window
    over_s: float = 0.0

    def unparse(self) -> str:
        arg = f" {self.action_arg}" if self.action_arg else ""
        over = f" OVER {self.over_s:g}s" if self.over_s else ""
        return (f"CREATE RULE {self.name} IN {self.plan} WHEN "
                f"{self.metric} > {self.threshold}{over} THEN "
                f"{self.action}{arg}")


@dataclass(frozen=True)
class AddRuleToPool(Statement):
    rule: str
    pool: str

    def unparse(self) -> str:
        return f"ADD RULE {self.rule} TO {self.pool}"


@dataclass(frozen=True)
class CreateApplicationMapping(Statement):
    application: str
    plan: str
    pool: str

    def unparse(self) -> str:
        return (f"CREATE APPLICATION MAPPING {self.application} IN "
                f"{self.plan} TO {self.pool}")


@dataclass(frozen=True)
class AlterPlan(Statement):
    plan: str
    default_pool: Optional[str] = None
    enable_activate: bool = False

    def unparse(self) -> str:
        if self.default_pool is not None:
            return f"ALTER PLAN {self.plan} SET DEFAULT POOL = {self.default_pool}"
        return f"ALTER RESOURCE PLAN {self.plan} ENABLE ACTIVATE"


# --------------------------------------------------------------------------- #
# traversal helpers

def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    children: Sequence[Expr] = ()
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, (IsNull, Like)):
        children = (expr.operand,)
    elif isinstance(expr, Between):
        children = (expr.operand, expr.low, expr.high)
    elif isinstance(expr, InList):
        children = (expr.operand, *expr.values)
    elif isinstance(expr, InSubquery):
        children = (expr.operand,)
    elif isinstance(expr, FuncCall):
        children = expr.args
    elif isinstance(expr, Cast):
        children = (expr.operand,)
    elif isinstance(expr, CaseExpr):
        flat = [e for pair in expr.whens for e in pair]
        if expr.else_expr is not None:
            flat.append(expr.else_expr)
        children = tuple(flat)
    elif isinstance(expr, ExtractExpr):
        children = (expr.operand,)
    for child in children:
        yield from walk_expr(child)


def contains_aggregate(expr: Expr, aggregate_names: frozenset[str]) -> bool:
    return any(isinstance(e, FuncCall) and e.window is None
               and e.name in aggregate_names for e in walk_expr(expr))
