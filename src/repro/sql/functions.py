"""Function registry: names, arities and result-type inference.

Evaluation lives in :mod:`repro.exec.expr_eval`; this module is the
shared metadata the analyzer uses for type checking.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..common.types import (BIGINT, BOOLEAN, DOUBLE, DATE, INT, STRING,
                            TIMESTAMP, DataType, common_type)
from ..errors import AnalysisError

#: aggregate function names (lower case)
AGGREGATE_FUNCTIONS = frozenset({
    "sum", "count", "min", "max", "avg", "stddev", "variance",
})

#: window-capable ranking functions
RANKING_FUNCTIONS = frozenset({"rank", "dense_rank", "row_number", "ntile"})


def aggregate_result_type(func: str, arg_type: DataType | None) -> DataType:
    if func == "count":
        return BIGINT
    if func in ("avg", "stddev", "variance"):
        return DOUBLE
    if func in ("sum",):
        if arg_type is None:
            raise AnalysisError("sum requires an argument")
        return BIGINT if arg_type.is_integral else DOUBLE
    if func in ("min", "max"):
        if arg_type is None:
            raise AnalysisError(f"{func} requires an argument")
        return arg_type
    raise AnalysisError(f"unknown aggregate function: {func}")


def _same_as_first(args: Sequence[DataType]) -> DataType:
    return args[0]


def _common(args: Sequence[DataType]) -> DataType:
    result = args[0]
    for arg in args[1:]:
        result = common_type(result, arg)
    return result


def _fixed(dtype: DataType) -> Callable[[Sequence[DataType]], DataType]:
    return lambda args: dtype


#: scalar functions: name -> (min_args, max_args, result_type_fn)
SCALAR_FUNCTIONS: dict[str, tuple[int, int, Callable]] = {
    "abs": (1, 1, _same_as_first),
    "round": (1, 2, _same_as_first),
    "floor": (1, 1, _fixed(BIGINT)),
    "ceil": (1, 1, _fixed(BIGINT)),
    "sqrt": (1, 1, _fixed(DOUBLE)),
    "ln": (1, 1, _fixed(DOUBLE)),
    "exp": (1, 1, _fixed(DOUBLE)),
    "power": (2, 2, _fixed(DOUBLE)),
    "mod": (2, 2, _same_as_first),
    "upper": (1, 1, _fixed(STRING)),
    "lower": (1, 1, _fixed(STRING)),
    "length": (1, 1, _fixed(INT)),
    "trim": (1, 1, _fixed(STRING)),
    "substr": (2, 3, _fixed(STRING)),
    "substring": (2, 3, _fixed(STRING)),
    "concat": (1, 99, _fixed(STRING)),
    "coalesce": (1, 99, _common),
    "nullif": (2, 2, _same_as_first),
    "if": (3, 3, lambda args: _common(args[1:])),
    "year": (1, 1, _fixed(INT)),
    "month": (1, 1, _fixed(INT)),
    "day": (1, 1, _fixed(INT)),
    "quarter": (1, 1, _fixed(INT)),
    "date_add": (2, 2, _fixed(DATE)),
    "date_sub": (2, 2, _fixed(DATE)),
    "to_date": (1, 1, _fixed(DATE)),
    "greatest": (1, 99, _common),
    "least": (1, 99, _common),
    "hash": (1, 99, _fixed(BIGINT)),
    # non-deterministic / runtime-constant functions: results may not be
    # cached (Section 4.3)
    "rand": (0, 1, _fixed(DOUBLE)),
    "current_date": (0, 0, _fixed(DATE)),
    "current_timestamp": (0, 0, _fixed(TIMESTAMP)),
}

#: functions whose results may differ between executions — a query that
#: calls any of these is not eligible for the result cache.
NON_CACHEABLE_FUNCTIONS = frozenset({
    "rand", "current_date", "current_timestamp",
})


def scalar_result_type(name: str, arg_types: Sequence[DataType]) -> DataType:
    try:
        min_args, max_args, type_fn = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise AnalysisError(f"unknown function: {name}") from None
    if not min_args <= len(arg_types) <= max_args:
        raise AnalysisError(
            f"{name} expects {min_args}..{max_args} arguments, "
            f"got {len(arg_types)}")
    return type_fn(arg_types)


def is_window_function(name: str) -> bool:
    return name in RANKING_FUNCTIONS or name in AGGREGATE_FUNCTIONS
