"""Semantic analyzer: AST → logical plan.

Responsibilities (mirroring HS2's query preparation, Figure 2):

* name resolution against the HMS catalog, with scopes for joins, CTEs
  and subqueries,
* type checking and coercion via the type lattice,
* subquery translation: ``IN``/``EXISTS`` (correlated or not) become
  semi/anti joins; scalar subqueries become (grouped) left joins —
  the decorrelation the paper credits to the Calcite plan representation,
* aggregation planning (pre-projection → Aggregate → post-projection),
  GROUPING SETS, HAVING, window functions,
* profile gating: ORDER BY on unselected columns and non-equi correlation
  raise :class:`UnsupportedFeatureError` on the legacy profile
  (Figure 7's "only 50 of 99 queries").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.rows import Column, Schema
from ..common.types import (BIGINT, BOOLEAN, DATE, DOUBLE, INT, STRING,
                            DataType, common_type, infer_literal_type,
                            type_from_name)
from ..config import HiveConf
from ..errors import AnalysisError, UnsupportedFeatureError
from ..metastore.hms import HiveMetastore
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from . import ast_nodes as ast
from .functions import (AGGREGATE_FUNCTIONS, RANKING_FUNCTIONS,
                        aggregate_result_type, scalar_result_type)

_EXTRACT_OPS = {
    "YEAR": "EXTRACT_YEAR", "MONTH": "EXTRACT_MONTH", "DAY": "EXTRACT_DAY",
    "QUARTER": "EXTRACT_QUARTER", "WEEK": "EXTRACT_WEEK",
    "HOUR": "EXTRACT_HOUR", "MINUTE": "EXTRACT_MINUTE",
    "SECOND": "EXTRACT_SECOND",
}


# --------------------------------------------------------------------------- #
# scopes

@dataclass
class ScopeEntry:
    alias: Optional[str]          # lower-cased table alias or name
    schema: Schema
    offset: int


class Scope:
    """Visible columns at one query level; ``parent`` is the outer query."""

    def __init__(self, entries: Sequence[ScopeEntry],
                 parent: Optional["Scope"] = None):
        self.entries = list(entries)
        self.parent = parent

    @property
    def width(self) -> int:
        return sum(len(e.schema) for e in self.entries)

    def output_schema(self) -> Schema:
        columns: list[Column] = []
        for entry in self.entries:
            columns.extend(entry.schema.columns)
        return Schema(_dedupe_names(columns))

    def resolve_local(self, qualifier: Optional[str],
                      name: str) -> Optional[tuple[int, DataType]]:
        """Resolve in this scope only; None when not found."""
        name_l = name.lower()
        matches: list[tuple[int, DataType]] = []
        for entry in self.entries:
            if qualifier is not None:
                q = qualifier.lower()
                if entry.alias != q and not (
                        entry.alias is None and q in ("",)):
                    # also allow db-qualified table name match
                    if entry.alias is None or not entry.alias.endswith(q):
                        continue
            if name_l in entry.schema:
                idx = entry.schema.index_of(name_l)
                matches.append((entry.offset + idx,
                                entry.schema[idx].dtype))
        if not matches:
            return None
        if len(matches) > 1:
            raise AnalysisError(f"ambiguous column reference: {name}")
        return matches[0]

    def resolve(self, qualifier: Optional[str], name: str,
                ) -> tuple[int, DataType]:
        result = self.resolve_local(qualifier, name)
        if result is None:
            raise AnalysisError(
                f"unknown column: "
                f"{qualifier + '.' if qualifier else ''}{name}")
        return result

    def can_resolve(self, qualifier: Optional[str], name: str) -> bool:
        try:
            return self.resolve_local(qualifier, name) is not None
        except AnalysisError:
            return True  # ambiguous still means "resolvable here"


def _dedupe_names(columns: list[Column]) -> list[Column]:
    seen: set[str] = set()
    out = []
    for col in columns:
        name = col.name
        suffix = 0
        while name.lower() in seen:
            suffix += 1
            name = f"{col.name}_{suffix}"
        seen.add(name.lower())
        out.append(col.renamed(name))
    return out


# --------------------------------------------------------------------------- #
# analyzer

class Analyzer:
    """Stateless facade; one instance per session."""

    def __init__(self, hms: HiveMetastore, conf: HiveConf,
                 default_db: str = "default"):
        self.hms = hms
        self.conf = conf
        self.default_db = default_db
        self._scan_counter = 0

    # -- public entry points -------------------------------------------------- #
    def analyze_query(self, query: ast.Query,
                      outer: Optional[Scope] = None,
                      cte_env: Optional[dict] = None) -> rel.RelNode:
        cte_env = dict(cte_env or {})
        for cte in query.ctes:
            cte_env[cte.name.lower()] = cte.query
        body = query.body
        if isinstance(body, ast.QuerySpec):
            return self._analyze_spec(body, query.order_by, query.limit,
                                      outer, cte_env)
        plan = self._analyze_setop(body, outer, cte_env)
        if query.order_by:
            plan = self._order_by_names(plan, query.order_by)
        if query.limit is not None:
            plan = self._apply_limit(plan, query.limit)
        return plan

    def convert_predicate(self, expr: ast.Expr, schema: Schema,
                          alias: Optional[str] = None) -> rex.RexNode:
        """Convert a standalone predicate over one table (UPDATE/DELETE)."""
        scope = Scope([ScopeEntry(alias, schema, 0)])
        converter = _ExprConverter(self, scope, None, {})
        condition = converter.convert(expr)
        if condition.dtype != BOOLEAN:
            raise AnalysisError("predicate must be boolean")
        return condition

    def convert_scalar(self, expr: ast.Expr, schema: Schema,
                       alias: Optional[str] = None) -> rex.RexNode:
        scope = Scope([ScopeEntry(alias, schema, 0)])
        return _ExprConverter(self, scope, None, {}).convert(expr)

    # -- set operations --------------------------------------------------------- #
    def _analyze_setop(self, body, outer, cte_env) -> rel.RelNode:
        if isinstance(body, ast.QuerySpec):
            return self._analyze_spec(body, (), None, outer, cte_env)
        left = self._analyze_setop(body.left, outer, cte_env)
        right = self._analyze_setop(body.right, outer, cte_env)
        left, right = self._align_setop_schemas(left, right)
        if body.op == "union":
            plan: rel.RelNode = rel.Union((left, right), all=body.all)
            if not body.all:
                plan = self._distinct(plan)
            return plan
        return rel.SetOp(body.op, left, right, all=body.all)

    def _align_setop_schemas(self, left: rel.RelNode, right: rel.RelNode):
        ls, rs = left.schema, right.schema
        if len(ls) != len(rs):
            raise AnalysisError(
                f"set operation inputs have {len(ls)} vs {len(rs)} columns")
        target_types = [common_type(a.dtype, b.dtype)
                        for a, b in zip(ls, rs)]
        left = _cast_to(left, target_types)
        right = _cast_to(right, target_types)
        return left, right

    # -- SELECT block ------------------------------------------------------------ #
    def _analyze_spec(self, spec: ast.QuerySpec,
                      order_by: tuple[ast.OrderItem, ...],
                      limit: Optional[int],
                      outer: Optional[Scope],
                      cte_env: dict) -> rel.RelNode:
        plan, scope = self._analyze_from(spec.from_refs, outer, cte_env)

        # WHERE: split top-level conjuncts; IN/EXISTS become joins
        if spec.where is not None:
            plan = self._apply_where(plan, scope, spec.where, cte_env)
            scope = _rebased_scope(scope, plan)

        has_aggs = self._needs_aggregation(spec, order_by)
        post_map: dict[str, tuple[int, DataType]] = {}
        group_width = 0

        if has_aggs:
            plan, post_map, group_width = self._build_aggregate(
                plan, scope, spec, cte_env)
            current_scope = None
        else:
            current_scope = scope

        # window functions
        window_calls = self._collect_window_calls(spec, order_by)
        if window_calls:
            if not self.conf.support_window_functions:
                raise UnsupportedFeatureError(
                    "window functions are not supported by profile "
                    f"{self.conf.name}")
            plan, post_map = self._build_window(
                plan, current_scope, post_map, window_calls, has_aggs)

        post_mode = has_aggs or bool(window_calls)

        # HAVING
        if spec.having is not None:
            if not has_aggs:
                raise AnalysisError("HAVING requires aggregation")
            converter = _ExprConverter(self, None, plan.schema, post_map)
            condition = converter.convert(spec.having)
            plan = rel.Filter(plan, condition)

        # SELECT list (may widen the plan with scalar-subquery joins)
        select_exprs, select_names, plan = self._convert_select_items(
            spec, plan, current_scope, post_map, post_mode, cte_env)
        projected = rel.Project(plan, tuple(select_exprs),
                                tuple(select_names))

        if spec.distinct:
            projected = self._distinct(projected)

        # ORDER BY / LIMIT
        final = self._apply_order_by(
            projected, plan, order_by, select_exprs, select_names,
            current_scope, post_map, post_mode, cte_env)
        if limit is not None:
            final = self._apply_limit(final, limit)
        return final

    # -- FROM --------------------------------------------------------------------- #
    def _analyze_from(self, refs: tuple[ast.TableRef, ...],
                      outer: Optional[Scope],
                      cte_env: dict) -> tuple[rel.RelNode, Scope]:
        if not refs:
            schema = Schema([Column("__dummy__", INT, nullable=False)])
            plan = rel.Values(schema, ((0,),))
            return plan, Scope([ScopeEntry(None, schema, 0)], parent=outer)
        plan = None
        entries: list[ScopeEntry] = []
        for ref in refs:
            sub_plan, sub_entries = self._analyze_table_ref(
                ref, outer, cte_env,
                offset=0 if plan is None else _scope_width(entries))
            if plan is None:
                plan = sub_plan
                entries = sub_entries
            else:
                plan = rel.Join(plan, sub_plan, "inner", None)
                entries = entries + sub_entries
        return plan, Scope(entries, parent=outer)

    def _analyze_table_ref(self, ref: ast.TableRef, outer, cte_env,
                           offset: int
                           ) -> tuple[rel.RelNode, list[ScopeEntry]]:
        if isinstance(ref, ast.NamedTable):
            name_l = ref.name.lower()
            if name_l in cte_env and "." not in name_l:
                inner = self.analyze_query(cte_env[name_l], None,
                                           {k: v for k, v in cte_env.items()
                                            if k != name_l})
                alias = (ref.alias or ref.name).lower()
                return inner, [ScopeEntry(alias, inner.schema, offset)]
            table = self.hms.get_table(ref.name, self.default_db)
            self._scan_counter += 1
            scan = rel.TableScan(table.qualified_name, table.full_schema(),
                                 scan_id=self._scan_counter)
            alias = (ref.alias or table.name).lower()
            return scan, [ScopeEntry(alias, scan.schema, offset)]
        if isinstance(ref, ast.SubqueryRef):
            inner = self.analyze_query(ref.query, None, cte_env)
            return inner, [ScopeEntry(ref.alias.lower(), inner.schema,
                                      offset)]
        if isinstance(ref, ast.JoinRef):
            left_plan, left_entries = self._analyze_table_ref(
                ref.left, outer, cte_env, offset)
            right_plan, right_entries = self._analyze_table_ref(
                ref.right, outer, cte_env,
                offset + len(left_plan.schema))
            scope = Scope(left_entries + right_entries, parent=outer)
            condition = None
            if ref.condition is not None:
                converter = _ExprConverter(self, scope, None, {})
                condition = converter.convert(ref.condition)
                if condition.dtype != BOOLEAN:
                    raise AnalysisError("join condition must be boolean")
            kind = "inner" if ref.kind == "cross" else ref.kind
            join = rel.Join(left_plan, right_plan, kind, condition)
            return join, left_entries + right_entries
        raise AnalysisError(f"unsupported table reference {ref!r}")

    # -- WHERE with subqueries ------------------------------------------------------- #
    def _apply_where(self, plan: rel.RelNode, scope: Scope,
                     where: ast.Expr, cte_env: dict) -> rel.RelNode:
        conjuncts = _split_and(where)
        plain: list[ast.Expr] = []
        for conjunct in conjuncts:
            inner, negated = _strip_not(conjunct)
            if isinstance(inner, ast.Exists):
                plan = self._apply_exists(plan, scope, inner,
                                          negated != inner.negated, cte_env)
                scope = _rebased_scope(scope, plan)
            elif isinstance(inner, ast.InSubquery):
                plan = self._apply_in_subquery(
                    plan, scope, inner, negated != inner.negated, cte_env)
                scope = _rebased_scope(scope, plan)
            else:
                plain.append(conjunct)
        if plain:
            converter = _ExprConverter(self, scope, None, {},
                                       cte_env=cte_env, plan_holder=[plan])
            condition_parts = [converter.convert(c) for c in plain]
            plan = converter.plan_holder[0]
            condition = rex.make_and(condition_parts)
            if condition is not None:
                if condition.dtype != BOOLEAN:
                    raise AnalysisError("WHERE must be boolean")
                plan = rel.Filter(plan, condition)
        return plan

    def _split_subquery_where(self, spec: ast.QuerySpec, local_scope: Scope,
                              ) -> tuple[list[ast.Expr], list[ast.Expr]]:
        """Split the subquery WHERE into local and correlated conjuncts.

        A conjunct is correlated when some column reference does not
        resolve in the subquery's own scope.
        """
        local: list[ast.Expr] = []
        correlated: list[ast.Expr] = []
        if spec.where is None:
            return local, correlated
        for conjunct in _split_and(spec.where):
            is_correlated = False
            for node in ast.walk_expr(conjunct):
                if isinstance(node, ast.ColumnRef):
                    if local_scope.resolve_local(node.qualifier,
                                                 node.name) is None:
                        is_correlated = True
                        break
            (correlated if is_correlated else local).append(conjunct)
        return local, correlated

    def _check_correlation_shape(self, condition: rex.RexNode) -> None:
        """Legacy profile rejects non-equi correlation (Figure 7)."""
        if self.conf.support_nonequi_correlation:
            return
        for conjunct in rex.conjunctions(condition):
            if not (isinstance(conjunct, rex.RexCall)
                    and conjunct.op == "="):
                raise UnsupportedFeatureError(
                    "correlated subqueries with non-equi conditions are "
                    f"not supported by profile {self.conf.name}")

    def _apply_exists(self, plan, scope, node: ast.Exists, negated: bool,
                      cte_env: dict) -> rel.RelNode:
        spec = _only_spec(node.query)
        inner_plan, inner_scope = self._analyze_from(
            spec.from_refs, scope, cte_env)
        local, correlated = self._split_subquery_where(spec, inner_scope)
        if local:
            inner_plan = self._filter_with(inner_plan, inner_scope, local,
                                           cte_env)
        condition = self._correlated_condition(
            scope, inner_scope, plan, inner_plan, correlated)
        if condition is not None:
            self._check_correlation_shape(condition)
        return rel.Join(plan, inner_plan, "anti" if negated else "semi",
                        condition)

    def _apply_in_subquery(self, plan, scope, node: ast.InSubquery,
                           negated: bool, cte_env: dict) -> rel.RelNode:
        spec = _only_spec(node.query)
        operand = _ExprConverter(self, scope, None, {}).convert(node.operand)
        if spec.group_by or spec.having or self._spec_has_aggregates(spec):
            # aggregated inner: analyze standalone (must be uncorrelated)
            inner_plan = self.analyze_query(node.query, None, cte_env)
            if len(inner_plan.schema) != 1:
                raise AnalysisError("IN subquery must return one column")
            in_value = rex.RexInputRef(len(plan.schema),
                                       inner_plan.schema[0].dtype)
            condition = rex.make_call("=", operand, in_value)
            return rel.Join(plan, inner_plan,
                            "anti" if negated else "semi", condition)
        inner_plan, inner_scope = self._analyze_from(
            spec.from_refs, scope, cte_env)
        local, correlated = self._split_subquery_where(spec, inner_scope)
        if local:
            inner_plan = self._filter_with(inner_plan, inner_scope, local,
                                           cte_env)
        if len(spec.select_items) != 1 or isinstance(
                spec.select_items[0].expr, ast.Star):
            raise AnalysisError("IN subquery must select exactly one column")
        combined = Scope(
            scope.entries + [ScopeEntry(e.alias, e.schema,
                                        e.offset + len(plan.schema))
                             for e in inner_scope.entries])
        in_value = _ExprConverter(self, combined, None, {}).convert(
            ast.ColumnRef(spec.select_items[0].alias) if False
            else spec.select_items[0].expr)
        eq = rex.make_call("=", operand, in_value)
        corr = self._correlated_condition(scope, inner_scope, plan,
                                          inner_plan, correlated)
        if corr is not None:
            self._check_correlation_shape(corr)
        condition = rex.make_and([eq] + rex.conjunctions(corr))
        return rel.Join(plan, inner_plan, "anti" if negated else "semi",
                        condition)

    def _correlated_condition(self, outer_scope, inner_scope, outer_plan,
                              inner_plan, correlated: list[ast.Expr]
                              ) -> Optional[rex.RexNode]:
        if not correlated:
            return None
        combined = Scope(
            outer_scope.entries
            + [ScopeEntry(e.alias, e.schema,
                          e.offset + len(outer_plan.schema))
               for e in inner_scope.entries])
        converter = _ExprConverter(self, combined, None, {})
        return rex.make_and([converter.convert(c) for c in correlated])

    def _filter_with(self, plan, scope, conjuncts: list[ast.Expr],
                     cte_env: dict) -> rel.RelNode:
        converter = _ExprConverter(self, scope, None, {}, cte_env=cte_env,
                                   plan_holder=[plan])
        parts = [converter.convert(c) for c in conjuncts]
        plan = converter.plan_holder[0]
        condition = rex.make_and(parts)
        return rel.Filter(plan, condition) if condition is not None else plan

    # -- aggregation ------------------------------------------------------------------ #
    def _needs_aggregation(self, spec: ast.QuerySpec, order_by) -> bool:
        if spec.group_by or spec.grouping_sets or spec.having is not None:
            return True
        return self._spec_has_aggregates(spec) or any(
            ast.contains_aggregate(o.expr, AGGREGATE_FUNCTIONS)
            and not _is_windowed(o.expr)
            for o in order_by)

    def _spec_has_aggregates(self, spec: ast.QuerySpec) -> bool:
        for item in spec.select_items:
            if isinstance(item.expr, ast.Star):
                continue
            if _has_plain_aggregate(item.expr):
                return True
        if spec.having is not None and _has_plain_aggregate(spec.having):
            return True
        return False

    def _build_aggregate(self, plan, scope, spec: ast.QuerySpec, cte_env,
                         ) -> tuple[rel.RelNode, dict, int]:
        converter = _ExprConverter(self, scope, None, {}, cte_env=cte_env,
                                   plan_holder=[plan])
        group_rex: list[rex.RexNode] = []
        group_ast_keys: list[str] = []
        group_names: list[str] = []
        for i, expr in enumerate(spec.group_by):
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                # positional GROUP BY
                idx = expr.value - 1
                if not 0 <= idx < len(spec.select_items):
                    raise AnalysisError(
                        f"GROUP BY position {expr.value} out of range")
                expr = spec.select_items[idx].expr
            group_rex.append(converter.convert(expr))
            group_ast_keys.append(expr.unparse().lower())
            group_names.append(_derive_name(expr, f"_g{i}"))
        plan = converter.plan_holder[0]

        # collect aggregate calls from select / having / order
        agg_asts: list[ast.FuncCall] = []
        seen: set[str] = set()

        def collect(expr: ast.Expr):
            for node in ast.walk_expr(expr):
                if (isinstance(node, ast.FuncCall) and node.window is None
                        and node.name in AGGREGATE_FUNCTIONS):
                    key = node.unparse().lower()
                    if key not in seen:
                        seen.add(key)
                        agg_asts.append(node)

        for item in spec.select_items:
            if not isinstance(item.expr, ast.Star):
                collect(item.expr)
        if spec.having is not None:
            collect(spec.having)

        # pre-projection: group exprs then distinct agg args
        pre_exprs: list[rex.RexNode] = list(group_rex)
        pre_names: list[str] = list(group_names)
        arg_index: dict[str, int] = {}
        agg_calls: list[rex.AggregateCall] = []
        for i, call in enumerate(agg_asts):
            arg_ordinal: Optional[int] = None
            arg_type: Optional[DataType] = None
            if call.args:
                if len(call.args) != 1:
                    raise AnalysisError(
                        f"aggregate {call.name} takes one argument")
                arg_rex = converter.convert(call.args[0])
                key = arg_rex.digest
                if key not in arg_index:
                    arg_index[key] = len(pre_exprs)
                    pre_exprs.append(arg_rex)
                    pre_names.append(f"_a{len(arg_index)}")
                arg_ordinal = arg_index[key]
                arg_type = arg_rex.dtype
            plan = converter.plan_holder[0]
            agg_calls.append(rex.AggregateCall(
                call.name, arg_ordinal,
                aggregate_result_type(call.name, arg_type),
                f"_agg{i}", call.distinct))

        plan = converter.plan_holder[0]
        if pre_exprs:
            pre_project: rel.RelNode = rel.Project(
                plan, tuple(pre_exprs), tuple(_dedupe_strs(pre_names)))
        else:
            # e.g. SELECT COUNT(*) FROM t — no keys, no agg arguments
            pre_project = plan

        grouping_sets = None
        if spec.grouping_sets is not None:
            sets = []
            for gs in spec.grouping_sets:
                indices = []
                for expr in gs:
                    key = expr.unparse().lower()
                    if key not in group_ast_keys:
                        raise AnalysisError(
                            f"grouping set column {expr.unparse()} not in "
                            "GROUP BY")
                    indices.append(group_ast_keys.index(key))
                sets.append(tuple(indices))
            grouping_sets = tuple(sets)

        aggregate = rel.Aggregate(
            pre_project, tuple(range(len(group_rex))), tuple(agg_calls),
            tuple(_dedupe_strs(group_names)), grouping_sets)

        # post map: AST digest -> (output ordinal, dtype)
        post_map: dict[str, tuple[int, DataType]] = {}
        for i, key in enumerate(group_ast_keys):
            post_map[key] = (i, aggregate.schema[i].dtype)
        base = len(group_rex)
        for i, call in enumerate(agg_asts):
            post_map[call.unparse().lower()] = (
                base + i, agg_calls[i].dtype)
        if grouping_sets is not None:
            post_map["grouping_id"] = (len(aggregate.schema) - 1, BIGINT)
        return aggregate, post_map, len(group_rex)

    # -- window functions --------------------------------------------------------------- #
    def _collect_window_calls(self, spec: ast.QuerySpec, order_by,
                              ) -> list[ast.FuncCall]:
        calls: list[ast.FuncCall] = []
        seen: set[str] = set()

        def collect(expr: ast.Expr):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.FuncCall) and node.window is not None:
                    key = node.unparse().lower()
                    if key not in seen:
                        seen.add(key)
                        calls.append(node)

        for item in spec.select_items:
            if not isinstance(item.expr, ast.Star):
                collect(item.expr)
        for item in order_by:
            collect(item.expr)
        return calls

    def _build_window(self, plan, scope, post_map,
                      calls: list[ast.FuncCall], post_mode: bool):
        window_calls = []
        converter = _ExprConverter(self, scope, plan.schema if post_mode
                                   else None, post_map)
        for i, call in enumerate(calls):
            def to_ordinal(expr: ast.Expr) -> int:
                converted = converter.convert(expr)
                if not isinstance(converted, rex.RexInputRef):
                    raise AnalysisError(
                        "window partition/order expressions must be "
                        "plain columns")
                return converted.index

            partition = tuple(to_ordinal(e)
                              for e in call.window.partition_by)
            order_keys = tuple(
                rel.SortKey(to_ordinal(o.expr), o.ascending)
                for o in call.window.order_by)
            arg = None
            dtype: DataType
            if call.name in RANKING_FUNCTIONS:
                dtype = BIGINT
            else:
                if not call.args:
                    dtype = BIGINT  # count(*) over ()
                else:
                    converted = converter.convert(call.args[0])
                    if not isinstance(converted, rex.RexInputRef):
                        raise AnalysisError(
                            "window aggregate arguments must be plain "
                            "columns")
                    arg = converted.index
                    dtype = aggregate_result_type(call.name, converted.dtype)
            window_calls.append(rel.WindowCall(
                call.name, arg, partition, order_keys, dtype, f"_w{i}"))
        window = rel.Window(plan, tuple(window_calls))
        new_map = dict(post_map)
        base = len(plan.schema)
        for i, call in enumerate(calls):
            new_map[call.unparse().lower()] = (
                base + i, window_calls[i].dtype)
        # passthrough columns stay valid in post mode; in base mode the
        # scope still resolves them because Window appends to the right.
        return window, new_map

    # -- select list / order by ----------------------------------------------------------- #
    def _convert_select_items(self, spec, plan, scope, post_map,
                              post_mode: bool, cte_env):
        exprs: list[rex.RexNode] = []
        names: list[str] = []
        holder = [plan]
        converter = _ExprConverter(self, scope,
                                   plan.schema if post_mode else None,
                                   post_map, cte_env=cte_env,
                                   plan_holder=holder)
        for i, item in enumerate(spec.select_items):
            if isinstance(item.expr, ast.Star):
                if post_mode:
                    raise AnalysisError("* not allowed with GROUP BY")
                for entry in scope.entries:
                    if (item.expr.qualifier is not None
                            and entry.alias != item.expr.qualifier.lower()):
                        continue
                    for j, col in enumerate(entry.schema):
                        exprs.append(rex.RexInputRef(entry.offset + j,
                                                     col.dtype))
                        names.append(col.name)
                continue
            exprs.append(converter.convert(item.expr))
            names.append(item.alias or _derive_name(item.expr, f"_c{i}"))
        if not exprs:
            raise AnalysisError("empty select list")
        # scalar subqueries may have widened the plan via appended joins
        return exprs, _dedupe_strs(names), holder[0]

    def _apply_order_by(self, projected, pre_plan, order_by, select_exprs,
                        select_names, scope, post_map, post_mode, cte_env):
        if not order_by:
            return projected
        if not isinstance(projected, rel.Project):
            # DISTINCT was applied; only selected columns can be sorted
            return self._order_by_names(projected, order_by)
        keys: list[rel.SortKey] = []
        extra_exprs: list[rex.RexNode] = []
        extra_names: list[str] = []
        lower_names = [n.lower() for n in select_names]
        converter = _ExprConverter(
            self, scope, pre_plan.schema if post_mode else None, post_map,
            cte_env=cte_env)
        select_digests = [e.digest for e in select_exprs]
        for item in order_by:
            expr = item.expr
            ordinal: Optional[int] = None
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                idx = expr.value - 1
                if not 0 <= idx < len(select_exprs):
                    raise AnalysisError(
                        f"ORDER BY position {expr.value} out of range")
                ordinal = idx
            elif isinstance(expr, ast.ColumnRef) and expr.qualifier is None \
                    and expr.name.lower() in lower_names:
                ordinal = lower_names.index(expr.name.lower())
            else:
                converted = converter.convert(expr)
                if converted.digest in select_digests:
                    ordinal = select_digests.index(converted.digest)
                else:
                    if not self.conf.support_order_by_unselected:
                        raise UnsupportedFeatureError(
                            "ORDER BY on unselected expressions is not "
                            f"supported by profile {self.conf.name}")
                    ordinal = (len(select_exprs) + len(extra_exprs))
                    extra_exprs.append(converted)
                    extra_names.append(f"_o{len(extra_exprs)}")
            keys.append(rel.SortKey(ordinal, item.ascending))
        if extra_exprs:
            # re-project with extra sort columns, sort, then trim
            inner = projected.input
            wide = rel.Project(
                inner, tuple(select_exprs) + tuple(extra_exprs),
                tuple(_dedupe_strs(list(select_names) + extra_names)))
            sorted_plan = rel.Sort(wide, tuple(keys))
            trim_exprs = tuple(
                rex.RexInputRef(i, wide.schema[i].dtype)
                for i in range(len(select_exprs)))
            return rel.Project(sorted_plan, trim_exprs,
                               tuple(select_names))
        return rel.Sort(projected, tuple(keys))

    def _order_by_names(self, plan: rel.RelNode,
                        order_by: tuple[ast.OrderItem, ...]) -> rel.RelNode:
        """ORDER BY over a plan's output columns by name or position."""
        keys = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value - 1
                if not 0 <= ordinal < len(plan.schema):
                    raise AnalysisError(
                        f"ORDER BY position {expr.value} out of range")
            elif isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
                ordinal = plan.schema.index_of(expr.name)
            else:
                raise AnalysisError(
                    "ORDER BY here must reference output columns")
            keys.append(rel.SortKey(ordinal, item.ascending))
        return rel.Sort(plan, tuple(keys))

    def _apply_limit(self, plan: rel.RelNode, limit: int) -> rel.RelNode:
        if isinstance(plan, rel.Sort) and plan.fetch is None:
            return rel.Sort(plan.input, plan.keys, fetch=limit)
        if (isinstance(plan, rel.Project)
                and isinstance(plan.input, rel.Sort)
                and plan.input.fetch is None):
            inner = plan.input
            return plan.with_inputs(
                [rel.Sort(inner.input, inner.keys, fetch=limit)])
        return rel.Limit(plan, limit)

    def _distinct(self, plan: rel.RelNode) -> rel.RelNode:
        return rel.Aggregate(
            plan, tuple(range(len(plan.schema))), (),
            tuple(c.name for c in plan.schema))


# --------------------------------------------------------------------------- #
# expression conversion

class _ExprConverter:
    """Converts AST expressions to Rex over a scope (or post-agg schema).

    In *post mode* (``post_schema`` set) sub-expressions are first matched
    against ``post_map`` (AST digest → output ordinal); anything else must
    bottom out in matched nodes, otherwise the column is not functionally
    dependent on the GROUP BY.
    """

    def __init__(self, analyzer: Analyzer, scope: Optional[Scope],
                 post_schema: Optional[Schema],
                 post_map: dict[str, tuple[int, DataType]],
                 cte_env: Optional[dict] = None,
                 plan_holder: Optional[list] = None):
        self.analyzer = analyzer
        self.scope = scope
        self.post_schema = post_schema
        self.post_map = post_map
        self.cte_env = cte_env or {}
        self.plan_holder = plan_holder

    # -- dispatch ---------------------------------------------------------------- #
    def convert(self, expr: ast.Expr) -> rex.RexNode:
        if self.post_map:
            hit = self.post_map.get(expr.unparse().lower())
            if hit is not None:
                return rex.RexInputRef(hit[0], hit[1])
        if isinstance(expr, ast.Literal):
            return rex.RexLiteral(expr.value, infer_literal_type(expr.value))
        if isinstance(expr, ast.ColumnRef):
            return self._column(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr)
        if isinstance(expr, ast.IsNull):
            operand = self.convert(expr.operand)
            op = "IS_NOT_NULL" if expr.negated else "IS_NULL"
            return rex.make_call(op, operand)
        if isinstance(expr, ast.Like):
            operand = self.convert(expr.operand)
            call = rex.make_call("LIKE", operand,
                                 rex.RexLiteral(expr.pattern, STRING))
            return rex.make_call("NOT", call) if expr.negated else call
        if isinstance(expr, ast.Between):
            operand = self.convert(expr.operand)
            low = self._coerce_pair(operand, self.convert(expr.low))
            high = self._coerce_pair(operand, self.convert(expr.high))
            call = rex.make_call(
                "AND", rex.make_call(">=", operand, low),
                rex.make_call("<=", operand, high))
            return rex.make_call("NOT", call) if expr.negated else call
        if isinstance(expr, ast.InList):
            operand = self.convert(expr.operand)
            values = [self._coerce_pair(operand, self.convert(v))
                      for v in expr.values]
            call = rex.make_call("IN", operand, *values)
            return rex.make_call("NOT", call) if expr.negated else call
        if isinstance(expr, ast.CaseExpr):
            return self._case(expr)
        if isinstance(expr, ast.Cast):
            operand = self.convert(expr.operand)
            target = type_from_name(expr.type_name, *expr.type_params)
            return rex.RexCall("CAST", (operand,), target)
        if isinstance(expr, ast.ExtractExpr):
            operand = self.convert(expr.operand)
            op = _EXTRACT_OPS.get(expr.unit)
            if op is None:
                raise AnalysisError(f"EXTRACT unit {expr.unit} unsupported")
            return rex.RexCall(op, (operand,), INT)
        if isinstance(expr, ast.FuncCall):
            return self._function(expr)
        if isinstance(expr, ast.ScalarSubquery):
            return self._scalar_subquery(expr)
        if isinstance(expr, (ast.InSubquery, ast.Exists)):
            raise AnalysisError(
                "IN/EXISTS subqueries are only supported as top-level "
                "WHERE conjuncts")
        if isinstance(expr, ast.IntervalLiteral):
            raise AnalysisError(
                "INTERVAL literal only valid in +/- date arithmetic")
        raise AnalysisError(f"cannot convert expression {expr!r}")

    # -- leaves ------------------------------------------------------------------- #
    def _column(self, expr: ast.ColumnRef) -> rex.RexNode:
        if self.post_schema is not None:
            # lookup against aggregate/window output by bare name (the
            # qualified form was already tried via the digest map)
            if expr.name.lower() in self.post_schema:
                idx = self.post_schema.index_of(expr.name)
                return rex.RexInputRef(idx, self.post_schema[idx].dtype)
            raise AnalysisError(
                f"column {expr.unparse()} is neither grouped nor "
                "aggregated")
        ordinal, dtype = self.scope.resolve(expr.qualifier, expr.name)
        return rex.RexInputRef(ordinal, dtype)

    # -- operators ------------------------------------------------------------------ #
    def _binary(self, expr: ast.BinaryOp) -> rex.RexNode:
        op = expr.op
        if op in ("AND", "OR"):
            left, right = self.convert(expr.left), self.convert(expr.right)
            if left.dtype != BOOLEAN or right.dtype != BOOLEAN:
                raise AnalysisError(f"{op} requires boolean operands")
            return rex.make_call(op, left, right)
        # date/interval arithmetic
        if op in ("+", "-") and isinstance(expr.right, ast.IntervalLiteral):
            left = self.convert(expr.left)
            interval = expr.right
            amount = interval.value if op == "+" else -interval.value
            if interval.unit == "DAY":
                return rex.RexCall(
                    "DATE_ADD_DAYS",
                    (left, rex.RexLiteral(amount, INT)), left.dtype)
            if interval.unit == "WEEK":
                return rex.RexCall(
                    "DATE_ADD_DAYS",
                    (left, rex.RexLiteral(amount * 7, INT)), left.dtype)
            if interval.unit in ("MONTH", "YEAR", "QUARTER"):
                months = {"MONTH": 1, "QUARTER": 3, "YEAR": 12}[
                    interval.unit] * amount
                return rex.RexCall(
                    "DATE_ADD_MONTHS",
                    (left, rex.RexLiteral(months, INT)), left.dtype)
            raise AnalysisError(
                f"INTERVAL unit {interval.unit} not supported in "
                "date arithmetic")
        left, right = self.convert(expr.left), self.convert(expr.right)
        if op == "||":
            return rex.RexCall("CONCAT", (left, right), STRING)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            right = self._coerce_pair(left, right)
            left = self._coerce_pair(right, left)
            return rex.make_call(op, left, right)
        if op in ("+", "-", "*", "/", "%"):
            if not (left.dtype.is_numeric and right.dtype.is_numeric):
                if not (left.dtype.is_temporal or right.dtype.is_temporal):
                    raise AnalysisError(
                        f"arithmetic on non-numeric types "
                        f"{left.dtype}/{right.dtype}")
            dtype = (DOUBLE if op == "/" else
                     common_type(left.dtype, right.dtype))
            return rex.RexCall(op, (left, right), dtype)
        raise AnalysisError(f"unknown operator {op}")

    def _unary(self, expr: ast.UnaryOp) -> rex.RexNode:
        operand = self.convert(expr.operand)
        if expr.op == "NOT":
            if operand.dtype != BOOLEAN:
                raise AnalysisError("NOT requires a boolean operand")
            return rex.make_call("NOT", operand)
        if expr.op == "-":
            return rex.RexCall("NEGATE", (operand,), operand.dtype)
        raise AnalysisError(f"unknown unary operator {expr.op}")

    def _case(self, expr: ast.CaseExpr) -> rex.RexNode:
        operands: list[rex.RexNode] = []
        result_types: list[DataType] = []
        for cond, value in expr.whens:
            converted_cond = self.convert(cond)
            if converted_cond.dtype != BOOLEAN:
                raise AnalysisError("CASE WHEN condition must be boolean")
            converted_value = self.convert(value)
            operands.extend((converted_cond, converted_value))
            result_types.append(converted_value.dtype)
        else_value = (self.convert(expr.else_expr)
                      if expr.else_expr is not None
                      else rex.RexLiteral(None, result_types[0]))
        operands.append(else_value)
        result_types.append(else_value.dtype)
        dtype = result_types[0]
        for t in result_types[1:]:
            try:
                dtype = common_type(dtype, t)
            except AnalysisError:
                pass  # NULL literal defaults to STRING; keep first type
        return rex.RexCall("CASE", tuple(operands), dtype)

    def _function(self, expr: ast.FuncCall) -> rex.RexNode:
        if expr.window is not None:
            raise AnalysisError(
                f"window function {expr.name} in unsupported position")
        if expr.name in AGGREGATE_FUNCTIONS:
            raise AnalysisError(
                f"aggregate {expr.name} not allowed in this context")
        args = tuple(self.convert(a) for a in expr.args)
        dtype = scalar_result_type(expr.name, [a.dtype for a in args])
        return rex.RexCall(expr.name.upper(), args, dtype)

    def _scalar_subquery(self, expr: ast.ScalarSubquery) -> rex.RexNode:
        if self.plan_holder is None or self.scope is None:
            raise AnalysisError(
                "scalar subquery not allowed in this context")
        return self.analyzer._append_scalar_subquery(
            self, expr.query)

    # -- coercion ----------------------------------------------------------------- #
    def _coerce_pair(self, reference: rex.RexNode,
                     value: rex.RexNode) -> rex.RexNode:
        """Coerce string literals to dates/timestamps when compared."""
        if (reference.dtype in (DATE,) and value.dtype == STRING
                and isinstance(value, rex.RexLiteral)):
            import datetime
            return rex.RexLiteral(
                datetime.date.fromisoformat(value.value), DATE)
        return value


# --------------------------------------------------------------------------- #
# scalar-subquery planning (method of Analyzer, defined here for locality)

def _append_scalar_subquery(self: Analyzer, converter: _ExprConverter,
                            query: ast.Query) -> rex.RexNode:
    """Turn a scalar subquery into a join appended to the current plan.

    * uncorrelated: single-row inner joined with a cartesian left join,
    * correlated by equality: inner grouped by the correlation keys and
      left-joined on them.
    """
    scope = converter.scope
    plan = converter.plan_holder[0]
    spec = _only_spec(query)

    # detect correlation
    inner_plan, inner_scope = self._analyze_from(spec.from_refs, scope, {})
    local, correlated = self._split_subquery_where(spec, inner_scope)

    if not correlated:
        inner = self.analyze_query(query, None, {})
        if len(inner.schema) != 1:
            raise AnalysisError("scalar subquery must return one column")
        join = rel.Join(plan, inner, "left", None)
        converter.plan_holder[0] = join
        _extend_scope(scope, inner.schema, len(plan.schema))
        return rex.RexInputRef(len(plan.schema), inner.schema[0].dtype)

    # correlated: inner must be a single aggregate over its FROM
    if len(spec.select_items) != 1:
        raise AnalysisError("scalar subquery must return one column")
    item = spec.select_items[0].expr
    if not (isinstance(item, ast.FuncCall)
            and item.name in AGGREGATE_FUNCTIONS and item.window is None):
        raise AnalysisError(
            "correlated scalar subquery must select a single aggregate")
    if local:
        inner_plan = self._filter_with(inner_plan, inner_scope, local, {})
        inner_scope = _rebased_scope(inner_scope, inner_plan)

    # correlation conjuncts: inner_col = outer_expr
    combined = Scope(
        scope.entries + [ScopeEntry(e.alias, e.schema,
                                    e.offset + scope.width)
                         for e in inner_scope.entries])
    cc = _ExprConverter(self, combined, None, {})
    outer_width = scope.width
    join_pairs: list[tuple[rex.RexNode, int]] = []  # (outer expr, inner ord)
    for conjunct in correlated:
        converted = cc.convert(conjunct)
        if not (isinstance(converted, rex.RexCall) and converted.op == "="):
            if not self.conf.support_nonequi_correlation:
                raise UnsupportedFeatureError(
                    "correlated scalar subqueries with non-equi "
                    f"conditions are not supported by {self.conf.name}")
            raise AnalysisError(
                "only equality correlation is supported for scalar "
                "subqueries")
        a, b = converted.operands
        if (a.input_refs() and max(a.input_refs()) >= outer_width
                and rex.references_only(b, set(range(outer_width)))):
            inner_side, outer_side = a, b
        elif (b.input_refs() and max(b.input_refs()) >= outer_width
                and rex.references_only(a, set(range(outer_width)))):
            inner_side, outer_side = b, a
        else:
            raise AnalysisError(
                "unsupported correlation shape in scalar subquery")
        if not isinstance(inner_side, rex.RexInputRef):
            raise AnalysisError(
                "correlation must reference a plain inner column")
        join_pairs.append((outer_side, inner_side.index - outer_width))

    # build inner aggregate: group by correlation keys, compute the agg
    inner_converter = _ExprConverter(self, inner_scope, None, {})
    key_ordinals = [p[1] for p in join_pairs]
    pre_exprs = [rex.RexInputRef(k, inner_plan.schema[k].dtype)
                 for k in key_ordinals]
    pre_names = [f"_k{i}" for i in range(len(key_ordinals))]
    arg_ordinal = None
    arg_type = None
    if item.args:
        arg = inner_converter.convert(item.args[0])
        arg_ordinal = len(pre_exprs)
        arg_type = arg.dtype
        pre_exprs.append(arg)
        pre_names.append("_arg")
    pre = rel.Project(inner_plan, tuple(pre_exprs), tuple(pre_names))
    agg_call = rex.AggregateCall(
        item.name, arg_ordinal, aggregate_result_type(item.name, arg_type),
        "_sq", item.distinct)
    aggregated = rel.Aggregate(pre, tuple(range(len(key_ordinals))),
                               (agg_call,),
                               tuple(pre_names[:len(key_ordinals)]))

    condition_parts = []
    for i, (outer_side, _) in enumerate(join_pairs):
        condition_parts.append(rex.make_call(
            "=", outer_side,
            rex.RexInputRef(outer_width + i, aggregated.schema[i].dtype)))
    join = rel.Join(plan, aggregated, "left",
                    rex.make_and(condition_parts))
    converter.plan_holder[0] = join
    _extend_scope(scope, aggregated.schema, outer_width)
    value_ordinal = outer_width + len(key_ordinals)
    return rex.RexInputRef(value_ordinal, agg_call.dtype)


Analyzer._append_scalar_subquery = _append_scalar_subquery


# --------------------------------------------------------------------------- #
# small helpers

def _scope_width(entries: list[ScopeEntry]) -> int:
    return sum(len(e.schema) for e in entries)


def _rebased_scope(scope: Scope, plan: rel.RelNode) -> Scope:
    """Scope unchanged structurally but re-validated against plan width."""
    return scope


def _extend_scope(scope: Scope, schema: Schema, offset: int) -> None:
    scope.entries.append(ScopeEntry(None, schema, offset))


def _split_and(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _strip_not(expr: ast.Expr) -> tuple[ast.Expr, bool]:
    negated = False
    while isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
        negated = not negated
        expr = expr.operand
    return expr, negated


def _only_spec(query: ast.Query) -> ast.QuerySpec:
    if query.ctes or not isinstance(query.body, ast.QuerySpec):
        raise AnalysisError(
            "subquery with CTEs or set operations is not supported here")
    if query.order_by or query.limit is not None:
        if query.limit is None:
            # ORDER BY alone in a subquery is a no-op; ignore it
            return query.body
        raise AnalysisError("LIMIT in this subquery position unsupported")
    return query.body


def _is_windowed(expr: ast.Expr) -> bool:
    return any(isinstance(e, ast.FuncCall) and e.window is not None
               for e in ast.walk_expr(expr))


def _has_plain_aggregate(expr: ast.Expr) -> bool:
    """Aggregate calls not wrapped in an OVER clause."""
    return any(isinstance(e, ast.FuncCall) and e.window is None
               and e.name in AGGREGATE_FUNCTIONS
               for e in ast.walk_expr(expr))


def _derive_name(expr: ast.Expr, fallback: str) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return fallback


def _dedupe_strs(names: list[str]) -> list[str]:
    seen: set[str] = set()
    out = []
    for name in names:
        candidate = name
        suffix = 0
        while candidate.lower() in seen:
            suffix += 1
            candidate = f"{name}_{suffix}"
        seen.add(candidate.lower())
        out.append(candidate)
    return out


def _cast_to(plan: rel.RelNode, target_types: list[DataType]) -> rel.RelNode:
    if all(c.dtype == t for c, t in zip(plan.schema, target_types)):
        return plan
    exprs = []
    for i, (col, target) in enumerate(zip(plan.schema, target_types)):
        ref = rex.RexInputRef(i, col.dtype)
        exprs.append(ref if col.dtype == target
                     else rex.RexCall("CAST", (ref,), target))
    return rel.Project(plan, tuple(exprs),
                       tuple(c.name for c in plan.schema))
